"""The versioned coordinator <-> worker wire protocol.

One protocol version string (:data:`SHARD_PROTOCOL`) tags every shard
message; a worker rejects (and a coordinator refuses to decode) anything
else, so mixed-version fleets fail loudly at the first request instead
of mis-solving quietly.  Payloads are plain JSON over the same stdlib
HTTP stack the serving subsystem already speaks:

- *solve request* — a batch of component jobs for one worker: each job
  carries its canonical solve fingerprint (the at-most-once dedup key),
  the flat-array component bundle (:mod:`repro.maxent.wire`) and an
  optional warm-start multiplier vector; the solver config rides once
  per batch.
- *solve response* — per-job results in request order: the probability
  vector (bit-exact raw-bytes encoding), the solver stats, converged
  dual multipliers when available, and whether the worker's own cache
  served the job.

:class:`ShardClient` extends the blocking service client with the shard
endpoints, so a coordinator drives workers exactly the way external
clients drive the service (keep-alive, retries on stale connections,
uniform error decoding).
"""

from __future__ import annotations

import numpy as np

from repro.core.serialize import (
    config_from_dict,
    config_to_dict,
    stats_from_dict,
    stats_to_dict,
)
from repro.engine.component import ComponentSolve
from repro.errors import ReproError
from repro.maxent.config import MaxEntConfig
from repro.maxent.decompose import Component
from repro.maxent.wire import (
    component_from_wire,
    component_to_wire,
    decode_array,
    encode_array,
)
from repro.service.client import ServiceClient

#: Protocol tag of every shard message; bump on incompatible changes.
#: (v2: the solver config grew the ``batch_components``/``batch_max_vars``
#: knobs, which a v1 worker's strict config decoder rejects — the bump
#: turns a confusing unknown-key failure in a mixed-version fleet into
#: the designed loud version-mismatch error.
#: v3: the solve-result contract is versioned — the config grew the
#: ``replay``/``kernel`` knobs, batching is default-on, and cluster
#: results are *tolerance*-equivalent to single-engine solves unless
#: ``replay="bitwise"`` forces the per-component path.  A v2 peer would
#: both reject the new config keys and assume the old bit-identical
#: contract, so mixed fleets must fail loudly.
#: v4: solve requests carry an optional ``trace`` context and responses
#: an optional ``spans`` list (cross-machine trace stitching).  A v3
#: worker's strict request decoder rejects the ``trace`` field, so the
#: bump again turns an unknown-key failure into the designed
#: version-mismatch error.
#: v5: dynamic membership — workers carry a stable identity decoupled
#: from their bind address, dial in over the new ``/shard/v1/join`` and
#: ``/shard/v1/heartbeat`` messages, and solve responses name the
#: worker by that identity.  A v4 coordinator would route by
#: ``host:port`` while a v5 worker self-reports its persisted id, so a
#: mixed fleet must fail loudly rather than split-brain the ring.)
SHARD_PROTOCOL = "privacy-maxent-shard/5"


def check_protocol(payload, what: str) -> None:
    """Reject a message not speaking :data:`SHARD_PROTOCOL`."""
    if not isinstance(payload, dict):
        raise ReproError(f"{what} must be a JSON object")
    version = payload.get("protocol")
    if version != SHARD_PROTOCOL:
        raise ReproError(
            f"{what} speaks protocol {version!r}, expected "
            f"{SHARD_PROTOCOL!r}; coordinator and workers must run the "
            "same version"
        )


def solve_request_to_wire(
    fingerprints: list[str],
    components: list[Component],
    config: MaxEntConfig,
    warm_starts: list[np.ndarray | None],
    trace_ctx: dict | None = None,
) -> dict:
    """Encode one batch of component jobs for a worker.

    ``trace_ctx`` is the coordinator's active span as a
    ``{"trace_id", "span_id"}`` dict; the worker parents its solve spans
    on it and ships them back, stitching one cross-machine trace.
    """
    jobs = []
    for fingerprint, component, warm in zip(
        fingerprints, components, warm_starts
    ):
        jobs.append(
            {
                "fingerprint": fingerprint,
                "component": component_to_wire(component),
                "warm_start": (
                    encode_array(warm, "<f8") if warm is not None else None
                ),
            }
        )
    payload = {
        "protocol": SHARD_PROTOCOL,
        "config": config_to_dict(config),
        "jobs": jobs,
    }
    if trace_ctx is not None:
        payload["trace"] = dict(trace_ctx)
    return payload


def _trace_from_wire(payload) -> dict | None:
    """Validate the optional ``trace`` field into a usable context."""
    trace = payload.get("trace")
    if not isinstance(trace, dict):
        return None
    trace_id = trace.get("trace_id")
    span_id = trace.get("span_id")
    if not isinstance(trace_id, str) or not trace_id:
        return None
    return {
        "trace_id": trace_id,
        "span_id": span_id if isinstance(span_id, str) else None,
    }


def solve_request_from_wire(payload) -> tuple[
    list[str],
    list[Component],
    MaxEntConfig,
    list[np.ndarray | None],
    dict | None,
]:
    """Decode a worker-side solve request (strict).

    Returns ``(fingerprints, components, config, warm_starts,
    trace_ctx)``; the trace context is ``None`` when the coordinator
    sent none (or an unusable one — tracing must never fail a solve).
    """
    check_protocol(payload, "solve request")
    unknown = set(payload) - {"protocol", "config", "jobs", "trace"}
    if unknown:
        raise ReproError(f"solve request has unknown field(s): {sorted(unknown)}")
    config = config_from_dict(payload.get("config"))
    jobs = payload.get("jobs")
    if not isinstance(jobs, list):
        raise ReproError("solve request jobs must be a JSON list")
    fingerprints: list[str] = []
    components: list[Component] = []
    warm_starts: list[np.ndarray | None] = []
    for index, job in enumerate(jobs):
        if not isinstance(job, dict):
            raise ReproError(f"job {index} must be a JSON object")
        unknown = set(job) - {"fingerprint", "component", "warm_start"}
        if unknown:
            raise ReproError(
                f"job {index} has unknown field(s): {sorted(unknown)}"
            )
        fingerprint = job.get("fingerprint")
        if not isinstance(fingerprint, str) or not fingerprint:
            raise ReproError(f"job {index} needs a non-empty fingerprint")
        fingerprints.append(fingerprint)
        components.append(component_from_wire(job.get("component")))
        warm = job.get("warm_start")
        warm_starts.append(
            decode_array(warm, "<f8") if warm is not None else None
        )
    return fingerprints, components, config, warm_starts, _trace_from_wire(
        payload
    )


def solve_result_to_wire(
    fingerprint: str, result: ComponentSolve, *, cached: bool
) -> dict:
    """Encode one solved component for the response."""
    return {
        "fingerprint": fingerprint,
        "p": encode_array(result.p, "<f8"),
        "stats": stats_to_dict(result.stats),
        "multipliers": (
            encode_array(result.multipliers, "<f8")
            if result.multipliers is not None
            else None
        ),
        "cached": bool(cached),
    }


def solve_response_from_wire(payload) -> list[tuple[str, ComponentSolve, bool]]:
    """Decode a worker's response into ``(fingerprint, solve, cached)``."""
    check_protocol(payload, "solve response")
    results = payload.get("results")
    if not isinstance(results, list):
        raise ReproError("solve response results must be a JSON list")
    decoded: list[tuple[str, ComponentSolve, bool]] = []
    for index, entry in enumerate(results):
        if not isinstance(entry, dict):
            raise ReproError(f"result {index} must be a JSON object")
        fingerprint = entry.get("fingerprint")
        if not isinstance(fingerprint, str) or not fingerprint:
            raise ReproError(f"result {index} needs a non-empty fingerprint")
        multipliers = entry.get("multipliers")
        decoded.append(
            (
                fingerprint,
                ComponentSolve(
                    p=decode_array(entry.get("p"), "<f8"),
                    stats=stats_from_dict(entry.get("stats")),
                    multipliers=(
                        decode_array(multipliers, "<f8")
                        if multipliers is not None
                        else None
                    ),
                ),
                bool(entry.get("cached", False)),
            )
        )
    return decoded


def _membership_to_wire(worker_id: str, host: str, port: int) -> dict:
    return {
        "protocol": SHARD_PROTOCOL,
        "worker_id": worker_id,
        "host": host,
        "port": int(port),
    }


def _membership_from_wire(payload, what: str) -> tuple[str, str, int]:
    """Decode a join/heartbeat announcement (strict, like solve requests)."""
    check_protocol(payload, what)
    unknown = set(payload) - {"protocol", "worker_id", "host", "port"}
    if unknown:
        raise ReproError(f"{what} has unknown field(s): {sorted(unknown)}")
    worker_id = payload.get("worker_id")
    if not isinstance(worker_id, str) or not worker_id.strip():
        raise ReproError(f"{what} needs a non-empty worker_id")
    host = payload.get("host")
    if not isinstance(host, str) or not host.strip():
        raise ReproError(f"{what} needs a non-empty host")
    port = payload.get("port")
    if not isinstance(port, int) or isinstance(port, bool) or not (
        0 < port < 65536
    ):
        raise ReproError(f"{what} needs a port in 1..65535, got {port!r}")
    return worker_id.strip(), host.strip(), port


def join_request_to_wire(worker_id: str, host: str, port: int) -> dict:
    """Encode a worker's self-registration announcement."""
    return _membership_to_wire(worker_id, host, port)


def join_request_from_wire(payload) -> tuple[str, str, int]:
    """Decode a ``POST /shard/v1/join`` body -> (worker_id, host, port)."""
    return _membership_from_wire(payload, "join request")


def heartbeat_request_to_wire(worker_id: str, host: str, port: int) -> dict:
    """Encode a worker's liveness heartbeat."""
    return _membership_to_wire(worker_id, host, port)


def heartbeat_request_from_wire(payload) -> tuple[str, str, int]:
    """Decode a ``POST /shard/v1/heartbeat`` body -> (worker_id, host, port)."""
    return _membership_from_wire(payload, "heartbeat")


def response_spans(payload) -> list[dict]:
    """The worker-captured spans riding a solve response (may be empty).

    Tolerant by design: spans are observability freight, so anything
    malformed decodes to nothing rather than failing the solve.
    """
    spans = payload.get("spans")
    if not isinstance(spans, list):
        return []
    return [span for span in spans if isinstance(span, dict)]


class ShardClient(ServiceClient):
    """Blocking client a coordinator drives one shard worker with."""

    def request(
        self, method: str, path: str, payload=None, *, extra_headers=None
    ) -> dict:
        """A raw JSON request (the forwarding primitive)."""
        return self._request(method, path, payload, extra_headers=extra_headers)

    def solve_components(self, payload: dict) -> dict:
        """POST one encoded solve batch; returns the raw response."""
        return self._request("POST", "/shard/v1/components", payload)

    def shard_state(self) -> dict:
        """The worker's shard-level identity and counters."""
        return self._request("GET", "/shard/v1/state")

    def join(self, payload: dict) -> dict:
        """Announce a worker to a membership authority (front-end)."""
        return self._request("POST", "/shard/v1/join", payload)

    def heartbeat(self, payload: dict) -> dict:
        """Refresh a worker's liveness with a membership authority."""
        return self._request("POST", "/shard/v1/heartbeat", payload)
