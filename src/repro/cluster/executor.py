"""The ``"cluster"`` engine executor: components scattered over HTTP.

A :class:`ClusterExecutor` plugs the shard fleet in as a fourth engine
backend alongside serial/thread/process: the engine plans and
cache-checks exactly as before, and the numeric fan-out step ships the
pending flat-array component bundles to the coordinator instead of a
local pool.  Fingerprints are the routing keys *and* the at-most-once
dedup keys; the engine already computed them for its cache check, so
its work items carry them through this seam and cold cluster solves no
longer fingerprint every component twice — only components the engine
skipped (cache disabled) are fingerprinted here.

The engine dispatches *group* work items (batch groups plus
singletons).  Groups flatten to per-component wire jobs before the
scatter — routing and dedup stay per-fingerprint — and each worker's
own engine re-bins the bundles it receives, so the batched dual path
speeds the fleet up from inside the shards.

Because the wire encoding is lossless (raw-bytes float payloads) and
the engine's own cache/warm-start bookkeeping still runs on the
gathered results, a cluster solve is indistinguishable from a local one
to everything above the executor seam — within the solve-result
contract: under the default ``replay="tolerance"`` local/cluster
agreement is within solver tolerance (batch grouping differs across
the seam), while ``replay="bitwise"`` forces the per-component path on
both sides and round-trips bit-identical posteriors.
"""

from __future__ import annotations

import os

from repro.cluster.coordinator import ClusterCoordinator
from repro.cluster.router import ClusterError
from repro.engine.component import (
    solve_component_group_task,
    solve_component_task,
)
from repro.engine.fingerprint import component_fingerprint


class ClusterExecutor:
    """Engine executor backend dispatching component jobs to shard workers."""

    name = "cluster"

    def __init__(
        self,
        coordinator: ClusterCoordinator,
        *,
        owns_coordinator: bool = False,
    ) -> None:
        self.coordinator = coordinator
        self.owns_coordinator = owns_coordinator

    @property
    def workers(self) -> int:
        """Advertised parallelism: concurrency heuristics (the service's
        max_concurrency default) read this like a pool's worker count.
        A property, because an elastic fleet grows and shrinks under a
        live executor."""
        return max(self.coordinator.n_workers, 1)

    def imap(self, fn, items):
        """Scatter component work items (grouped or single) to the fleet."""
        if fn is solve_component_group_task:
            return self._scatter_groups(list(items))
        if fn is solve_component_task:
            # The single-component job shape, kept for callers driving
            # the executor directly.
            jobs = list(items)
            if not jobs:
                return []
            config = jobs[0][1]
            group_results = self._scatter_groups(
                [
                    ([component], config, [warm], [None])
                    for component, _, warm in jobs
                ]
            )
            return [results[0] for results in group_results]
        raise ClusterError(
            "the cluster executor only runs component solve tasks, "
            f"got {getattr(fn, '__name__', fn)!r}"
        )

    def _scatter_groups(self, jobs):
        """Flatten group jobs, scatter per fingerprint, regroup results."""
        if not jobs:
            return []
        config = jobs[0][1]
        solve_key = config.solve_key()
        components = []
        warm_starts = []
        fingerprints = []
        counts = []
        trace_ctx = None
        for group_components, _, group_warms, group_fingerprints, *rest in (
            jobs
        ):
            if trace_ctx is None and rest:
                # One solve's groups share a trace context; the first
                # carries it to the coordinator (and over the wire).
                trace_ctx = rest[0]
            counts.append(len(group_components))
            components.extend(group_components)
            warm_starts.extend(group_warms)
            for component, fingerprint in zip(
                group_components, group_fingerprints
            ):
                fingerprints.append(
                    fingerprint
                    if fingerprint is not None
                    else component_fingerprint(
                        component.system, component.mass, solve_key
                    )
                )
        flat = self.coordinator.solve_components(
            fingerprints, components, config, warm_starts,
            trace_ctx=trace_ctx,
        )
        grouped = []
        cursor = 0
        for count in counts:
            grouped.append(flat[cursor : cursor + count])
            cursor += count
        return grouped

    def map(self, fn, items) -> list:
        """Eager :meth:`imap` (already eager — one scatter per call)."""
        return list(self.imap(fn, items))

    def close(self) -> None:
        """Shut the coordinator down when this executor owns it."""
        if self.owns_coordinator:
            self.coordinator.shutdown()

    def __enter__(self) -> "ClusterExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def create_cluster_executor(cluster_workers: str | None = None) -> ClusterExecutor:
    """Build a cluster executor from a ``host:port,host:port`` list.

    Falls back to the ``REPRO_CLUSTER_WORKERS`` environment variable —
    the hook that makes ``--executor cluster`` usable from any CLI
    subcommand without new plumbing.  The executor owns the attached
    coordinator (closing the engine detaches; remote workers live on).
    """
    addresses = cluster_workers or os.environ.get("REPRO_CLUSTER_WORKERS", "")
    if not addresses.strip():
        raise ClusterError(
            "the cluster executor needs shard worker addresses: pass "
            "cluster_workers='host:port,host:port' (config/CLI "
            "--cluster-workers) or set REPRO_CLUSTER_WORKERS, and start "
            "workers with `repro shard-worker`"
        )
    coordinator = ClusterCoordinator.attach(addresses)
    return ClusterExecutor(coordinator, owns_coordinator=True)
