"""The sharded serving front-end: one address, N engine workers behind it.

``repro serve --shards N`` runs a :class:`ShardedFrontend` — the same
HTTP surface as the single-engine service, but every release lives on
exactly one shard worker (rendezvous-routed by the release's canonical
content digest), so each worker owns its releases' compiled constraint
systems, solve caches and warm starts, and the fleet's total memory and
core count — not one process's — bounds the serving capacity.

Routing and failure semantics:

- *registration* — the front-end computes the same content digest the
  session store uses for idempotency, routes to the owning worker, and
  remembers ``(digest, body, worker)`` so the release can be re-homed;
  the client-visible release id is pinned at first registration and
  survives failover.
- *solves* — posterior/assess bodies forward verbatim to the owner;
  worker errors map back status-for-status (a 429 from a saturated
  shard is real backpressure the client should see).
- *failover* — a connection failure marks the worker dead; the release
  re-registers on its rendezvous successor from the stored payload and
  the request retries there once.  Health probes revive recovered
  workers, and rendezvous hashing sends their keys straight back.
- *health/telemetry* — ``/v1/healthz`` aggregates worker liveness (any
  dead or degraded shard degrades the fleet, HTTP 503), and
  ``/v1/telemetry`` embeds every shard's counters plus cross-shard
  engine aggregates.
"""

from __future__ import annotations

import asyncio
import http.client
import threading
from dataclasses import dataclass, field
from functools import partial

from repro.cluster.coordinator import ClusterCoordinator
from repro.cluster.router import ClusterError
from repro.obs.metrics import CONTENT_TYPE as METRICS_CONTENT_TYPE
from repro.obs.metrics import MetricsBuilder
from repro.obs.trace import get_tracer
from repro.service.admission import AdmissionController
from repro.service.client import ServiceError
from repro.service.protocol import HttpError, HttpRequest, TextResponse
from repro.service.telemetry import LATENCY_BOUNDS
from repro.service.server import (
    TRACE_HEADER,
    PrivacyService,
    ServiceConfig,
    engine_metrics,
)
from repro.service.store import release_digest

#: Per-forward HTTP timeout; solves can be long, registration is not.
FORWARD_TIMEOUT = 600.0


@dataclass
class ReleaseEntry:
    """One registered release's routing record."""

    release_id: str
    digest: str
    body: dict
    worker_id: str
    worker_release_id: str
    summary: dict = field(default_factory=dict)


class ShardedFrontend(PrivacyService):
    """Release-sharding HTTP front-end over a worker fleet."""

    def __init__(
        self,
        config: ServiceConfig | None = None,
        *,
        coordinator: ClusterCoordinator,
        owns_coordinator: bool = True,
    ) -> None:
        super().__init__(config)
        self.coordinator = coordinator
        self.owns_coordinator = owns_coordinator
        if self.config.max_concurrency is None:
            # The base class sized admission for its own (idle) engine;
            # a front-end's capacity is the fleet's, so let several
            # forwards per worker be in flight before 429ing clients.
            self.admission = AdmissionController(
                max_concurrency=max(4, 4 * coordinator.n_workers),
                max_queue=self.config.max_queue,
            )
        self._directory: dict[str, ReleaseEntry] = {}
        self._by_digest: dict[str, str] = {}
        self._directory_lock = threading.Lock()

    def close(self) -> None:
        super().close()
        if self.owns_coordinator:
            self.coordinator.shutdown()

    # -- forwarding plumbing -------------------------------------------------

    def _forward(
        self,
        worker_id: str,
        method: str,
        path: str,
        payload=None,
        *,
        trace_ctx: dict | None = None,
    ) -> dict:
        """One blocking request to one worker; HTTP errors map through.

        ``trace_ctx`` rides the :data:`TRACE_HEADER` so the worker's
        request root span parents on this front-end's — release-sharded
        forwards stitch into one cross-process trace the same way
        component scatters do.
        """
        handle = self.coordinator.worker(worker_id)
        headers = None
        if trace_ctx is not None:
            headers = {
                TRACE_HEADER: (
                    f"{trace_ctx['trace_id']}:{trace_ctx.get('span_id') or ''}"
                )
            }
        try:
            with handle.client(timeout=FORWARD_TIMEOUT) as client:
                return client.request(
                    method, path, payload, extra_headers=headers
                )
        except ServiceError as exc:
            # The worker answered: relay its verdict status-for-status.
            raise HttpError(exc.status, str(exc), code=exc.code) from exc

    def _entry(self, release_id: str) -> ReleaseEntry:
        with self._directory_lock:
            entry = self._directory.get(release_id)
        if entry is None:
            raise LookupError(f"unknown release {release_id!r}")
        return entry

    def _register_on(self, worker_id: str, entry_body: dict) -> dict:
        return self._forward(worker_id, "POST", "/v1/releases", entry_body)

    def _register_anywhere(
        self, digest: str, entry: ReleaseEntry | None, body: dict
    ) -> tuple[str, dict]:
        """Register on the digest's owner, walking successors past deaths.

        A connection failure marks the owner dead and moves to the next
        rendezvous choice, so registration survives a just-died worker
        the same way solves do; HTTP answers (including 429) relay
        verbatim — the worker is alive and its verdict stands.
        """
        last_exc: Exception | None = None
        for _attempt in range(self.coordinator.n_workers):
            dead = set(self.coordinator.dead_ids())
            if entry is not None and entry.worker_id not in dead:
                owner = entry.worker_id
            else:
                try:
                    owner = self.coordinator.router.owner(
                        digest, exclude=dead
                    )
                except ClusterError as exc:
                    last_exc = exc
                    break
            try:
                return owner, self._register_on(owner, body)
            except HttpError:
                raise
            except (OSError, http.client.HTTPException) as exc:
                self.coordinator.mark_dead(owner)
                last_exc = exc
        raise HttpError(
            503,
            f"no shard worker accepted the registration: {last_exc}",
            code="shard_unavailable",
        ) from last_exc

    def _failover(self, entry: ReleaseEntry) -> None:
        """Re-home a release whose owner died (rendezvous successor)."""
        self.coordinator.mark_dead(entry.worker_id)
        dead = set(self.coordinator.dead_ids())
        successor = self.coordinator.router.owner(entry.digest, exclude=dead)
        try:
            response = self._register_on(successor, entry.body)
        except (OSError, http.client.HTTPException):
            # The successor is gone too: exclude *it*, so the caller's
            # next attempt walks further down the rendezvous order
            # instead of re-trying a worker we just watched fail.
            self.coordinator.mark_dead(successor)
            raise
        with self._directory_lock:
            entry.worker_id = successor
            entry.worker_release_id = response["release_id"]
        self.telemetry.incr("release_failovers")

    def _entry_target(self, entry: ReleaseEntry) -> tuple[str, str]:
        """A consistent (worker_id, worker_release_id) pair for ``entry``.

        Both fields change together under a failover; reading them under
        the directory lock prevents a torn pair (new worker, stale
        release id) from racing a concurrent re-home.
        """
        with self._directory_lock:
            return entry.worker_id, entry.worker_release_id

    def _forward_release(
        self,
        entry: ReleaseEntry,
        method: str,
        path_suffix: str,
        payload=None,
        trace_ctx: dict | None = None,
    ) -> dict:
        """Forward to a release's owner, walking failures.

        Every failed attempt eliminates at least one worker from
        routing, so ``n_workers + 1`` attempts suffice to reach the last
        healthy candidate.  An owner that is alive but no longer knows
        the release (restarted by a supervisor with an empty store) gets
        the release re-registered from the stored body once — the
        pinned client-visible id must survive worker restarts, not only
        deaths.
        """
        last_exc: Exception | None = None
        rehomed_404 = False
        for _attempt in range(self.coordinator.n_workers + 1):
            worker_id, worker_release_id = self._entry_target(entry)
            try:
                if worker_id in set(self.coordinator.dead_ids()):
                    self._failover(entry)
                    worker_id, worker_release_id = self._entry_target(entry)
                path = f"/v1/releases/{worker_release_id}{path_suffix}"
                return self._forward(
                    worker_id, method, path, payload, trace_ctx=trace_ctx
                )
            except HttpError as exc:
                if (
                    exc.status == 404
                    and exc.code == "unknown_release"
                    and not rehomed_404
                ):
                    rehomed_404 = True
                    try:
                        response = self._register_on(worker_id, entry.body)
                    except (OSError, http.client.HTTPException) as reg_exc:
                        self.coordinator.mark_dead(worker_id)
                        last_exc = reg_exc
                        continue
                    with self._directory_lock:
                        entry.worker_id = worker_id
                        entry.worker_release_id = response["release_id"]
                    continue
                # The worker (or its successor) answered; relay verbatim.
                raise
            except (OSError, http.client.HTTPException, ClusterError) as exc:
                self.coordinator.mark_dead(worker_id)
                last_exc = exc
        raise HttpError(
            503,
            f"shard {entry.worker_id} is unreachable and failover failed: "
            f"{last_exc}",
            code="shard_unavailable",
        ) from last_exc

    # -- endpoint overrides --------------------------------------------------

    async def _handle_register(self, request: HttpRequest) -> tuple[int, dict]:
        body = self._body_object(request, ("release", "original", "name"))
        release_payload = body.get("release")
        if release_payload is None:
            raise HttpError(
                400, "registration needs a 'release' object", code="bad_request"
            )
        loop = asyncio.get_running_loop()
        assert self._register_lock is not None
        async with self._register_lock:
            status, summary = await loop.run_in_executor(
                None, partial(self._register_sync, body, release_payload)
            )
        return status, summary

    def _register_sync(self, body: dict, release_payload) -> tuple[int, dict]:
        digest = release_digest(release_payload)
        with self._directory_lock:
            known_id = self._by_digest.get(digest)
            entry = self._directory.get(known_id) if known_id else None
        owner, response = self._register_anywhere(digest, entry, body)
        created = bool(response.pop("created", False)) and entry is None
        if entry is None:
            entry = ReleaseEntry(
                release_id=response["release_id"],
                digest=digest,
                body=body,
                worker_id=owner,
                worker_release_id=response["release_id"],
            )
            with self._directory_lock:
                # Pin the client-visible id once; a racing duplicate
                # keeps the first registration's record.
                existing_id = self._by_digest.get(digest)
                if existing_id is None:
                    self._by_digest[digest] = entry.release_id
                    self._directory[entry.release_id] = entry
                else:
                    entry = self._directory[existing_id]
        else:
            with self._directory_lock:
                entry.worker_id = owner
                entry.worker_release_id = response["release_id"]
                # A re-registration may add what the first lacked (the
                # original table, a fresh name): keep the richer body.
                if body.get("original") is not None or entry.body.get(
                    "original"
                ) is None:
                    entry.body = body
        summary = dict(response)
        summary["release_id"] = entry.release_id
        summary["shard"] = entry.worker_id
        summary["created"] = created
        entry.summary = summary
        if created:
            self.telemetry.incr("releases_registered")
        return (201 if created else 200), summary

    async def _handle_list_releases(
        self, request: HttpRequest
    ) -> tuple[int, dict]:
        with self._directory_lock:
            entries = list(self._directory.values())
        return 200, {"releases": [dict(entry.summary) for entry in entries]}

    async def _handle_release(self, request: HttpRequest) -> tuple[int, dict]:
        entry = self._entry(request.segments[2])
        loop = asyncio.get_running_loop()
        summary = await loop.run_in_executor(
            None, partial(self._forward_release, entry, "GET", "")
        )
        summary["release_id"] = entry.release_id
        summary["shard"] = entry.worker_id
        return 200, summary

    async def _handle_posterior(self, request: HttpRequest) -> tuple[int, dict]:
        return await self._forward_solve(request, "/posterior")

    async def _handle_assess(self, request: HttpRequest) -> tuple[int, dict]:
        return await self._forward_solve(request, "/assess")

    async def _forward_solve(
        self, request: HttpRequest, suffix: str
    ) -> tuple[int, dict]:
        entry = self._entry(request.segments[2])
        body = request.json()
        loop = asyncio.get_running_loop()
        # Captured here, on the request task, where the root span is the
        # active contextvar; the forward runs on an executor thread.
        trace_ctx = get_tracer().context()

        async def run():
            return await loop.run_in_executor(
                None,
                partial(
                    self._forward_release,
                    entry,
                    "POST",
                    suffix,
                    body,
                    trace_ctx,
                ),
            )

        # Forwards occupy a worker thread for the length of the shard's
        # solve; admitting them (429 past capacity) keeps the thread
        # pool free for health/registration and makes front-end
        # saturation visible on /v1/healthz, exactly as for the
        # single-engine service.
        payload = await self.admission.run(run)
        payload["release_id"] = entry.release_id
        payload["shard"] = entry.worker_id
        self.telemetry.incr("solves_forwarded")
        return 200, payload

    # -- fleet health and telemetry ------------------------------------------

    async def _handle_healthz(self, request: HttpRequest) -> tuple[int, dict]:
        loop = asyncio.get_running_loop()
        reports = await loop.run_in_executor(
            None, partial(self.coordinator.check_health, timeout=2.0)
        )
        dead = [r["worker"] for r in reports if not r["alive"]]
        degraded_shards = [
            r["worker"]
            for r in reports
            if r["alive"] and (r["health"] or {}).get("status") != "ok"
        ]
        queue = self.admission.snapshot()
        saturated = queue["depth"] >= queue["capacity"]
        healthy = not dead and not degraded_shards and not saturated
        payload = {
            "status": "ok" if healthy else "degraded",
            "uptime_seconds": self.telemetry.uptime_seconds,
            "releases": len(self._directory),
            "shards": reports,
            "dead_shards": dead,
            "degraded_shards": degraded_shards,
            "queue": queue,
        }
        return (200 if healthy else 503), payload

    async def _handle_telemetry(self, request: HttpRequest) -> tuple[int, dict]:
        status, payload = await super()._handle_telemetry(request)
        loop = asyncio.get_running_loop()
        payload["cluster"] = await loop.run_in_executor(
            None, self.coordinator.aggregate_telemetry
        )
        return status, payload

    async def _handle_metrics(self, request: HttpRequest):
        # The fleet scrape is N blocking HTTP round trips; keep them off
        # the event loop (the base class renders purely from memory).
        loop = asyncio.get_running_loop()
        builder = await loop.run_in_executor(None, self._metrics_builder)
        return 200, TextResponse(builder.render(), METRICS_CONTENT_TYPE)

    def _engine_metrics_into(self, builder: MetricsBuilder) -> None:
        """Per-shard engine series plus exact fleet latency histograms.

        The front-end's own engine never solves (every solve forwards to
        a shard), so instead of its idle counters the exposition carries
        one ``shard``-labelled series set per worker and the bucket-wise
        merged per-endpoint histograms the coordinator aggregates.
        """
        fleet = self.coordinator.aggregate_telemetry()
        alive = 0
        for shard in fleet["workers"]:
            if shard.get("alive"):
                alive += 1
            telemetry = shard.get("telemetry")
            if not telemetry:
                continue
            engine_metrics(
                builder,
                telemetry.get("engine") or {},
                {"shard": shard["worker"]},
            )
        builder.gauge(
            "shards_total",
            len(fleet["workers"]),
            help_text="Shard workers registered with this front-end.",
        )
        builder.gauge(
            "shards_alive", alive, help_text="Shard workers currently alive."
        )
        for endpoint, summary in fleet["aggregate"]["endpoints"].items():
            builder.histogram(
                "shard_request_duration_seconds",
                LATENCY_BOUNDS,
                summary["bucket_counts"],
                summary["total_seconds"],
                {"endpoint": endpoint},
                "Fleet-wide request latency by endpoint "
                "(merged across shards).",
            )
