"""The sharded serving front-end: one address, N engine workers behind it.

``repro serve --shards N`` runs a :class:`ShardedFrontend` — the same
HTTP surface as the single-engine service, but every release lives on
exactly one shard worker (rendezvous-routed by the release's canonical
content digest), so each worker owns its releases' compiled constraint
systems, solve caches and warm starts, and the fleet's total memory and
core count — not one process's — bounds the serving capacity.

Routing and failure semantics:

- *registration* — the front-end computes the same content digest the
  session store uses for idempotency, registers on the digest's top-K
  rendezvous owners (K = the replication factor, default 2) and
  remembers ``(digest, body, primary, replicas)``; the client-visible
  release id is pinned at first registration and survives failover.
- *solves* — posterior/assess bodies forward verbatim to the primary
  owner; worker errors map back status-for-status (a 429 from a
  saturated shard is real backpressure the client should see).
- *failover* — a connection failure marks the worker dead; the request
  *promotes a live replica* (zero re-registration round trips) and only
  re-registers from the stored payload when no replica survives.
  Health probes and heartbeats revive recovered workers, and rendezvous
  hashing sends their keys straight back.
- *membership* — workers dial in over ``POST /shard/v1/join`` and
  ``POST /shard/v1/heartbeat`` (stable identities, liveness timeouts,
  revival of returning workers); joins trigger incremental background
  re-balancing that only touches releases whose top-K owner set
  actually changed.
- *health/telemetry* — ``/v1/healthz`` aggregates worker liveness (any
  dead or degraded shard degrades the fleet, HTTP 503), and
  ``/v1/telemetry`` embeds every shard's counters, the membership event
  history, plus cross-shard engine aggregates.
"""

from __future__ import annotations

import asyncio
import http.client
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from functools import partial

from repro.cluster.coordinator import ClusterCoordinator
from repro.cluster.membership import MembershipConfig
from repro.cluster.protocol import (
    SHARD_PROTOCOL,
    heartbeat_request_from_wire,
    join_request_from_wire,
)
from repro.cluster.retry import RetryPolicy, cluster_env_float
from repro.cluster.router import ClusterError
from repro.obs.metrics import CONTENT_TYPE as METRICS_CONTENT_TYPE
from repro.obs.metrics import MetricsBuilder
from repro.obs.trace import get_tracer
from repro.service.admission import AdmissionController
from repro.service.client import ServiceError
from repro.service.deadline import DEADLINE_HEADER
from repro.service.protocol import HttpError, HttpRequest, TextResponse
from repro.service.telemetry import LATENCY_BOUNDS
from repro.service.server import (
    TRACE_HEADER,
    PrivacyService,
    ServiceConfig,
    engine_metrics,
)
from repro.service.store import release_digest

#: Default per-forward HTTP timeout; solves can be long, registration
#: is not.  Overridable per instance (``REPRO_CLUSTER_FORWARD_TIMEOUT``
#: env var / ``repro serve --forward-timeout``).
FORWARD_TIMEOUT = 600.0

#: Default per-worker health-probe timeout (``/v1/healthz`` fan-out);
#: ``REPRO_CLUSTER_HEALTH_TIMEOUT`` / ``--health-timeout`` override.
HEALTH_TIMEOUT = 2.0


@dataclass
class ReleaseEntry:
    """One registered release's routing record.

    ``worker_id`` is the *primary* (requests forward there);
    ``replicas`` maps every other worker holding a registered copy to
    the release id it knows the release by.  Promotion swaps a replica
    into the primary slot without any wire traffic.
    """

    release_id: str
    digest: str
    body: dict
    worker_id: str
    worker_release_id: str
    summary: dict = field(default_factory=dict)
    replicas: dict[str, str] = field(default_factory=dict)


class ShardedFrontend(PrivacyService):
    """Release-sharding HTTP front-end over a worker fleet."""

    def __init__(
        self,
        config: ServiceConfig | None = None,
        *,
        coordinator: ClusterCoordinator,
        owns_coordinator: bool = True,
        forward_timeout: float | None = None,
        health_timeout: float | None = None,
        retry_policy: RetryPolicy | None = None,
        membership: MembershipConfig | None = None,
        accept_joins: bool = True,
    ) -> None:
        super().__init__(config)
        self.coordinator = coordinator
        self.owns_coordinator = owns_coordinator
        self.forward_timeout = (
            forward_timeout
            if forward_timeout is not None
            else cluster_env_float("FORWARD_TIMEOUT", FORWARD_TIMEOUT)
        )
        self.health_timeout = (
            health_timeout
            if health_timeout is not None
            else cluster_env_float("HEALTH_TIMEOUT", HEALTH_TIMEOUT)
        )
        self.retry = retry_policy or RetryPolicy.from_env()
        self.membership = membership or MembershipConfig.from_env()
        self.replication = self.membership.replication
        self.accept_joins = accept_joins
        if self.config.max_concurrency is None:
            # The base class sized admission for its own (idle) engine;
            # a front-end's capacity is the fleet's, so let several
            # forwards per worker be in flight before 429ing clients.
            self.admission = AdmissionController(
                max_concurrency=max(4, 4 * coordinator.n_workers),
                max_queue=self.config.max_queue,
            )
        self._directory: dict[str, ReleaseEntry] = {}
        self._by_digest: dict[str, str] = {}
        self._directory_lock = threading.Lock()
        # Joins re-balance in the background — one worker, so concurrent
        # joins serialize instead of racing over the directory — while
        # the request path keeps serving.
        self._rebalance_pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="shard-rebalance"
        )
        self._membership_stop = threading.Event()
        self._membership_thread = threading.Thread(
            target=self._membership_loop,
            name="fleet-liveness",
            daemon=True,
        )
        self._membership_thread.start()

    def close(self) -> None:
        self._membership_stop.set()
        self._membership_thread.join(timeout=5.0)
        self._rebalance_pool.shutdown(wait=True, cancel_futures=True)
        super().close()
        if self.owns_coordinator:
            self.coordinator.shutdown()

    # -- forwarding plumbing -------------------------------------------------

    def _forward(
        self,
        worker_id: str,
        method: str,
        path: str,
        payload=None,
        *,
        trace_ctx: dict | None = None,
        deadline=None,
    ) -> dict:
        """One blocking request to one worker; HTTP errors map through.

        ``trace_ctx`` rides the :data:`TRACE_HEADER` so the worker's
        request root span parents on this front-end's — release-sharded
        forwards stitch into one cross-process trace the same way
        component scatters do.  ``deadline`` (the client's parsed
        request budget) forwards as the *remaining* budget, recomputed
        per attempt — a shard never starts computing an answer whose
        requester already gave up waiting at the front door.

        Transport failures retry under the front-end's
        :class:`RetryPolicy` before they escape: one transient refusal
        (a worker mid-restart, a dropped connection) no longer condemns
        a healthy worker to failover.  Worker *verdicts* never retry —
        an HTTP answer means the worker is alive and its answer stands.
        Re-sending is safe on every forwarded path: registration is
        idempotent by content digest and solves are cached/coalesced
        worker-side.
        """
        handle = self.coordinator.worker(worker_id)
        base_headers: dict[str, str] = {}
        if trace_ctx is not None:
            base_headers[TRACE_HEADER] = (
                f"{trace_ctx['trace_id']}:{trace_ctx.get('span_id') or ''}"
            )

        def attempt() -> dict:
            headers = dict(base_headers)
            if deadline is not None:
                # Re-read the clock per attempt: backoff sleeps burned
                # budget too, and the shard should know.
                headers[DEADLINE_HEADER] = deadline.header_value()
            with handle.client(timeout=self.forward_timeout) as client:
                return client.request(
                    method, path, payload, extra_headers=headers or None
                )

        def on_retry(n, exc, sleep) -> None:
            self.telemetry.incr("forward_retries")

        try:
            return self.retry.run(attempt, on_retry=on_retry)
        except ServiceError as exc:
            # The worker answered: relay its verdict status-for-status.
            raise HttpError(exc.status, str(exc), code=exc.code) from exc

    def _entry(self, release_id: str) -> ReleaseEntry:
        with self._directory_lock:
            entry = self._directory.get(release_id)
        if entry is None:
            raise LookupError(f"unknown release {release_id!r}")
        return entry

    def _register_on(self, worker_id: str, entry_body: dict) -> dict:
        return self._forward(worker_id, "POST", "/v1/releases", entry_body)

    def _register_anywhere(
        self, digest: str, entry: ReleaseEntry | None, body: dict
    ) -> tuple[str, dict]:
        """Register on the digest's owner, walking successors past deaths.

        A connection failure marks the owner dead and moves to the next
        rendezvous choice, so registration survives a just-died worker
        the same way solves do; HTTP answers (including 429) relay
        verbatim — the worker is alive and its verdict stands.
        """
        last_exc: Exception | None = None
        for _attempt in range(self.coordinator.n_workers):
            dead = set(self.coordinator.dead_ids())
            if entry is not None and entry.worker_id not in dead:
                owner = entry.worker_id
            else:
                try:
                    owner = self.coordinator.router.owner(
                        digest, exclude=dead
                    )
                except ClusterError as exc:
                    last_exc = exc
                    break
            try:
                return owner, self._register_on(owner, body)
            except HttpError:
                raise
            except (OSError, http.client.HTTPException) as exc:
                self.coordinator.mark_dead(owner)
                last_exc = exc
        raise HttpError(
            503,
            f"no shard worker accepted the registration: {last_exc}",
            code="shard_unavailable",
        ) from last_exc

    def _promote_replica(self, entry: ReleaseEntry) -> bool:
        """Swap a live replica into the primary slot (no wire traffic).

        The replication payoff: the release is already registered on
        its rendezvous co-owners, so surviving an owner death is a
        directory update, not a re-registration round trip.  The dead
        ex-primary stays recorded as a replica — its copy still exists
        on disk/memory there, and a same-identity respawn makes it
        immediately usable again.
        """
        dead = set(self.coordinator.dead_ids())
        order = {
            w: rank
            for rank, w in enumerate(
                self.coordinator.router.ranked(entry.digest)
            )
        }
        with self._directory_lock:
            candidates = [
                (worker_id, release_id)
                for worker_id, release_id in entry.replicas.items()
                if worker_id not in dead and worker_id != entry.worker_id
            ]
            if not candidates:
                return False
            candidates.sort(
                key=lambda item: order.get(item[0], len(order))
            )
            successor, successor_release_id = candidates[0]
            entry.replicas.pop(successor, None)
            entry.replicas[entry.worker_id] = entry.worker_release_id
            entry.worker_id = successor
            entry.worker_release_id = successor_release_id
        self.telemetry.incr("release_promotions")
        self.coordinator.events.record(
            "release_promoted", release=entry.release_id, worker=successor
        )
        return True

    def _replicate(self, entry: ReleaseEntry) -> int:
        """Register ``entry`` on missing top-K co-owners (best-effort).

        Returns how many new replicas were established.  A transport
        failure marks that worker dead and moves on — replication must
        never fail the registration that triggered it.
        """
        established = 0
        try:
            dead = set(self.coordinator.dead_ids())
            desired = self.coordinator.router.owners(
                entry.digest, k=self.replication, exclude=dead
            )
        except ClusterError:
            return 0
        with self._directory_lock:
            holders = {entry.worker_id, *entry.replicas}
        for owner in desired:
            if owner in holders:
                continue
            try:
                response = self._register_on(owner, entry.body)
            except HttpError:
                # The worker answered but refused; nothing to record.
                continue
            except (OSError, http.client.HTTPException):
                self.coordinator.mark_dead(owner)
                continue
            with self._directory_lock:
                if owner != entry.worker_id:
                    entry.replicas[owner] = response["release_id"]
            established += 1
        if established:
            self.telemetry.incr("release_replications", established)
        return established

    def _failover(self, entry: ReleaseEntry) -> None:
        """Re-home a release whose owner died, from the stored payload.

        The slow path, reached only when no registered replica
        survives.  Each registration attempt already retries transient
        transport faults under the :class:`RetryPolicy` (inside
        :meth:`_forward`), so a successor is condemned only after the
        policy's attempts all failed — not on a single refused
        connection.
        """
        self.coordinator.mark_dead(entry.worker_id)
        dead = set(self.coordinator.dead_ids())
        successor = self.coordinator.router.owner(entry.digest, exclude=dead)
        try:
            response = self._register_on(successor, entry.body)
        except (OSError, http.client.HTTPException):
            # The successor is gone too (policy exhausted): exclude
            # *it*, so the caller's next attempt walks further down the
            # rendezvous order instead of re-trying a worker we just
            # watched fail.
            self.coordinator.mark_dead(successor)
            raise
        with self._directory_lock:
            entry.replicas.pop(successor, None)
            entry.replicas[entry.worker_id] = entry.worker_release_id
            entry.worker_id = successor
            entry.worker_release_id = response["release_id"]
        self.telemetry.incr("release_failovers")

    def _entry_target(self, entry: ReleaseEntry) -> tuple[str, str]:
        """A consistent (worker_id, worker_release_id) pair for ``entry``.

        Both fields change together under a failover; reading them under
        the directory lock prevents a torn pair (new worker, stale
        release id) from racing a concurrent re-home.
        """
        with self._directory_lock:
            return entry.worker_id, entry.worker_release_id

    def _forward_release(
        self,
        entry: ReleaseEntry,
        method: str,
        path_suffix: str,
        payload=None,
        trace_ctx: dict | None = None,
        deadline=None,
    ) -> dict:
        """Forward to a release's owner, walking failures.

        Every failed attempt eliminates at least one worker from
        routing, so ``n_workers + 1`` attempts suffice to reach the last
        healthy candidate.  An owner that is alive but no longer knows
        the release (restarted by a supervisor with an empty store) gets
        the release re-registered from the stored body once — the
        pinned client-visible id must survive worker restarts, not only
        deaths.
        """
        last_exc: Exception | None = None
        rehomed_404 = False
        for _attempt in range(self.coordinator.n_workers + 1):
            worker_id, worker_release_id = self._entry_target(entry)
            try:
                if worker_id in set(self.coordinator.dead_ids()):
                    # Replica promotion first: zero round trips.  Only
                    # when no registered copy survives does the release
                    # re-register from the stored payload.
                    if self._promote_replica(entry):
                        self._schedule_repair(entry)
                    else:
                        self._failover(entry)
                        self._schedule_repair(entry)
                    worker_id, worker_release_id = self._entry_target(entry)
                path = f"/v1/releases/{worker_release_id}{path_suffix}"
                return self._forward(
                    worker_id,
                    method,
                    path,
                    payload,
                    trace_ctx=trace_ctx,
                    deadline=deadline,
                )
            except HttpError as exc:
                if (
                    exc.status == 404
                    and exc.code == "unknown_release"
                    and not rehomed_404
                ):
                    rehomed_404 = True
                    try:
                        response = self._register_on(worker_id, entry.body)
                    except (OSError, http.client.HTTPException) as reg_exc:
                        self.coordinator.mark_dead(worker_id)
                        last_exc = reg_exc
                        continue
                    with self._directory_lock:
                        entry.worker_id = worker_id
                        entry.worker_release_id = response["release_id"]
                    continue
                # The worker (or its successor) answered; relay verbatim.
                raise
            except (OSError, http.client.HTTPException, ClusterError) as exc:
                self.coordinator.mark_dead(worker_id)
                last_exc = exc
        raise HttpError(
            503,
            f"shard {entry.worker_id} is unreachable and failover failed: "
            f"{last_exc}",
            code="shard_unavailable",
        ) from last_exc

    # -- membership: joins, heartbeats, liveness, re-balancing ---------------

    def _membership_loop(self) -> None:
        """Background liveness sweep: silence past the timeout is death."""
        interval = max(
            0.2, min(1.0, self.membership.liveness_timeout / 4.0)
        )
        while not self._membership_stop.wait(interval):
            try:
                expired = self.coordinator.sweep_expired(
                    self.membership.liveness_timeout
                )
            except Exception:
                continue
            for _worker_id in expired:
                self.telemetry.incr("membership_expired")

    def _schedule_repair(self, entry: ReleaseEntry) -> None:
        """Restore ``entry``'s replica count off the request path."""
        try:
            self._rebalance_pool.submit(self._replicate, entry)
        except RuntimeError:
            # Shutting down; repairs die with the pool.
            pass

    def _schedule_rebalance(self, reason: str, worker_id: str) -> None:
        try:
            self._rebalance_pool.submit(self._rebalance, reason, worker_id)
        except RuntimeError:
            pass

    def _rebalance(self, reason: str, worker_id: str) -> None:
        """Incrementally re-balance the directory after membership churn.

        Two distinct flows, counted separately because they mean
        opposite things operationally:

        - ``moved`` — a release whose top-K owner set *changed* (a new
          identity joined the ring) gains a replica on its new
          co-owner.  Only those releases see wire traffic; everyone
          else's top-K is untouched — rendezvous hashing's minimal-
          reassignment property, now load-bearing for joins too.
        - ``reseeded`` — a *returning* identity (respawn with a
          persisted id, revival after missed heartbeats) was already in
          every relevant top-K set; its releases re-push their bodies
          so an empty-store respawn re-learns them.  ``moved`` stays 0:
          the re-routing storm an ephemeral-port respawn used to cause
          is exactly what the stable identity avoided.
        """
        moved = 0
        reseeded = 0
        rejoin = reason in ("rejoined", "revived")
        with self._directory_lock:
            entries = list(self._directory.values())
        with get_tracer().span(
            "cluster.rebalance", reason=reason, worker=worker_id,
            releases=len(entries),
        ) as span:
            for entry in entries:
                try:
                    dead = set(self.coordinator.dead_ids())
                    desired = self.coordinator.router.owners(
                        entry.digest, k=self.replication, exclude=dead
                    )
                except ClusterError:
                    break
                with self._directory_lock:
                    current = {entry.worker_id, *entry.replicas}
                for owner in desired:
                    if owner in current:
                        if owner != worker_id or not rejoin:
                            continue
                        # A returning worker already co-owns this key;
                        # push the body again so a respawn that lost
                        # its store re-learns the release.
                        try:
                            response = self._register_on(owner, entry.body)
                        except HttpError:
                            continue
                        except (OSError, http.client.HTTPException):
                            self.coordinator.mark_dead(owner)
                            break
                        with self._directory_lock:
                            if entry.worker_id == owner:
                                entry.worker_release_id = response[
                                    "release_id"
                                ]
                            else:
                                entry.replicas[owner] = response["release_id"]
                        reseeded += 1
                        continue
                    try:
                        response = self._register_on(owner, entry.body)
                    except HttpError:
                        continue
                    except (OSError, http.client.HTTPException):
                        self.coordinator.mark_dead(owner)
                        break
                    with self._directory_lock:
                        entry.replicas[owner] = response["release_id"]
                    moved += 1
            span.set(moved=moved, reseeded=reseeded)
        self.telemetry.incr("rebalance_runs")
        if moved:
            self.telemetry.incr("rebalance_keys_moved", moved)
        if reseeded:
            self.telemetry.incr("rebalance_keys_reseeded", reseeded)
        self.coordinator.events.record(
            "rebalance",
            reason=reason,
            worker=worker_id,
            moved=moved,
            reseeded=reseeded,
            releases=len(entries),
        )

    def _route(self, request: HttpRequest):
        segments = request.segments
        if segments in (
            ("shard", "v1", "join"),
            ("shard", "v1", "heartbeat"),
        ):
            if request.method != "POST":
                raise HttpError(
                    405,
                    f"{request.method} not allowed here (allowed: POST)",
                    code="method_not_allowed",
                    headers={"Allow": "POST"},
                )
            if segments[2] == "join":
                return "POST /shard/v1/join", self._handle_join
            return "POST /shard/v1/heartbeat", self._handle_heartbeat
        return super()._route(request)

    async def _handle_join(self, request: HttpRequest) -> tuple[int, dict]:
        if not self.accept_joins:
            raise HttpError(
                403,
                "this front-end does not accept dynamic joins "
                "(started with --no-accept-joins)",
                code="joins_disabled",
            )
        worker_id, host, port = join_request_from_wire(request.json())
        loop = asyncio.get_running_loop()
        event = await loop.run_in_executor(
            None, partial(self._admit_worker, worker_id, host, port)
        )
        return 200, {
            "protocol": SHARD_PROTOCOL,
            "worker_id": worker_id,
            "event": event,
            "workers": self.coordinator.n_workers,
            "heartbeat_interval": self.membership.heartbeat_interval,
            "liveness_timeout": self.membership.liveness_timeout,
        }

    def _admit_worker(self, worker_id: str, host: str, port: int) -> str:
        with get_tracer().span(
            "cluster.join", worker=worker_id, address=f"{host}:{port}"
        ) as span:
            event = self.coordinator.add_worker(worker_id, host, port)
            span.set(event=event)
        self.telemetry.incr(f"membership_{event}")
        if event in ("joined", "rejoined"):
            self._schedule_rebalance(event, worker_id)
        return event

    async def _handle_heartbeat(
        self, request: HttpRequest
    ) -> tuple[int, dict]:
        worker_id, host, port = heartbeat_request_from_wire(request.json())
        known = worker_id in self.coordinator.router.worker_ids
        if not known and not self.accept_joins:
            # A static fleet does not grow via heartbeats; the sender
            # sees ``known: false`` and keeps its own counsel.
            return 200, {
                "protocol": SHARD_PROTOCOL,
                "worker_id": worker_id,
                "known": False,
            }
        loop = asyncio.get_running_loop()
        event = await loop.run_in_executor(
            None,
            partial(self.coordinator.heartbeat, worker_id, host, port),
        )
        if event != "ok":
            self.telemetry.incr(f"membership_{event}")
            if event in ("joined", "rejoined", "revived"):
                self._schedule_rebalance(
                    "rejoined" if event == "revived" else event, worker_id
                )
        return 200, {
            "protocol": SHARD_PROTOCOL,
            "worker_id": worker_id,
            "known": True,
            "event": event,
            "heartbeat_interval": self.membership.heartbeat_interval,
        }

    # -- endpoint overrides --------------------------------------------------

    async def _handle_register(self, request: HttpRequest) -> tuple[int, dict]:
        body = self._body_object(request, ("release", "original", "name"))
        release_payload = body.get("release")
        if release_payload is None:
            raise HttpError(
                400, "registration needs a 'release' object", code="bad_request"
            )
        loop = asyncio.get_running_loop()
        assert self._register_lock is not None
        async with self._register_lock:
            status, summary = await loop.run_in_executor(
                None, partial(self._register_sync, body, release_payload)
            )
        return status, summary

    def _register_sync(self, body: dict, release_payload) -> tuple[int, dict]:
        digest = release_digest(release_payload)
        with self._directory_lock:
            known_id = self._by_digest.get(digest)
            entry = self._directory.get(known_id) if known_id else None
        owner, response = self._register_anywhere(digest, entry, body)
        created = bool(response.pop("created", False)) and entry is None
        if entry is None:
            entry = ReleaseEntry(
                release_id=response["release_id"],
                digest=digest,
                body=body,
                worker_id=owner,
                worker_release_id=response["release_id"],
            )
            with self._directory_lock:
                # Pin the client-visible id once; a racing duplicate
                # keeps the first registration's record.
                existing_id = self._by_digest.get(digest)
                if existing_id is None:
                    self._by_digest[digest] = entry.release_id
                    self._directory[entry.release_id] = entry
                else:
                    entry = self._directory[existing_id]
        else:
            with self._directory_lock:
                entry.worker_id = owner
                entry.worker_release_id = response["release_id"]
                # A re-registration may add what the first lacked (the
                # original table, a fresh name): keep the richer body.
                if body.get("original") is not None or entry.body.get(
                    "original"
                ) is None:
                    entry.body = body
        # Replicate onto the remaining top-K co-owners before answering:
        # the release must already survive an owner death when the 201
        # reaches the client.  Best-effort per co-owner — a fleet of one
        # simply has no one to replicate to.
        self._replicate(entry)
        summary = dict(response)
        summary["release_id"] = entry.release_id
        summary["shard"] = entry.worker_id
        with self._directory_lock:
            summary["replicas"] = sorted(entry.replicas)
        summary["created"] = created
        entry.summary = summary
        if created:
            self.telemetry.incr("releases_registered")
        return (201 if created else 200), summary

    async def _handle_list_releases(
        self, request: HttpRequest
    ) -> tuple[int, dict]:
        with self._directory_lock:
            entries = list(self._directory.values())
        return 200, {"releases": [dict(entry.summary) for entry in entries]}

    async def _handle_release(self, request: HttpRequest) -> tuple[int, dict]:
        entry = self._entry(request.segments[2])
        loop = asyncio.get_running_loop()
        summary = await loop.run_in_executor(
            None, partial(self._forward_release, entry, "GET", "")
        )
        summary["release_id"] = entry.release_id
        summary["shard"] = entry.worker_id
        with self._directory_lock:
            summary["replicas"] = sorted(entry.replicas)
        return 200, summary

    async def _handle_posterior(self, request: HttpRequest) -> tuple[int, dict]:
        return await self._forward_solve(request, "/posterior")

    async def _handle_assess(self, request: HttpRequest) -> tuple[int, dict]:
        return await self._forward_solve(request, "/assess")

    async def _forward_solve(
        self, request: HttpRequest, suffix: str
    ) -> tuple[int, dict]:
        entry = self._entry(request.segments[2])
        body = request.json()
        loop = asyncio.get_running_loop()
        # Captured here, on the request task, where the root span is the
        # active contextvar; the forward runs on an executor thread.
        trace_ctx = get_tracer().context()

        async def run():
            return await loop.run_in_executor(
                None,
                partial(
                    self._forward_release,
                    entry,
                    "POST",
                    suffix,
                    body,
                    trace_ctx,
                    request.deadline,
                ),
            )

        # Forwards occupy a worker thread for the length of the shard's
        # solve; admitting them (429 past capacity) keeps the thread
        # pool free for health/registration and makes front-end
        # saturation visible on /v1/healthz, exactly as for the
        # single-engine service.  The deadline is checked after the
        # front-end's own queue wait — budget the queue burned here is
        # budget the shard never sees.
        payload = await self.admission.run(run, deadline=request.deadline)
        payload["release_id"] = entry.release_id
        payload["shard"] = entry.worker_id
        self.telemetry.incr("solves_forwarded")
        return 200, payload

    # -- fleet health and telemetry ------------------------------------------

    async def _handle_healthz(self, request: HttpRequest) -> tuple[int, dict]:
        loop = asyncio.get_running_loop()
        reports = await loop.run_in_executor(
            None,
            partial(
                self.coordinator.check_health, timeout=self.health_timeout
            ),
        )
        dead = [r["worker"] for r in reports if not r["alive"]]
        degraded_shards = [
            r["worker"]
            for r in reports
            if r["alive"] and (r["health"] or {}).get("status") != "ok"
        ]
        queue = self.admission.snapshot()
        saturated = queue["depth"] >= queue["capacity"]
        healthy = not dead and not degraded_shards and not saturated
        payload = {
            "status": "ok" if healthy else "degraded",
            "uptime_seconds": self.telemetry.uptime_seconds,
            "releases": len(self._directory),
            "shards": reports,
            "dead_shards": dead,
            "degraded_shards": degraded_shards,
            "queue": queue,
        }
        return (200 if healthy else 503), payload

    async def _handle_telemetry(self, request: HttpRequest) -> tuple[int, dict]:
        status, payload = await super()._handle_telemetry(request)
        loop = asyncio.get_running_loop()
        payload["cluster"] = await loop.run_in_executor(
            None, self.coordinator.aggregate_telemetry
        )
        payload["membership"] = {
            "accept_joins": self.accept_joins,
            "replication": self.replication,
            "heartbeat_interval": self.membership.heartbeat_interval,
            "liveness_timeout": self.membership.liveness_timeout,
            "forward_timeout": self.forward_timeout,
            "health_timeout": self.health_timeout,
        }
        return status, payload

    async def _handle_metrics(self, request: HttpRequest):
        # The fleet scrape is N blocking HTTP round trips; keep them off
        # the event loop (the base class renders purely from memory).
        loop = asyncio.get_running_loop()
        builder = await loop.run_in_executor(None, self._metrics_builder)
        return 200, TextResponse(builder.render(), METRICS_CONTENT_TYPE)

    def _engine_metrics_into(self, builder: MetricsBuilder) -> None:
        """Per-shard engine series plus exact fleet latency histograms.

        The front-end's own engine never solves (every solve forwards to
        a shard), so instead of its idle counters the exposition carries
        one ``shard``-labelled series set per worker and the bucket-wise
        merged per-endpoint histograms the coordinator aggregates.
        """
        fleet = self.coordinator.aggregate_telemetry()
        alive = 0
        for shard in fleet["workers"]:
            if shard.get("alive"):
                alive += 1
            telemetry = shard.get("telemetry")
            if not telemetry:
                continue
            engine_metrics(
                builder,
                telemetry.get("engine") or {},
                {"shard": shard["worker"]},
            )
        builder.gauge(
            "shards_total",
            len(fleet["workers"]),
            help_text="Shard workers registered with this front-end.",
        )
        builder.gauge(
            "shards_alive", alive, help_text="Shard workers currently alive."
        )
        for event, count in sorted(
            self.coordinator.events.counts().items()
        ):
            builder.counter(
                "membership_events_total",
                count,
                {"event": event},
                "Fleet membership events (joins, revivals, expiries, "
                "deaths, rebalances) by kind.",
            )
        with self._directory_lock:
            replicas = sum(
                len(entry.replicas) for entry in self._directory.values()
            )
        builder.gauge(
            "release_replicas",
            replicas,
            help_text=(
                "Registered standby release copies beyond each primary."
            ),
        )
        for endpoint, summary in fleet["aggregate"]["endpoints"].items():
            builder.histogram(
                "shard_request_duration_seconds",
                LATENCY_BOUNDS,
                summary["bucket_counts"],
                summary["total_seconds"],
                {"endpoint": endpoint},
                "Fleet-wide request latency by endpoint "
                "(merged across shards).",
            )
