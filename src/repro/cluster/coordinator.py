"""The shard coordinator: worker fleet, scatter/gather, failure handling.

A :class:`ClusterCoordinator` owns a set of shard workers — subprocesses
it spawned locally (``spawn_local``) or remote ``repro shard-worker``
instances it merely attached to (``attach``) — and provides the two
cluster operations everything else builds on:

- :meth:`solve_components` — scatter pre-fingerprinted component bundles
  across workers (rendezvous-routed by fingerprint, so repeat solves hit
  the shard whose cache already holds them), gather the per-component
  posteriors, and reassign the share of any worker that dies mid-solve.
  Jobs are deduplicated by fingerprint before dispatch and results are
  applied first-write-wins, so even when a presumed-dead worker's answer
  races a reassigned copy, each component contributes exactly once
  (at-most-once application).
- :meth:`check_health` / :meth:`aggregate_telemetry` — fleet-level
  probes: health re-probes revive workers that recovered, and telemetry
  merges every shard's engine counters (including the per-fingerprint-
  prefix cache breakdown) for the front-end's ``/v1/telemetry``.

The coordinator is deliberately state-light: routing derives from the
worker list, dedup state lives per scatter call, and release ownership
(for the serving front-end) lives in :mod:`repro.cluster.frontend`.
Worker death is detected by failed requests and health probes, not by
leases — on loopback and LAN deployments, connection errors are prompt.
"""

from __future__ import annotations

import http.client
import os
import subprocess
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.cluster.membership import parse_worker_address
from repro.cluster.protocol import (
    ShardClient,
    response_spans,
    solve_request_to_wire,
    solve_response_from_wire,
)
from repro.cluster.retry import RetryPolicy
from repro.cluster.router import ClusterError, ShardRouter
from repro.engine.component import ComponentSolve
from repro.errors import InfeasibleKnowledgeError
from repro.maxent.config import MaxEntConfig
from repro.maxent.decompose import Component
from repro.obs.events import EventLog
from repro.obs.logging import get_logger
from repro.obs.trace import get_tracer
from repro.service.client import ServiceError
from repro.service.telemetry import LatencyHistogram

_log = get_logger("cluster")

#: Jobs per wire request; bounds message sizes and gives the reassignment
#: logic mid-solve granularity (a dead worker loses at most one chunk of
#: in-flight work per round, not its whole share).
DEFAULT_CHUNK_SIZE = 32

#: How long one chunk may take end to end before the worker is presumed
#: dead.  Generous: a chunk is at most DEFAULT_CHUNK_SIZE solves.
DEFAULT_SOLVE_TIMEOUT = 600.0


def free_port(host: str = "127.0.0.1") -> int:
    """Ask the OS for a currently free TCP port (spawn-time allocation)."""
    import socket

    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as sock:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((host, 0))
        return sock.getsockname()[1]


@dataclass
class WorkerHandle:
    """One shard worker: address, optional local process, liveness flag."""

    worker_id: str
    host: str
    port: int
    process: subprocess.Popen | None = None
    alive: bool = True
    failures: int = 0
    reassigned_jobs: int = 0
    spawned_at: float = field(default_factory=time.time)
    #: Set once the worker announces itself over ``/shard/v1/join`` or
    #: ``/shard/v1/heartbeat``; only heartbeating workers are subject
    #: to the liveness sweep (statically attached fleets keep the old
    #: probe/request-based detection).
    heartbeating: bool = False
    last_heartbeat: float | None = None
    revivals: int = 0
    #: Cached idle solve-path client (one keep-alive connection per
    #: worker).  Chunk dispatch checks it out, runs the request with no
    #: lock held, and returns it — the measured single-worker overhead
    #: was per-chunk TCP setup/teardown stalls — while probes and
    #: one-shot calls keep using fresh :meth:`client` instances.
    _solve_client: ShardClient | None = field(
        default=None, repr=False, compare=False
    )
    #: Guards only the cached-client *slot*, never a request in flight:
    #: concurrent solves to one worker run on extra connections (closed
    #: after use) instead of queueing, and ``drop_solve_client`` /
    #: ``mark_dead`` / ``shutdown`` never wait on a blocked round trip.
    _solve_lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def client(self, *, timeout: float = DEFAULT_SOLVE_TIMEOUT) -> ShardClient:
        """A fresh blocking client (one per call site: thread safety)."""
        return ShardClient(self.host, self.port, timeout=timeout)

    def checkout_solve_client(self, *, timeout: float) -> ShardClient:
        """Take the cached keep-alive client (or a fresh one) for one call.

        The underlying :class:`ShardClient` reconnects transparently
        after a server-side keep-alive close.  Pair with
        :meth:`return_solve_client` on success; on a transport failure
        just ``close()`` the client and let the next dispatch start from
        a fresh connection.
        """
        with self._solve_lock:
            client = self._solve_client
            self._solve_client = None
        if client is None:
            client = ShardClient(self.host, self.port, timeout=timeout)
        return client

    def return_solve_client(self, client: ShardClient) -> None:
        """Cache a healthy client for reuse (closing any surplus one)."""
        with self._solve_lock:
            if self._solve_client is None:
                self._solve_client = client
                return
        client.close()

    def drop_solve_client(self) -> None:
        """Close the cached idle connection (error recovery; non-blocking).

        A client currently checked out by an in-flight request is not
        touched — its request fails or completes on its own, exactly as
        per-call clients used to."""
        with self._solve_lock:
            client = self._solve_client
            self._solve_client = None
        if client is not None:
            client.close()

    def is_local(self) -> bool:
        """True for workers this coordinator spawned (and may kill)."""
        return self.process is not None

    def address(self) -> str:
        """The worker's current ``host:port`` contact string."""
        return f"{self.host}:{self.port}"

    def summary(self) -> dict:
        """JSON-ready fleet-listing entry."""
        return {
            "worker": self.worker_id,
            "address": self.address(),
            "alive": self.alive,
            "local": self.is_local(),
            "failures": self.failures,
            "reassigned_jobs": self.reassigned_jobs,
            "heartbeating": self.heartbeating,
            "heartbeat_age_seconds": (
                round(time.time() - self.last_heartbeat, 3)
                if self.last_heartbeat is not None
                else None
            ),
            "revivals": self.revivals,
        }


def _worker_environment() -> dict[str, str]:
    """Subprocess env with this checkout's ``src`` on the import path."""
    env = os.environ.copy()
    src_dir = str(Path(__file__).resolve().parents[2])
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        src_dir if not existing else os.pathsep.join([src_dir, existing])
    )
    return env


class ClusterCoordinator:
    """Shard fleet management plus the scatter/gather solve primitive."""

    def __init__(
        self,
        handles: list[WorkerHandle],
        *,
        owns_workers: bool = False,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        solve_timeout: float = DEFAULT_SOLVE_TIMEOUT,
        retry_policy: RetryPolicy | None = None,
        allow_empty: bool = False,
    ) -> None:
        if not handles and not allow_empty:
            raise ClusterError("a cluster needs at least one shard worker")
        self.handles = list(handles)
        self.owns_workers = owns_workers
        self.chunk_size = max(int(chunk_size), 1)
        self.solve_timeout = solve_timeout
        #: Backoff shape of the 429 absorb-in-place loop (jittered, so
        #: chunks that collided on a saturated worker de-correlate).
        self.retry_policy = retry_policy or RetryPolicy.from_env()
        self.router = ShardRouter([h.worker_id for h in self.handles])
        self._by_id = {h.worker_id: h for h in self.handles}
        self._lock = threading.Lock()
        self._closed = False
        #: Membership history: joins, revivals, expiries, presumed
        #: deaths — the "what happened to the fleet" record telemetry
        #: surfaces.
        self.events = EventLog()
        #: Test/diagnostic hook: called as ``hook(worker_id, chunk_index)``
        #: after each successfully gathered chunk — the deterministic
        #: "kill a worker mid-solve" injection point.
        self.after_chunk_hook = None

    # -- construction --------------------------------------------------------

    @classmethod
    def spawn_local(
        cls,
        n_workers: int,
        *,
        worker_args: list[str] | None = None,
        cache_path: str | None = None,
        startup_timeout: float = 60.0,
        host: str = "127.0.0.1",
        **kwargs,
    ) -> "ClusterCoordinator":
        """Spawn ``n_workers`` ``repro shard-worker`` subprocesses.

        Each worker gets its own OS-assigned port, a *stable* identity
        (``shard0``, ``shard1``, ... — forwarded via ``--worker-id`` so
        the worker self-reports the same id the coordinator routes by)
        and, when ``cache_path`` is set, a per-shard ``<path>.shardN``
        cache file.  Identities being index-based rather than
        ``host:port`` means a restarted spawned fleet keeps its routing
        (and therefore its per-shard cache warmth) even though every
        port changed.
        """
        if n_workers <= 0:
            raise ClusterError(f"n_workers must be positive, got {n_workers}")
        handles: list[WorkerHandle] = []
        env = _worker_environment()
        try:
            for index in range(n_workers):
                port = free_port(host)
                worker_id = f"shard{index}"
                command = [
                    sys.executable,
                    "-m",
                    "repro",
                    "shard-worker",
                    "--host",
                    host,
                    "--port",
                    str(port),
                    "--worker-id",
                    worker_id,
                    *(worker_args or []),
                ]
                if cache_path:
                    command += ["--cache-path", f"{cache_path}.shard{index}"]
                process = subprocess.Popen(command, env=env)
                handles.append(
                    WorkerHandle(
                        worker_id=worker_id,
                        host=host,
                        port=port,
                        process=process,
                    )
                )
            for handle in handles:
                with handle.client(timeout=startup_timeout) as client:
                    client.wait_until_healthy(timeout=startup_timeout)
        except BaseException:
            for handle in handles:
                if handle.process is not None:
                    handle.process.terminate()
            raise
        return cls(handles, owns_workers=True, **kwargs)

    @classmethod
    def attach(cls, addresses, **kwargs) -> "ClusterCoordinator":
        """Attach to already-running workers (``[id@]host:port`` strings).

        Without the ``id@`` prefix a worker's identity is its address
        (the pre-elastic behaviour, routing-compatible with existing
        fixed-port fleets); with it, the identity survives the worker
        respawning on a different port.
        """
        if isinstance(addresses, str):
            addresses = [a for a in addresses.split(",") if a.strip()]
        handles = []
        for address in addresses:
            worker_id, host, port = parse_worker_address(address)
            handles.append(
                WorkerHandle(worker_id=worker_id, host=host, port=port)
            )
        return cls(handles, owns_workers=False, **kwargs)

    # -- fleet state ---------------------------------------------------------

    @property
    def n_workers(self) -> int:
        """Registered workers, dead or alive."""
        return len(self.handles)

    def worker(self, worker_id: str) -> WorkerHandle:
        """The handle registered under ``worker_id``."""
        try:
            return self._by_id[worker_id]
        except KeyError:
            raise ClusterError(f"unknown worker {worker_id!r}") from None

    def alive_ids(self) -> list[str]:
        """Ids of workers currently considered alive."""
        with self._lock:
            return [h.worker_id for h in self.handles if h.alive]

    def dead_ids(self) -> list[str]:
        """Ids of workers currently considered dead."""
        with self._lock:
            return [h.worker_id for h in self.handles if not h.alive]

    def mark_dead(self, worker_id: str) -> None:
        """Exclude a worker from routing until a probe/heartbeat revives it."""
        died = False
        with self._lock:
            handle = self._by_id.get(worker_id)
            if handle is not None and handle.alive:
                handle.alive = False
                handle.failures += 1
                died = True
        if handle is not None:
            # A presumed-dead worker's keep-alive connection is stale by
            # definition; a revived worker gets a fresh one.
            handle.drop_solve_client()
        if died:
            self.events.record("presumed_dead", worker=worker_id)

    # -- dynamic membership --------------------------------------------------

    def add_worker(
        self,
        worker_id: str,
        host: str,
        port: int,
        *,
        process: subprocess.Popen | None = None,
    ) -> str:
        """Register (or re-register) a worker; returns what happened.

        The membership primitive behind ``POST /shard/v1/join``:

        - ``"joined"`` — a brand-new identity entered the ring;
        - ``"rejoined"`` — a known identity came back (it was dead, or
          respawned on a new address): same rendezvous slot, so its
          keys return without any re-routing of anyone else's;
        - ``"refreshed"`` — a live worker re-announced itself (join
          retries are idempotent).
        """
        now = time.time()
        stale_connection = False
        with self._lock:
            handle = self._by_id.get(worker_id)
            if handle is None:
                handle = WorkerHandle(
                    worker_id=worker_id,
                    host=host,
                    port=port,
                    process=process,
                    heartbeating=True,
                    last_heartbeat=now,
                )
                self.handles.append(handle)
                self._by_id[worker_id] = handle
                self.router.add(worker_id)
                event = "joined"
            else:
                address_changed = (host, port) != (handle.host, handle.port)
                was_dead = not handle.alive
                handle.host = host
                handle.port = port
                handle.alive = True
                handle.heartbeating = True
                handle.last_heartbeat = now
                if process is not None:
                    handle.process = process
                if was_dead:
                    handle.revivals += 1
                stale_connection = address_changed or was_dead
                event = (
                    "rejoined" if (was_dead or address_changed) else
                    "refreshed"
                )
        if stale_connection:
            handle.drop_solve_client()
        self.events.record(event, worker=worker_id, address=f"{host}:{port}")
        if event != "refreshed":
            _log.info(
                f"worker {worker_id} {event} at {host}:{port}",
                extra={"fields": {"worker": worker_id, "event": event}},
            )
        return event

    def heartbeat(self, worker_id: str, host: str, port: int) -> str:
        """Refresh a worker's liveness; revive it if presumed dead.

        An unknown identity is auto-registered — to a restarted
        front-end with an empty fleet, a heartbeat is as good as a
        join.  Returns the membership event (``"ok"`` when nothing
        changed).
        """
        now = time.time()
        with self._lock:
            handle = self._by_id.get(worker_id)
            known = handle is not None
            if known:
                address_changed = (host, port) != (handle.host, handle.port)
                was_dead = not handle.alive
                if not address_changed and not was_dead:
                    handle.last_heartbeat = now
                    handle.heartbeating = True
                    return "ok"
        if not known:
            return self.add_worker(worker_id, host, port)
        event = self.add_worker(worker_id, host, port)
        return "revived" if event == "rejoined" else event

    def sweep_expired(self, liveness_timeout: float) -> list[str]:
        """Mark heartbeating workers silent past ``liveness_timeout`` dead.

        Only workers that ever heartbeated are swept: statically
        attached or spawned fleets without ``--join`` keep the original
        probe/request-based failure detection, so the sweep can run
        unconditionally.
        """
        now = time.time()
        expired: list[WorkerHandle] = []
        with self._lock:
            for handle in self.handles:
                if (
                    handle.alive
                    and handle.heartbeating
                    and handle.last_heartbeat is not None
                    and now - handle.last_heartbeat > liveness_timeout
                ):
                    handle.alive = False
                    handle.failures += 1
                    expired.append(handle)
        for handle in expired:
            handle.drop_solve_client()
            self.events.record(
                "expired",
                worker=handle.worker_id,
                silent_seconds=round(now - handle.last_heartbeat, 3),
            )
            _log.warning(
                f"worker {handle.worker_id} missed heartbeats for "
                f"{now - handle.last_heartbeat:.1f}s; marked dead",
                extra={"fields": {"worker": handle.worker_id}},
            )
        return [handle.worker_id for handle in expired]

    def check_health(self, *, timeout: float = 2.0) -> list[dict]:
        """Probe every worker's ``/v1/healthz``; revive those that answer.

        Probes run in parallel, so one unreachable worker costs the
        caller one probe timeout, not one per dead worker — front-end
        health checks must answer inside a load balancer's own timeout.
        Returns one entry per worker: the worker id, liveness, and the
        health payload (which carries ``"status": "degraded"`` when the
        worker's admission queue is saturated).
        """

        def probe(handle: WorkerHandle) -> dict:
            payload = None
            error = None
            try:
                with handle.client(timeout=timeout) as client:
                    payload = client.healthz()
                alive = True
            except ServiceError as exc:
                # An HTTP answer means the process lives — a saturated
                # worker answers 503 with a degraded body.
                payload = {"status": "degraded", "error": str(exc)}
                alive = True
            except OSError as exc:
                alive = False
                error = str(exc)
            with self._lock:
                changed = handle.alive != alive
                if changed and alive:
                    handle.revivals += 1
                handle.alive = alive
            if changed:
                self.events.record(
                    "revived" if alive else "probe_dead",
                    worker=handle.worker_id,
                )
            return {
                "worker": handle.worker_id,
                "alive": alive,
                "health": payload,
                "error": error,
            }

        handles = list(self.handles)
        if not handles:
            return []
        with ThreadPoolExecutor(max_workers=len(handles)) as pool:
            return list(pool.map(probe, handles))

    # -- the scatter/gather solve primitive ----------------------------------

    def solve_components(
        self,
        fingerprints: list[str],
        components: list[Component],
        config: MaxEntConfig,
        warm_starts: list[np.ndarray | None] | None = None,
        *,
        trace_ctx: dict | None = None,
    ) -> list[ComponentSolve]:
        """Scatter component jobs across the fleet; gather in job order.

        Dedup happens at two layers: identical fingerprints within the
        call dispatch once (their result fans back out to every
        position), and gathered results apply first-write-wins per
        fingerprint, so a retried job whose original answer arrives late
        is dropped rather than double-applied.
        """
        n = len(components)
        if len(fingerprints) != n:
            raise ClusterError(
                f"{len(fingerprints)} fingerprint(s) for {n} component(s)"
            )
        with get_tracer().span(
            "cluster.scatter", ctx=trace_ctx, n_components=n
        ) as span:
            solves = self._solve_components(
                fingerprints, components, config, warm_starts, span
            )
        return solves

    def _solve_components(
        self,
        fingerprints: list[str],
        components: list[Component],
        config: MaxEntConfig,
        warm_starts: list[np.ndarray | None] | None,
        span,
    ) -> list[ComponentSolve]:
        n = len(components)
        warm_list = (
            list(warm_starts) if warm_starts is not None else [None] * n
        )
        representative: dict[str, int] = {}
        for index, fingerprint in enumerate(fingerprints):
            representative.setdefault(fingerprint, index)

        resolved: dict[str, ComponentSolve] = {}
        todo = list(representative)
        rounds = 0
        max_rounds = self.n_workers + 2
        # The scatter span's own context: dispatch threads (and the
        # workers beyond them) parent on it explicitly, because the
        # contextvar chain stops at the thread-pool boundary.
        scatter_ctx = get_tracer().context()
        while todo:
            rounds += 1
            if rounds > max_rounds:
                raise ClusterError(
                    f"{len(todo)} component(s) still unsolved after "
                    f"{max_rounds} scatter rounds; giving up"
                )
            alive = self.alive_ids()
            if not alive:
                # Dead marks are sticky until a probe revives them, and
                # a standalone cluster executor has no front-end running
                # probes for it — give workers that merely *looked* dead
                # (a crashed request, a transient network hiccup) one
                # health check before declaring the fleet lost.
                self.check_health()
                alive = self.alive_ids()
            if not alive:
                raise ClusterError(
                    "no alive shard workers remain "
                    f"({len(todo)} component(s) unsolved)"
                )
            dead = set(self.dead_ids())
            assignment: dict[str, list[str]] = {}
            for fingerprint in todo:
                owner = self.router.owner(fingerprint, exclude=dead)
                assignment.setdefault(owner, []).append(fingerprint)

            with ThreadPoolExecutor(max_workers=len(assignment)) as pool:
                futures = {
                    pool.submit(
                        self._dispatch_worker,
                        worker_id,
                        batch,
                        representative,
                        components,
                        config,
                        warm_list,
                        scatter_ctx,
                    ): worker_id
                    for worker_id, batch in assignment.items()
                }
                gathered: list[tuple[str, ComponentSolve]] = []
                any_failed = False
                for future, worker_id in futures.items():
                    results, failed = future.result()
                    gathered.extend(results)
                    if failed:
                        any_failed = True
                        self.worker(worker_id).reassigned_jobs += len(failed)

            for fingerprint, solve in gathered:
                # First write wins: a racing duplicate (reassigned copy
                # vs a slow original) must not double-apply.
                resolved.setdefault(fingerprint, solve)
            todo = [f for f in todo if f not in resolved]
            if todo and any_failed:
                # Give a transiently saturated fleet a beat before the
                # reassignment round.
                time.sleep(0.05)

        span.set(rounds=rounds, n_workers=self.n_workers)
        return [resolved[fingerprint] for fingerprint in fingerprints]

    def _dispatch_worker(
        self,
        worker_id: str,
        batch: list[str],
        representative: dict[str, int],
        components: list[Component],
        config: MaxEntConfig,
        warm_list: list[np.ndarray | None],
        trace_ctx: dict | None = None,
    ) -> tuple[list[tuple[str, ComponentSolve]], list[str]]:
        """Send one worker its share, chunk by chunk.

        Returns ``(gathered, failed)``; on the first transport failure
        the worker is marked dead and its remaining fingerprints are
        returned for reassignment.  HTTP 429 (the worker's admission
        backpressure) is retried in place with backoff — a saturated
        worker is busy, not dead.
        """
        handle = self.worker(worker_id)
        tracer = get_tracer()
        with tracer.span(
            "cluster.dispatch", ctx=trace_ctx, worker=worker_id,
            n_jobs=len(batch),
        ) as dispatch_span:
            gathered, remaining = self._dispatch_chunks(
                handle, worker_id, batch, representative, components,
                config, warm_list, tracer,
            )
            if remaining:
                dispatch_span.set(reassigned=len(remaining))
        return gathered, remaining

    def _dispatch_chunks(
        self,
        handle: WorkerHandle,
        worker_id: str,
        batch: list[str],
        representative: dict[str, int],
        components: list[Component],
        config: MaxEntConfig,
        warm_list: list[np.ndarray | None],
        tracer,
    ) -> tuple[list[tuple[str, ComponentSolve]], list[str]]:
        gathered: list[tuple[str, ComponentSolve]] = []
        # The dispatch span's context rides each wire request so the
        # worker's solve spans parent on this exact dispatch.
        dispatch_ctx = tracer.context()
        chunks = [
            batch[start : start + self.chunk_size]
            for start in range(0, len(batch), self.chunk_size)
        ]
        for chunk_index, chunk in enumerate(chunks):
            payload = solve_request_to_wire(
                chunk,
                [components[representative[f]] for f in chunk],
                config,
                [warm_list[representative[f]] for f in chunk],
                trace_ctx=dispatch_ctx,
            )
            try:
                response = self._post_chunk(handle, payload)
            except (OSError, http.client.HTTPException) as exc:
                # The connection died (refused, reset, or truncated
                # mid-response): presume the worker dead and hand its
                # remaining share back for reassignment.
                _log.warning(
                    f"worker {worker_id} dropped a solve chunk: {exc}",
                    extra={"fields": {"worker": worker_id}},
                )
                self.mark_dead(worker_id)
                remaining = [
                    f for c in chunks[chunk_index:] for f in c
                ]
                return gathered, remaining
            except ServiceError as exc:
                if exc.code == "infeasible_knowledge":
                    # The same exception a local executor would surface:
                    # backend choice must not change the error contract
                    # (callers and the serving layer switch on the type).
                    raise InfeasibleKnowledgeError(str(exc)) from exc
                if exc.status >= 500:
                    _log.warning(
                        f"worker {worker_id} failed a solve chunk: {exc}",
                        extra={"fields": {"worker": worker_id}},
                    )
                    self.mark_dead(worker_id)
                    remaining = [
                        f for c in chunks[chunk_index:] for f in c
                    ]
                    return gathered, remaining
                if exc.status == 429:
                    # The worker answered 429 past the whole backoff
                    # window: it is alive but cannot absorb this chunk
                    # within the solve timeout.  That is a capacity
                    # failure of the request, not a death of the worker
                    # — marking it dead would wrongly fail over its
                    # releases and cold-start its caches.
                    raise ClusterError(
                        f"worker {worker_id} stayed saturated beyond "
                        f"{self.solve_timeout:.0f}s; the fleet lacks "
                        "capacity for this solve"
                    ) from exc
                raise ClusterError(
                    f"worker {worker_id} rejected a solve chunk: {exc}"
                ) from exc
            for fingerprint, solve, _cached in solve_response_from_wire(
                response
            ):
                gathered.append((fingerprint, solve))
            # Stitch the worker's solve spans into the live trace (they
            # parent on this dispatch span via the wire context).
            tracer.record_imported(response_spans(response))
            hook = self.after_chunk_hook
            if hook is not None:
                hook(worker_id, chunk_index)
        return gathered, []

    def _post_chunk(self, handle: WorkerHandle, payload: dict) -> dict:
        """POST one chunk, absorbing 429 backpressure in place.

        A saturated worker is busy, not dead: retries back off on the
        coordinator's :class:`RetryPolicy` (jittered exponential, so
        chunks that collided once de-correlate instead of re-colliding
        in lockstep) for up to the solve timeout — the time budget one
        chunk already has — before the 429 escapes to the caller.

        Chunks ride the worker's cached keep-alive connection
        (:meth:`WorkerHandle.checkout_solve_client`) instead of a fresh
        TCP connection per chunk.  The request itself runs with no lock
        held — concurrent solves to one worker use extra short-lived
        connections rather than queueing — and a transport failure
        closes the checked-out connection before the error propagates,
        so the existing presume-dead/reassign semantics in
        :meth:`_dispatch_worker` operate on a clean slate and a revived
        worker gets a fresh connection.
        """
        deadline = time.monotonic() + self.solve_timeout
        attempt = 0
        while True:
            client = handle.checkout_solve_client(timeout=self.solve_timeout)
            try:
                response = client.solve_components(payload)
            except ServiceError as exc:
                handle.return_solve_client(client)
                if exc.status != 429 or time.monotonic() >= deadline:
                    raise
                time.sleep(self.retry_policy.delay(attempt))
                attempt += 1
            except (OSError, http.client.HTTPException):
                client.close()
                raise
            else:
                handle.return_solve_client(client)
                return response

    # -- fleet telemetry -----------------------------------------------------

    def aggregate_telemetry(self, *, timeout: float = 10.0) -> dict:
        """Every shard's telemetry plus cross-shard engine aggregates.

        Shards are polled in parallel (like :meth:`check_health`), so an
        unreachable worker costs one probe timeout, not one per worker.
        """

        def fetch(handle: WorkerHandle):
            try:
                with handle.client(timeout=timeout) as client:
                    return handle, client.telemetry(), None
            except (OSError, ServiceError) as exc:
                return handle, None, str(exc)

        handles = list(self.handles)
        if handles:
            with ThreadPoolExecutor(max_workers=len(handles)) as pool:
                fetched = list(pool.map(fetch, handles))
        else:
            fetched = []

        shards = []
        totals = {
            "n_solves": 0,
            "component_solves": 0,
            "wall_seconds": 0.0,
            "cpu_seconds": 0.0,
            "cache_hits": 0,
            "cache_misses": 0,
            "cache_evictions": 0,
            "cache_entries": 0,
        }
        prefix_totals: dict[str, dict[str, int]] = {}
        endpoint_histograms: dict[str, LatencyHistogram] = {}
        for handle, telemetry, error in fetched:
            entry: dict = {"worker": handle.worker_id, **handle.summary()}
            if telemetry is None:
                entry["error"] = error
                entry["telemetry"] = None
                shards.append(entry)
                continue
            entry["telemetry"] = telemetry
            shards.append(entry)
            service = telemetry.get("service") or {}
            for endpoint, summary in (service.get("endpoints") or {}).items():
                try:
                    histogram = LatencyHistogram.from_summary(summary)
                except (ValueError, TypeError):
                    # A mixed-version shard without raw buckets cannot
                    # merge exactly; skip it rather than skew the fleet.
                    continue
                merged = endpoint_histograms.get(endpoint)
                if merged is None:
                    endpoint_histograms[endpoint] = histogram
                else:
                    merged.merge(histogram)
            engine = telemetry.get("engine", {})
            cache = engine.get("cache", {})
            totals["n_solves"] += engine.get("n_solves", 0)
            totals["component_solves"] += engine.get("component_solves", 0)
            totals["wall_seconds"] += engine.get("wall_seconds", 0.0)
            totals["cpu_seconds"] += engine.get("cpu_seconds", 0.0)
            totals["cache_hits"] += cache.get("hits", 0)
            totals["cache_misses"] += cache.get("misses", 0)
            totals["cache_evictions"] += cache.get("evictions", 0)
            totals["cache_entries"] += cache.get("size", 0)
            for prefix, counters in (cache.get("by_prefix") or {}).items():
                slot = prefix_totals.setdefault(
                    prefix, {"hits": 0, "misses": 0, "evictions": 0}
                )
                for key in slot:
                    slot[key] += counters.get(key, 0)
        lookups = totals["cache_hits"] + totals["cache_misses"]
        totals["cache_hit_rate"] = (
            totals["cache_hits"] / lookups if lookups else 0.0
        )
        return {
            "workers": shards,
            "membership": {
                "alive": sum(1 for h in handles if h.alive),
                "dead": sum(1 for h in handles if not h.alive),
                "heartbeating": sum(1 for h in handles if h.heartbeating),
                "events": self.events.snapshot(limit=20),
            },
            "aggregate": {
                **totals,
                "cache_by_prefix": prefix_totals,
                # Fleet-level latency percentiles: exact bucket-wise
                # merges of every shard's per-endpoint histogram.
                "endpoints": {
                    endpoint: histogram.summary()
                    for endpoint, histogram in sorted(
                        endpoint_histograms.items()
                    )
                },
            },
        }

    # -- lifecycle -----------------------------------------------------------

    def shutdown(self, *, timeout: float = 10.0) -> None:
        """Stop owning work: kill spawned workers, detach from the rest."""
        if self._closed:
            return
        self._closed = True
        for handle in self.handles:
            handle.drop_solve_client()
        if not self.owns_workers:
            return
        for handle in self.handles:
            if handle.process is not None:
                handle.process.terminate()
        deadline = time.monotonic() + timeout
        for handle in self.handles:
            if handle.process is None:
                continue
            remaining = max(deadline - time.monotonic(), 0.1)
            try:
                handle.process.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                handle.process.kill()
                handle.process.wait(timeout=5.0)

    def __enter__(self) -> "ClusterCoordinator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
