"""The shard worker runtime: a privacy service that also solves bundles.

A :class:`ShardWorker` is a full :class:`~repro.service.server.
PrivacyService` — release registry, posterior/assess endpoints, result
cache, admission control, telemetry — plus the shard protocol surface a
coordinator drives:

====== ============================ =======================================
method path                         purpose
====== ============================ =======================================
POST   ``/shard/v1/components``     solve a batch of component bundles
GET    ``/shard/v1/state``          shard identity + component counters
====== ============================ =======================================

Under *release sharding* the front-end forwards whole requests here and
the inherited service endpoints do the work — each worker owns its
releases' compiled systems, solve caches and warm starts.  Under
*component sharding* the components endpoint is the leaf of the
coordinator's scatter: decode the flat-array bundles, cache-check them
by the coordinator-supplied fingerprint, fan misses across this
worker's own executor (``--executor thread/process`` turns each shard
into a multi-core solver), and stream the bit-exact results back.

Start one with ``repro shard-worker``; it is just a process, so any
process supervisor (systemd, k8s, a coordinator's ``spawn_local``) can
run fleets of them.  With ``--join HOST:PORT`` the worker also dials a
front-end at startup and heartbeats it
(:class:`~repro.cluster.membership.HeartbeatSender`), so fleets grow by
starting processes instead of editing address lists; pair it with
``--worker-id`` / ``--identity-file`` so a respawn reclaims its
rendezvous slot.
"""

from __future__ import annotations

import asyncio
from functools import partial

from repro.cluster.membership import (
    DEFAULT_HEARTBEAT_INTERVAL,
    HeartbeatSender,
)
from repro.cluster.protocol import (
    SHARD_PROTOCOL,
    solve_request_from_wire,
    solve_result_to_wire,
)
from repro.obs.trace import get_tracer
from repro.service.protocol import HttpError, HttpRequest
from repro.service.server import PrivacyService


class ShardWorker(PrivacyService):
    """One shard: a privacy service plus the component-solve endpoint."""

    def __init__(
        self,
        config=None,
        *,
        engine=None,
        worker_id: str | None = None,
        join: list[tuple[str, int]] | None = None,
        heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
    ) -> None:
        super().__init__(config, engine=engine)
        self.component_batches = 0
        self.components_solved = 0
        self.components_cached = 0
        self._worker_id = worker_id
        self._join_targets = list(join or [])
        self._heartbeat_interval = heartbeat_interval
        self._heartbeat: HeartbeatSender | None = None

    @property
    def worker_id(self) -> str:
        """This shard's routing identity (stable id, else bind address)."""
        if self._worker_id:
            return self._worker_id
        return f"{self.config.host}:{self.port}"

    # -- membership lifecycle ------------------------------------------------

    async def start(self) -> None:
        await super().start()
        # The announcer starts only once the port is bound (spawned
        # workers bind port 0) — a join must advertise a reachable
        # address.
        if self._join_targets and self._heartbeat is None:
            self._heartbeat = HeartbeatSender(
                worker_id=self.worker_id,
                host=self.config.host,
                port=self.port,
                targets=self._join_targets,
                interval=self._heartbeat_interval,
            )
            self._heartbeat.start()

    def close(self) -> None:
        if self._heartbeat is not None:
            self._heartbeat.stop()
            self._heartbeat = None
        super().close()

    # -- routing -------------------------------------------------------------

    def _route(self, request: HttpRequest):
        segments = request.segments
        if segments == ("shard", "v1", "components"):
            if request.method != "POST":
                raise HttpError(
                    405,
                    f"{request.method} not allowed here (allowed: POST)",
                    code="method_not_allowed",
                    headers={"Allow": "POST"},
                )
            return "POST /shard/v1/components", self._handle_components
        if segments == ("shard", "v1", "state"):
            if request.method != "GET":
                raise HttpError(
                    405,
                    f"{request.method} not allowed here (allowed: GET)",
                    code="method_not_allowed",
                    headers={"Allow": "GET"},
                )
            return "GET /shard/v1/state", self._handle_state
        return super()._route(request)

    # -- shard endpoints -----------------------------------------------------

    async def _handle_components(
        self, request: HttpRequest
    ) -> tuple[int, dict]:
        body = request.json()
        loop = asyncio.get_running_loop()
        fingerprints, components, config, warm_starts, trace_ctx = (
            await loop.run_in_executor(None, solve_request_from_wire, body)
        )

        def work():
            # The capture bracket must run on the executor thread itself
            # (contextvars do not cross run_in_executor): every span the
            # engine opens below lands in ``capture.spans``, which ships
            # back with the response for coordinator-side stitching.
            tracer = get_tracer()
            with tracer.capture() as capture:
                with tracer.span(
                    "shard.solve_components",
                    ctx=trace_ctx,
                    worker=self.worker_id,
                    n_components=len(components),
                ):
                    results = self.engine.solve_components(
                        fingerprints, components, config, warm_starts
                    )
            return results, capture.spans

        async def run():
            return await loop.run_in_executor(None, work)

        # One admission slot per batch: a batch is one solve-shaped unit
        # of CPU work, and coordinator retries absorb the 429s.
        results, spans = await self.admission.run(run)

        def encode() -> tuple[dict, int, int]:
            entries = []
            solved = 0
            cached = 0
            for fingerprint, (solve, was_cached) in zip(
                fingerprints, results
            ):
                entries.append(
                    solve_result_to_wire(fingerprint, solve, cached=was_cached)
                )
                if was_cached:
                    cached += 1
                else:
                    solved += 1
            return {
                "protocol": SHARD_PROTOCOL,
                "worker": self.worker_id,
                "results": entries,
            }, solved, cached

        payload, solved, cached = await loop.run_in_executor(None, encode)
        if spans:
            payload["spans"] = spans
        self.component_batches += 1
        self.components_solved += solved
        self.components_cached += cached
        self.telemetry.incr("component_batches")
        self.telemetry.incr("components_solved", solved)
        self.telemetry.incr("components_cached", cached)
        return 200, payload

    async def _handle_state(self, request: HttpRequest) -> tuple[int, dict]:
        heartbeat = self._heartbeat
        return 200, {
            "protocol": SHARD_PROTOCOL,
            "worker": self.worker_id,
            "address": f"{self.config.host}:{self.port}",
            "releases": len(self.store),
            "component_batches": self.component_batches,
            "components_solved": self.components_solved,
            "components_cached": self.components_cached,
            "heartbeat": (
                None
                if heartbeat is None
                else {
                    "targets": [f"{h}:{p}" for h, p in heartbeat.targets],
                    "interval_seconds": heartbeat.interval,
                    "sent": heartbeat.sent,
                    "failed": heartbeat.failed,
                }
            ),
            "engine": self.engine.stats(),
        }

    # -- telemetry -----------------------------------------------------------

    async def _handle_telemetry(self, request: HttpRequest) -> tuple[int, dict]:
        status, payload = await super()._handle_telemetry(request)
        payload["shard"] = {
            "worker": self.worker_id,
            "protocol": SHARD_PROTOCOL,
            "component_batches": self.component_batches,
            "components_solved": self.components_solved,
            "components_cached": self.components_cached,
        }
        return status, payload
