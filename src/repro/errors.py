"""Exception hierarchy for the Privacy-MaxEnt library.

Every error raised by :mod:`repro` derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SchemaError(ReproError):
    """A table schema is malformed or inconsistent with the data.

    Raised, for example, when an attribute is declared twice, when a role
    (ID / QI / SA) refers to an unknown attribute, or when column lengths
    disagree.
    """


class DomainError(ReproError):
    """A categorical value does not belong to its attribute's domain."""


class AnonymizationError(ReproError):
    """An anonymization algorithm cannot produce a valid output."""


class DiversityError(AnonymizationError):
    """The requested l-diversity level cannot be satisfied.

    The classic eligibility condition for bucketization with distinct
    l-diversity is that no (non-exempt) sensitive value may account for more
    than ``1/l`` of the remaining records; when the condition is violated the
    anonymizer raises this error instead of silently producing an invalid
    bucketization.
    """


class KnowledgeError(ReproError):
    """A background-knowledge statement is malformed.

    Examples: a conditional probability outside ``[0, 1]``, an empty
    antecedent, a statement referring to attributes that are not part of the
    schema, or an interval with ``low > high``.
    """


class CompilationError(KnowledgeError):
    """A statement could not be compiled into an ME constraint row.

    This typically means the statement refers to QI or SA values that do not
    occur in the published table, so the marginal probability needed for the
    right-hand side (e.g. ``P(Qv)``) is zero or undefined.
    """


class InfeasibleKnowledgeError(ReproError):
    """The constraint system admits no probability distribution.

    Sound knowledge mined from the original data is always feasible (the
    original assignment satisfies every invariant and every mined rule), so
    this error signals either contradictory user-supplied knowledge or
    knowledge inconsistent with the published data.
    """

    def __init__(self, message: str, *, residual: float | None = None) -> None:
        super().__init__(message)
        #: Norm of the constraint violation at the best point found, when the
        #: infeasibility was detected numerically rather than structurally.
        self.residual = residual


class SolverError(ReproError):
    """A MaxEnt solver failed to converge or was misused.

    Carries the solver name and the iteration count at failure when
    available, to make performance-debugging reports actionable.
    """

    def __init__(
        self,
        message: str,
        *,
        solver: str | None = None,
        iterations: int | None = None,
    ) -> None:
        super().__init__(message)
        self.solver = solver
        self.iterations = iterations


class NotSupportedError(ReproError):
    """A solver was asked to handle a problem feature it does not support.

    For example, GIS and IIS require non-negative constraint coefficients;
    passing a comparison constraint (which has mixed signs) to them raises
    this error rather than silently producing a wrong answer.
    """


class ExperimentError(ReproError):
    """An experiment driver received an invalid configuration."""


class ConnectorError(ReproError):
    """A table connector cannot deliver rows as promised.

    Raised by :mod:`repro.data.connectors` when schema discovery fails
    (unknown table/column, unsupported storage type), when a value cannot
    be coerced to a categorical label (NULLs without a configured label),
    or when the underlying database is mutated while a deterministic
    chunked iteration is in flight.
    """


class IngestError(ReproError):
    """A streaming (chunked) release registration cannot proceed.

    Raised by the service-side ingest sessions for protocol violations:
    out-of-order chunk sequence numbers, chunk-digest mismatches,
    finalizing an upload whose accumulated content digest disagrees with
    the digest the client expected, or operating on an expired session.
    """
