"""Span tracing: one process-wide tracer, explicit cross-boundary context.

A *span* is a named, timed unit of work with key-value attributes; a
*trace* is the tree of spans sharing one ``trace_id``.  The design
constraint everything here follows: **``contextvars`` do not cross
executor boundaries** — ``loop.run_in_executor``, ``ThreadPoolExecutor``
and process pools all run work in a fresh or foreign context — so
same-thread nesting is implicit (a contextvar) while every hop to
another thread, process or machine hands the parent over *explicitly*
as a small ``{"trace_id", "span_id"}`` dict (see :meth:`Tracer.context`
and the ``ctx=`` argument of :meth:`Tracer.span`).

Spans finished while no capture sink is active are routed by
``trace_id`` into a process-global pending-trace builder, so a span
finished on *any* thread still lands in the right trace; the first
local span of a trace is its local root, and finishing it finalizes the
trace into two bounded rings:

- ``recent`` — the last N traces regardless of duration,
- ``slow`` — traces at or above ``REPRO_TRACE_SLOW_SECONDS`` (default
  1.0s), retained even when fast traffic floods the recent ring.

Worker-side code (process-pool group tasks, cluster shard workers) runs
under :meth:`Tracer.capture`, which diverts finished spans into a plain
list shipped back with the result; the caller feeds them to
:meth:`Tracer.record_imported`, stitching one cross-process (or
cross-machine) trace.

Tracing is **default-on**: recording a span is two monotonic clock
reads, one small dict and one lock-guarded list append, bounded by the
rings.  ``REPRO_TRACE=0`` (or :func:`set_enabled`) short-circuits
``span()`` to a shared no-op context manager for benchmarks that want
the floor.  ``REPRO_TRACE_SAMPLE`` (a probability in ``[0, 1]``,
default 1.0) *head-samples* instead: the keep/drop decision is made
once per trace, at the root — a span opened with no active parent and
no ``ctx`` — and children inherit it implicitly, because a sampled-out
root leaves no current span and no pending builder for descendants to
land in.  Spans opened *with* a ``ctx`` are never sampled away: their
root already won the coin flip somewhere else, and dropping fragments
mid-trace would tear stitched cross-process traces.
"""

from __future__ import annotations

import contextlib
import os
import random
import threading
import time
from collections import deque
from contextvars import ContextVar

_OFF_VALUES = {"0", "false", "no", "off"}

#: Traces kept regardless of duration.
RECENT_TRACES = 64
#: Slow-trace ring size; outliers survive recent-ring churn.
SLOW_TRACES = 32
#: Cap on concurrently-pending (unfinished) traces before the oldest
#: is dropped — a leak guard, not a correctness bound.
MAX_PENDING_TRACES = 256


def _new_id(nbytes: int = 8) -> str:
    return os.urandom(nbytes).hex()


def _env_enabled() -> bool:
    return os.environ.get("REPRO_TRACE", "1").strip().lower() not in _OFF_VALUES


def _env_slow_seconds() -> float:
    raw = os.environ.get("REPRO_TRACE_SLOW_SECONDS", "")
    try:
        return float(raw) if raw else 1.0
    except ValueError:
        return 1.0


def _env_sample_rate() -> float:
    raw = os.environ.get("REPRO_TRACE_SAMPLE", "")
    try:
        rate = float(raw) if raw else 1.0
    except ValueError:
        return 1.0
    return min(1.0, max(0.0, rate))


class Span:
    """One timed unit of work; a context manager finishing itself."""

    __slots__ = (
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "started_at",
        "duration_seconds",
        "attributes",
        "_tracer",
        "_clock",
        "_token",
    )

    def __init__(
        self,
        tracer: "Tracer",
        trace_id: str,
        span_id: str,
        parent_id: str | None,
        name: str,
        attributes: dict,
    ) -> None:
        self._tracer = tracer
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.attributes = attributes
        self.started_at = time.time()
        self.duration_seconds = 0.0
        self._clock = time.perf_counter()
        self._token = None

    def set(self, **attributes) -> "Span":
        """Attach attributes; returns ``self`` for chaining."""
        self.attributes.update(attributes)
        return self

    def to_dict(self) -> dict:
        """The JSON-ready wire/storage form of this span."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "started_at": self.started_at,
            "duration_seconds": self.duration_seconds,
            "attributes": dict(self.attributes),
        }

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.attributes.setdefault("error", f"{exc_type.__name__}: {exc}")
        self._tracer._finish(self)
        return False


class _NoopSpan:
    """Shared do-nothing span handed out while tracing is disabled."""

    __slots__ = ()

    trace_id = ""
    span_id = ""
    parent_id = None
    name = ""
    attributes: dict = {}

    def set(self, **attributes) -> "_NoopSpan":
        return self

    def to_dict(self) -> dict:
        return {}

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NOOP_SPAN = _NoopSpan()


class _SuppressedSpan:
    """A sampled-out root: records nothing, suppresses its descendants.

    A plain :data:`NOOP_SPAN` would not do — same-thread children of a
    sampled-out root see no current span and would each start (and
    coin-flip) a fresh root of their own.  This span instead raises the
    tracer's suppression flag for its context and lowers it on exit, so
    the whole subtree stays dropped together.
    """

    __slots__ = ("_tracer", "_token")

    trace_id = ""
    span_id = ""
    parent_id = None
    name = ""
    attributes: dict = {}

    def __init__(self, tracer: "Tracer") -> None:
        self._tracer = tracer
        self._token = None

    def set(self, **attributes) -> "_SuppressedSpan":
        return self

    def to_dict(self) -> dict:
        return {}

    def __enter__(self) -> "_SuppressedSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._token is not None:
            try:
                self._tracer._suppressed.reset(self._token)
            except ValueError:
                self._tracer._suppressed.set(False)
        return False


class Capture:
    """Holder for spans diverted by :meth:`Tracer.capture`."""

    __slots__ = ("spans",)

    def __init__(self) -> None:
        self.spans: list[dict] = []


class _Builder:
    __slots__ = ("trace_id", "root_id", "spans")

    def __init__(self, trace_id: str, root_id: str) -> None:
        self.trace_id = trace_id
        self.root_id = root_id
        self.spans: list[dict] = []


class Tracer:
    """Process-wide span recorder with bounded trace retention."""

    def __init__(
        self,
        *,
        recent: int = RECENT_TRACES,
        slow: int = SLOW_TRACES,
        slow_seconds: float | None = None,
        enabled: bool | None = None,
    ) -> None:
        self.enabled = _env_enabled() if enabled is None else bool(enabled)
        self.slow_seconds = (
            _env_slow_seconds() if slow_seconds is None else float(slow_seconds)
        )
        self.sample_rate = _env_sample_rate()
        self.sampled_out = 0
        self._lock = threading.Lock()
        self._pending: dict[str, _Builder] = {}
        self._recent: deque[dict] = deque(maxlen=recent)
        self._slow: deque[dict] = deque(maxlen=slow)
        self._current: ContextVar[Span | None] = ContextVar(
            "repro_current_span", default=None
        )
        self._sink: ContextVar[list | None] = ContextVar(
            "repro_span_sink", default=None
        )
        self._suppressed: ContextVar[bool] = ContextVar(
            "repro_trace_suppressed", default=False
        )

    def set_enabled(self, enabled: bool) -> None:
        """Toggle recording (the ``REPRO_TRACE`` switch, at runtime)."""
        self.enabled = bool(enabled)

    def set_sample_rate(self, rate: float) -> None:
        """Set the head-sampling probability (``REPRO_TRACE_SAMPLE``).

        Clamped to ``[0, 1]``.  Applies to *new* roots only — traces
        already in flight keep their original keep decision.
        """
        self.sample_rate = min(1.0, max(0.0, float(rate)))

    # -- recording ---------------------------------------------------------

    def span(self, name: str, *, ctx: dict | None = None, **attributes):
        """Open a span: nests under the current span, else under ``ctx``.

        ``ctx`` is a ``{"trace_id", "span_id"}`` dict from
        :meth:`context` handed across an executor/wire boundary; it is
        only consulted when no span is active on the calling thread
        (local nesting always wins, and carries the trace id with it).
        """
        if not self.enabled:
            return NOOP_SPAN
        parent = self._current.get()
        if parent is not None:
            trace_id, parent_id = parent.trace_id, parent.span_id
        elif ctx and ctx.get("trace_id"):
            # A handed-over context is never sampled away: its root
            # already made the keep decision on the other side.
            trace_id, parent_id = ctx["trace_id"], ctx.get("span_id")
        else:
            # A fresh root: the head-sampling decision point.
            if self._suppressed.get():
                return NOOP_SPAN
            if self.sample_rate < 1.0 and random.random() >= self.sample_rate:
                self.sampled_out += 1
                suppressed = _SuppressedSpan(self)
                suppressed._token = self._suppressed.set(True)
                return suppressed
            trace_id, parent_id = _new_id(), None
        span = Span(self, trace_id, _new_id(4), parent_id, name, attributes)
        span._token = self._current.set(span)
        if self._sink.get() is None:
            with self._lock:
                if trace_id not in self._pending:
                    while len(self._pending) >= MAX_PENDING_TRACES:
                        self._pending.pop(next(iter(self._pending)))
                    self._pending[trace_id] = _Builder(trace_id, span.span_id)
        return span

    def _finish(self, span: Span) -> None:
        span.duration_seconds = time.perf_counter() - span._clock
        if span._token is not None:
            try:
                self._current.reset(span._token)
            except ValueError:
                # Finished in a different context than it was opened in
                # (exotic, but not worth crashing a solve over).
                self._current.set(None)
        record = span.to_dict()
        sink = self._sink.get()
        if sink is not None:
            sink.append(record)
            return
        finalized = None
        with self._lock:
            builder = self._pending.get(span.trace_id)
            if builder is None:
                return
            builder.spans.append(record)
            if span.span_id == builder.root_id:
                del self._pending[span.trace_id]
                finalized = self._finalize(builder)
        if finalized is not None:
            self._retain(finalized)

    def _finalize(self, builder: _Builder) -> dict:
        root = next(
            (s for s in builder.spans if s["span_id"] == builder.root_id),
            builder.spans[0],
        )
        spans = sorted(builder.spans, key=lambda s: s["started_at"])
        return {
            "trace_id": builder.trace_id,
            "root": root["name"],
            "started_at": root["started_at"],
            "duration_seconds": root["duration_seconds"],
            "n_spans": len(spans),
            "slow": root["duration_seconds"] >= self.slow_seconds,
            "spans": spans,
        }

    def _retain(self, trace: dict) -> None:
        with self._lock:
            self._recent.append(trace)
            if trace["slow"]:
                self._slow.append(trace)

    # -- cross-boundary hand-off -------------------------------------------

    def context(self) -> dict | None:
        """The active span as a wire-able ``{"trace_id", "span_id"}``."""
        span = self._current.get()
        if span is None:
            return None
        return {"trace_id": span.trace_id, "span_id": span.span_id}

    @contextlib.contextmanager
    def capture(self):
        """Divert spans finished in this context into ``.spans``.

        Worker-side bracket: run it *inside* the function executing on
        the worker thread/process (a sink is a contextvar and does not
        cross executors either), ship ``capture.spans`` back with the
        result, and feed them to :meth:`record_imported` on the caller.
        """
        cap = Capture()
        if not self.enabled:
            yield cap
            return
        token = self._sink.set(cap.spans)
        try:
            yield cap
        finally:
            self._sink.reset(token)

    def record_imported(self, spans: list[dict]) -> None:
        """Stitch spans captured elsewhere into their pending traces.

        Inside an active :meth:`capture` the spans chain outward to the
        sink instead (a worker forwarding deeper workers' spans).
        Spans whose trace already finalized (or never started here) are
        dropped — imports race trace completion by design.
        """
        if not spans or not self.enabled:
            return
        sink = self._sink.get()
        if sink is not None:
            sink.extend(spans)
            return
        with self._lock:
            for span in spans:
                builder = self._pending.get(span.get("trace_id"))
                if builder is not None:
                    builder.spans.append(dict(span))

    # -- inspection --------------------------------------------------------

    def traces(self, limit: int = 20, *, slow_only: bool = False) -> list[dict]:
        """Most-recent-first finished traces (slow ring merged in)."""
        with self._lock:
            entries = list(self._slow) if slow_only else (
                list(self._slow) + list(self._recent)
            )
        seen: set[str] = set()
        out: list[dict] = []
        for trace in sorted(
            entries, key=lambda t: t["started_at"], reverse=True
        ):
            if trace["trace_id"] in seen:
                continue
            seen.add(trace["trace_id"])
            out.append(trace)
            if len(out) >= limit:
                break
        return out

    def reset(self) -> None:
        """Drop all retained and pending traces (tests, benchmarks)."""
        with self._lock:
            self._pending.clear()
            self._recent.clear()
            self._slow.clear()


_TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-wide tracer every subsystem shares."""
    return _TRACER


def set_enabled(enabled: bool) -> None:
    """Toggle the process-wide tracer (see ``REPRO_TRACE``)."""
    _TRACER.set_enabled(enabled)


def set_sample_rate(rate: float) -> None:
    """Set the process-wide head-sampling rate (``REPRO_TRACE_SAMPLE``)."""
    _TRACER.set_sample_rate(rate)


def format_trace(trace: dict) -> str:
    """Render one finished trace as an indented span tree."""
    spans = trace.get("spans", [])
    by_parent: dict[str | None, list[dict]] = {}
    ids = {s["span_id"] for s in spans}
    for span in spans:
        parent = span.get("parent_id")
        # Remote parents (span shipped from another process) render at
        # the closest local ancestor we actually have, else at the top.
        key = parent if parent in ids else None
        by_parent.setdefault(key, []).append(span)
    lines = [
        f"trace {trace['trace_id']}  root={trace.get('root', '?')}  "
        f"{trace['duration_seconds'] * 1000:.2f}ms  "
        f"spans={trace.get('n_spans', len(spans))}"
        + ("  SLOW" if trace.get("slow") else "")
    ]

    def walk(parent_key, depth):
        for span in sorted(
            by_parent.get(parent_key, []), key=lambda s: s["started_at"]
        ):
            attrs = span.get("attributes") or {}
            shown = ", ".join(
                f"{k}={attrs[k]}" for k in sorted(attrs)
            )
            lines.append(
                "  " * depth
                + f"- {span['name']}  {span['duration_seconds'] * 1000:.2f}ms"
                + (f"  [{shown}]" if shown else "")
            )
            walk(span["span_id"], depth + 1)

    walk(None, 1)
    return "\n".join(lines)
