"""A bounded, structured event log for rare-but-telling occurrences.

Metrics answer "how many"; traces answer "how long"; neither answers
"what *happened* to the fleet last night".  :class:`EventLog` keeps the
last N structured events (membership joins, worker deaths, revivals,
rebalances) in a ring, with cumulative per-kind counters that survive
the ring's eviction, so ``/v1/telemetry`` can show both the recent
history and the lifetime totals without unbounded memory.

Same dependency stance as the rest of :mod:`repro.obs`: stdlib only,
imports nothing from the rest of the package, safe to thread through
any subsystem.
"""

from __future__ import annotations

import threading
import time
from collections import Counter, deque


class EventLog:
    """Thread-safe bounded ring of ``{"kind", "at", ...}`` events."""

    def __init__(self, capacity: int = 256) -> None:
        if capacity <= 0:
            raise ValueError(f"event log capacity must be positive: {capacity}")
        self.capacity = capacity
        self._events: deque[dict] = deque(maxlen=capacity)
        self._counts: Counter[str] = Counter()
        self._lock = threading.Lock()

    def record(self, kind: str, **fields) -> dict:
        """Append one event; returns the stored (timestamped) record."""
        event = {"kind": kind, "at": time.time(), **fields}
        with self._lock:
            self._events.append(event)
            self._counts[kind] += 1
        return event

    def counts(self) -> dict[str, int]:
        """Cumulative per-kind totals (not truncated by the ring)."""
        with self._lock:
            return dict(self._counts)

    def recent(self, limit: int | None = None) -> list[dict]:
        """The newest events, oldest first (all retained when no limit)."""
        with self._lock:
            events = list(self._events)
        if limit is not None:
            events = events[-limit:]
        return [dict(event) for event in events]

    def snapshot(self, *, limit: int = 50) -> dict:
        """JSON-ready view for telemetry endpoints."""
        return {
            "counts": self.counts(),
            "recent": self.recent(limit),
        }

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)
