"""Stdlib-only observability: span tracing, metrics, structured logs.

The three modules are deliberately dependency-free and import nothing
from the rest of the package, so every subsystem (engine, service,
cluster, CLI) can thread them through without layering cycles:

- :mod:`repro.obs.trace` — process-wide :class:`Tracer` with nested
  spans, explicit context hand-off across threads/processes/machines,
  bounded recent/slow trace rings, and default-on near-zero overhead.
- :mod:`repro.obs.metrics` — a tiny Prometheus text-exposition builder
  (counters, gauges, cumulative-bucket histograms).
- :mod:`repro.obs.logging` — JSON-lines / text structured logging with
  trace ids stamped from the active span at emit time.
- :mod:`repro.obs.events` — a bounded structured event ring with
  lifetime per-kind counters (membership churn, failovers, rebalances).
"""

from repro.obs.trace import Tracer, format_trace, get_tracer, set_enabled
from repro.obs.metrics import MetricsBuilder
from repro.obs.logging import configure_logging, get_logger
from repro.obs.events import EventLog

__all__ = [
    "EventLog",
    "MetricsBuilder",
    "Tracer",
    "configure_logging",
    "format_trace",
    "get_logger",
    "get_tracer",
    "set_enabled",
]
