"""Structured logging: JSON-lines or text, trace ids on every record.

The service and cluster CLIs call :func:`configure_logging` once
(``--log-format json|text``, level from ``REPRO_LOG_LEVEL``); library
code calls :func:`get_logger` and logs with the ``fields`` convention::

    log = get_logger("service")
    log.info("release registered", extra={"fields": {"release_id": rid}})

Both formatters stamp ``trace_id`` / ``span_id`` from the span active
on the *emitting* thread (``logging`` formats synchronously on the
caller, so the tracer's contextvar is still intact), tying every log
line to the trace it happened under.

Unconfigured processes fall back to Python's last-resort stderr handler
(warnings and above), so importing library modules never hijacks an
application's logging setup.
"""

from __future__ import annotations

import json
import logging
import os
import sys
import time

from repro.obs.trace import get_tracer

ROOT_LOGGER = "repro"


def _trace_fields() -> dict:
    ctx = get_tracer().context()
    return ctx or {}


class JsonFormatter(logging.Formatter):
    """One JSON object per line; ``extra={"fields": ...}`` merged in."""

    def format(self, record: logging.LogRecord) -> str:
        payload: dict = {
            "ts": time.strftime(
                "%Y-%m-%dT%H:%M:%S", time.gmtime(record.created)
            )
            + f".{int(record.msecs):03d}Z",
            "level": record.levelname.lower(),
            "logger": record.name,
            "message": record.getMessage(),
        }
        payload.update(_trace_fields())
        fields = getattr(record, "fields", None)
        if isinstance(fields, dict):
            payload.update(fields)
        if record.exc_info and record.exc_info[0] is not None:
            payload["exception"] = self.formatException(record.exc_info)
        return json.dumps(payload, default=str)


class TextFormatter(logging.Formatter):
    """Human-oriented single line with ``key=value`` fields appended."""

    def format(self, record: logging.LogRecord) -> str:
        stamp = time.strftime("%H:%M:%S", time.localtime(record.created))
        parts = [
            f"{stamp} {record.levelname:<7} {record.name}: "
            f"{record.getMessage()}"
        ]
        extras = dict(_trace_fields())
        fields = getattr(record, "fields", None)
        if isinstance(fields, dict):
            extras.update(fields)
        if extras:
            parts.append(
                " ".join(f"{key}={value}" for key, value in extras.items())
            )
        line = "  ".join(parts)
        if record.exc_info and record.exc_info[0] is not None:
            line += "\n" + self.formatException(record.exc_info)
        return line


def configure_logging(
    log_format: str = "text",
    level: str | None = None,
    stream=None,
) -> logging.Logger:
    """Install one handler on the ``repro`` root logger and return it.

    ``level`` falls back to ``REPRO_LOG_LEVEL`` then ``INFO``; unknown
    names fall back to ``INFO`` rather than erroring at startup.
    Idempotent: repeated calls replace the handler (tests, re-exec).
    """
    if log_format not in ("json", "text"):
        raise ValueError(f"unknown log format {log_format!r}")
    name = (level or os.environ.get("REPRO_LOG_LEVEL") or "INFO").upper()
    resolved = getattr(logging, name, None)
    if not isinstance(resolved, int):
        resolved = logging.INFO
    root = logging.getLogger(ROOT_LOGGER)
    root.setLevel(resolved)
    root.propagate = False
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(
        JsonFormatter() if log_format == "json" else TextFormatter()
    )
    for existing in list(root.handlers):
        root.removeHandler(existing)
    root.addHandler(handler)
    return root


def get_logger(name: str = "") -> logging.Logger:
    """A logger under the shared ``repro`` hierarchy."""
    if not name or name == ROOT_LOGGER:
        return logging.getLogger(ROOT_LOGGER)
    if name.startswith(f"{ROOT_LOGGER}."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER}.{name}")
