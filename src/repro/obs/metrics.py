"""Minimal Prometheus text-format exposition (version 0.0.4).

A :class:`MetricsBuilder` accumulates counter / gauge / histogram
samples and renders the exposition body.  It knows nothing about where
the numbers come from — the service and the sharded frontend feed it
from their telemetry snapshots — and emits each metric's ``# HELP`` /
``# TYPE`` header exactly once no matter how many label combinations
are added, which is what scrapers require.

Histograms are emitted in the Prometheus convention: cumulative
``_bucket`` samples with ``le`` upper bounds plus the ``+Inf`` bucket,
and ``_sum`` / ``_count`` companions.
"""

from __future__ import annotations

import math

#: Content type a ``/metrics`` response must carry.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _format_value(value) -> str:
    value = float(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _escape_label(value) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _render_labels(labels: dict | None) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{_escape_label(value)}"' for key, value in labels.items()
    )
    return "{" + inner + "}"


def _merge_labels(labels: dict | None, extra: dict) -> dict:
    merged = dict(labels or {})
    merged.update(extra)
    return merged


class MetricsBuilder:
    """Accumulate samples, render one Prometheus exposition body."""

    def __init__(self, prefix: str = "repro") -> None:
        self.prefix = prefix
        self._lines: list[str] = []
        self._declared: set[str] = set()

    def _name(self, name: str) -> str:
        return f"{self.prefix}_{name}" if self.prefix else name

    def _declare(self, name: str, kind: str, help_text: str) -> None:
        if name in self._declared:
            return
        self._declared.add(name)
        if help_text:
            self._lines.append(f"# HELP {name} {help_text}")
        self._lines.append(f"# TYPE {name} {kind}")

    def counter(
        self,
        name: str,
        value,
        labels: dict | None = None,
        help_text: str = "",
    ) -> None:
        """One cumulative counter sample."""
        full = self._name(name)
        self._declare(full, "counter", help_text)
        self._lines.append(f"{full}{_render_labels(labels)} {_format_value(value)}")

    def gauge(
        self,
        name: str,
        value,
        labels: dict | None = None,
        help_text: str = "",
    ) -> None:
        """One point-in-time gauge sample."""
        full = self._name(name)
        self._declare(full, "gauge", help_text)
        self._lines.append(f"{full}{_render_labels(labels)} {_format_value(value)}")

    def histogram(
        self,
        name: str,
        bounds,
        bucket_counts,
        total_sum: float,
        labels: dict | None = None,
        help_text: str = "",
    ) -> None:
        """One histogram: per-bucket counts over ``bounds`` + overflow.

        ``bucket_counts`` must have ``len(bounds) + 1`` entries, the
        last being the overflow (> last bound) count, matching
        :class:`repro.service.telemetry.LatencyHistogram` storage.
        """
        if len(bucket_counts) != len(bounds) + 1:
            raise ValueError(
                f"histogram {name!r}: expected {len(bounds) + 1} bucket "
                f"counts, got {len(bucket_counts)}"
            )
        full = self._name(name)
        self._declare(full, "histogram", help_text)
        rendered = _render_labels
        cumulative = 0
        for bound, count in zip(bounds, bucket_counts):
            cumulative += count
            le = _merge_labels(labels, {"le": _format_value(bound)})
            self._lines.append(f"{full}_bucket{rendered(le)} {cumulative}")
        cumulative += bucket_counts[-1]
        inf = _merge_labels(labels, {"le": "+Inf"})
        self._lines.append(f"{full}_bucket{rendered(inf)} {cumulative}")
        plain = rendered(labels)
        self._lines.append(f"{full}_sum{plain} {_format_value(total_sum)}")
        self._lines.append(f"{full}_count{plain} {cumulative}")

    def render(self) -> str:
        """The exposition body (trailing newline included)."""
        return "\n".join(self._lines) + "\n" if self._lines else ""


def parse_exposition(text: str) -> dict[str, list[tuple[dict, float]]]:
    """Parse an exposition body back into ``{name: [(labels, value)]}``.

    A deliberately strict little parser used by tests and the CI smoke
    job to prove the rendered text is well-formed; raises ``ValueError``
    on any line it does not understand.
    """
    samples: dict[str, list[tuple[dict, float]]] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            if line.startswith("#") and not (
                line.startswith("# HELP ") or line.startswith("# TYPE ")
            ):
                raise ValueError(f"malformed comment line: {line!r}")
            continue
        name_part, _, value_part = line.rpartition(" ")
        if not name_part:
            raise ValueError(f"malformed sample line: {line!r}")
        if value_part == "+Inf":
            value = math.inf
        elif value_part == "-Inf":
            value = -math.inf
        else:
            value = float(value_part)
        labels: dict[str, str] = {}
        name = name_part
        if "{" in name_part:
            if not name_part.endswith("}"):
                raise ValueError(f"malformed labels: {line!r}")
            name, _, label_body = name_part.partition("{")
            body = label_body[:-1]
            while body:
                key, _, rest = body.partition("=")
                if not rest.startswith('"'):
                    raise ValueError(f"malformed labels: {line!r}")
                end = 1
                chars = []
                while end < len(rest):
                    ch = rest[end]
                    if ch == "\\" and end + 1 < len(rest):
                        escaped = rest[end + 1]
                        chars.append("\n" if escaped == "n" else escaped)
                        end += 2
                        continue
                    if ch == '"':
                        break
                    chars.append(ch)
                    end += 1
                else:
                    raise ValueError(f"unterminated label value: {line!r}")
                labels[key.strip()] = "".join(chars)
                body = rest[end + 1 :].lstrip(",")
        if not name.replace("_", "").replace(":", "").isalnum():
            raise ValueError(f"malformed metric name: {line!r}")
        samples.setdefault(name, []).append((labels, value))
    return samples
