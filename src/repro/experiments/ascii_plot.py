"""Minimal ASCII line plots for terminal experiment reports.

No plotting dependency is available offline, and the reproduction targets
*shapes* (who wins, where curves cross) rather than camera-ready figures; a
character grid communicates those shapes fine.
"""

from __future__ import annotations

import math

_MARKERS = "ox+*#@%&"


def _scale(value: float, low: float, high: float, steps: int) -> int:
    if high <= low:
        return 0
    fraction = (value - low) / (high - low)
    return min(steps - 1, max(0, round(fraction * (steps - 1))))


def line_plot(
    series: dict[str, tuple[list[float], list[float]]],
    *,
    title: str = "",
    x_label: str = "x",
    y_label: str = "y",
    width: int = 70,
    height: int = 18,
) -> str:
    """Render named (xs, ys) series on one character grid.

    Each series gets a marker from ``o x + * ...``; the legend maps markers
    back to names.  Non-finite points are skipped.
    """
    points = [
        (x, y)
        for xs, ys in series.values()
        for x, y in zip(xs, ys)
        if math.isfinite(x) and math.isfinite(y)
    ]
    if not points:
        return f"{title}\n(no finite data to plot)"
    x_low = min(p[0] for p in points)
    x_high = max(p[0] for p in points)
    y_low = min(p[1] for p in points)
    y_high = max(p[1] for p in points)
    if y_high == y_low:
        y_high = y_low + 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (name, (xs, ys)) in enumerate(series.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        for x, y in zip(xs, ys):
            if not (math.isfinite(x) and math.isfinite(y)):
                continue
            column = _scale(x, x_low, x_high, width)
            row = height - 1 - _scale(y, y_low, y_high, height)
            grid[row][column] = marker

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_label}  [{y_low:.4g} .. {y_high:.4g}]")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f"{x_label}  [{x_low:.4g} .. {x_high:.4g}]")
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} = {name}"
        for i, name in enumerate(series)
    )
    lines.append(f"legend: {legend}")
    return "\n".join(lines)
