"""Drivers regenerating every figure of the paper's evaluation (Section 7).

Each ``figureN`` function returns an
:class:`~repro.experiments.harness.ExperimentResult` holding the same
series the paper plots:

- Figure 5 — Estimation Accuracy vs number of rules K, for positive-only
  (K+), negative-only (K-) and mixed (K+, K-) background knowledge.
- Figure 6 — Estimation Accuracy vs K for rules restricted to exactly T QI
  attributes, T = 1..8.
- Figure 7(a) — running time and L-BFGS iterations vs the number of
  background-knowledge constraints (fixed dataset).
- Figure 7(b)/(c) — running time / iterations vs the number of buckets, one
  series per background-knowledge size.

Default sizes are scaled down from the paper's 14,210-record Adult setup so
the whole suite runs in minutes; every config has a ``paper_scale`` factory
for full-size runs.  Performance figures disable the Section 5.5
decomposition because the paper explicitly measured the unoptimized solver
("we have not applied the optimization techniques discussed in
Section 5.5").
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.accuracy import estimation_accuracy
from repro.core.privacy_maxent import PrivacyMaxEnt
from repro.engine.engine import PrivacyEngine
from repro.errors import ExperimentError
from repro.experiments.harness import ExperimentResult, append_engine_notes
from repro.experiments.workloads import AdultWorkload, build_adult_workload, k_grid
from repro.knowledge.bounds import TopKBound
from repro.maxent.solver import MaxEntConfig


def _accuracy_under_bound(
    workload: AdultWorkload,
    bound: TopKBound,
    config: MaxEntConfig,
    engine: PrivacyEngine | None = None,
) -> tuple[float, int, object]:
    quantifier = PrivacyMaxEnt(
        workload.published,
        knowledge=bound.statements(workload.rules),
        config=config,
        engine=engine,
    )
    posterior = quantifier.posterior()
    accuracy = estimation_accuracy(workload.truth, posterior)
    return accuracy, quantifier.n_knowledge_rows, quantifier.solve().stats


# --- Figure 5 -----------------------------------------------------------------


@dataclass(frozen=True)
class Figure5Config:
    """Sizes and sweep for the Figure 5 reproduction."""

    n_records: int = 2000
    l: int = 5
    max_antecedent: int = 3
    max_k: int = 1600
    points: int = 7
    seed: int = 20080609
    solver: MaxEntConfig = MaxEntConfig(raise_on_infeasible=False)

    @classmethod
    def paper_scale(cls) -> "Figure5Config":
        """The full 14,210-record setup (slow; hours, as in the paper)."""
        return cls(n_records=14210, max_antecedent=4, max_k=150_000, points=9)


def figure5(config: Figure5Config | None = None) -> ExperimentResult:
    """Estimation Accuracy vs K for the K+, K- and mixed bounds."""
    config = config or Figure5Config()
    workload = build_adult_workload(
        n_records=config.n_records,
        l=config.l,
        max_antecedent=config.max_antecedent,
        seed=config.seed,
    )
    result = ExperimentResult(
        name="Figure 5: background knowledge vs privacy",
        x_label="K",
        y_label="Estimation Accuracy (weighted KL, bits)",
        series={},
        notes=(
            f"{config.n_records} records, {workload.published.n_buckets} "
            f"buckets of {config.l}, rules mined up to antecedent size "
            f"{config.max_antecedent} "
            f"({workload.rules.n_positive} positive / "
            f"{workload.rules.n_negative} negative available)."
        ),
    )
    engine = PrivacyEngine.from_config(config.solver)
    for k in k_grid(config.max_k, config.points):
        for name, bound in (
            ("K+", TopKBound(k, 0)),
            ("K-", TopKBound(0, k)),
            ("(K+, K-)", TopKBound(k // 2, k - k // 2)),
        ):
            accuracy, n_rows, stats = _accuracy_under_bound(
                workload, bound, config.solver, engine
            )
            result.add(
                name,
                x=k,
                y=accuracy,
                constraints=n_rows,
                iterations=stats.iterations,
                seconds=stats.seconds,
            )
    return append_engine_notes(result, engine)


# --- Figure 6 --------------------------------------------------------------------


@dataclass(frozen=True)
class Figure6Config:
    """Sizes and sweep for the Figure 6 reproduction."""

    n_records: int = 2000
    l: int = 5
    sizes: tuple[int, ...] = (1, 2, 3, 4)
    max_k: int = 800
    points: int = 6
    seed: int = 20080609
    solver: MaxEntConfig = MaxEntConfig(raise_on_infeasible=False)

    @classmethod
    def paper_scale(cls) -> "Figure6Config":
        """All eight antecedent sizes at full Adult size."""
        return cls(
            n_records=14210, sizes=(1, 2, 3, 4, 5, 6, 7, 8), max_k=300_000,
            points=9,
        )


def figure6(config: Figure6Config | None = None) -> ExperimentResult:
    """Estimation Accuracy vs K for antecedents of exactly T attributes."""
    config = config or Figure6Config()
    if not config.sizes:
        raise ExperimentError("Figure 6 needs at least one antecedent size")
    result = ExperimentResult(
        name="Figure 6: number of QI attributes in knowledge",
        x_label="K",
        y_label="Estimation Accuracy (weighted KL, bits)",
        series={},
        notes=(
            f"{config.n_records} records; each series uses only rules whose "
            "antecedent has exactly T QI attributes, mixed (K/2)+/(K/2)- "
            "selection."
        ),
    )
    grid = k_grid(config.max_k, config.points)
    engine = PrivacyEngine.from_config(config.solver)
    for size in config.sizes:
        workload = build_adult_workload(
            n_records=config.n_records,
            l=config.l,
            antecedent_sizes=(size,),
            max_antecedent=size,
            seed=config.seed,
        )
        for k in grid:
            bound = TopKBound(k // 2, k - k // 2)
            accuracy, n_rows, stats = _accuracy_under_bound(
                workload, bound, config.solver, engine
            )
            result.add(
                f"T={size}",
                x=k,
                y=accuracy,
                constraints=n_rows,
                iterations=stats.iterations,
            )
    return append_engine_notes(result, engine)


# --- Figure 7(a) ------------------------------------------------------------------


@dataclass(frozen=True)
class Figure7aConfig:
    """Sweep of the number of background-knowledge constraints."""

    n_records: int = 1500
    l: int = 5
    max_antecedent: int = 3
    constraint_counts: tuple[int, ...] = (10, 30, 100, 300, 1000, 3000)
    seed: int = 20080609
    # Performance figures measure the raw solve: no decomposition (the
    # paper's unoptimized setup) and no engine cache (timings must reflect
    # numeric work, not cache bookkeeping).
    solver: MaxEntConfig = MaxEntConfig(
        decompose=False,
        use_closed_form=False,
        raise_on_infeasible=False,
        cache_size=0,
    )

    @classmethod
    def paper_scale(cls) -> "Figure7aConfig":
        """Up to 10^6 constraints over the full dataset, as in the paper."""
        return cls(
            n_records=14210,
            max_antecedent=4,
            constraint_counts=(100, 1000, 10_000, 100_000, 1_000_000),
        )


def figure7a(config: Figure7aConfig | None = None) -> ExperimentResult:
    """Running time and iterations vs number of knowledge constraints."""
    config = config or Figure7aConfig()
    workload = build_adult_workload(
        n_records=config.n_records,
        l=config.l,
        max_antecedent=config.max_antecedent,
        seed=config.seed,
    )
    result = ExperimentResult(
        name="Figure 7(a): performance vs knowledge size",
        x_label="background-knowledge constraints",
        y_label="seconds / iterations",
        series={},
        notes=(
            "Decomposition disabled (the paper measured the unoptimized "
            "solver). x is log-scaled in the paper; the table shows raw "
            "values."
        ),
    )
    engine = PrivacyEngine.from_config(config.solver)
    for count in config.constraint_counts:
        bound = TopKBound(count // 2, count - count // 2)
        _accuracy, n_rows, stats = _accuracy_under_bound(
            workload, bound, config.solver, engine
        )
        result.add(
            "running time (s)", x=count, y=stats.seconds, constraints=n_rows
        )
        result.add(
            "iterations", x=count, y=float(stats.iterations), constraints=n_rows
        )
    return result


# --- Figures 7(b) and 7(c) ------------------------------------------------------------


@dataclass(frozen=True)
class Figure7bcConfig:
    """Sweep of the dataset size (number of buckets)."""

    l: int = 5
    bucket_counts: tuple[int, ...] = (50, 100, 200, 400)
    knowledge_sizes: tuple[int, ...] = (0, 10, 100, 1000)
    max_antecedent: int = 3
    seed: int = 20080609
    # The paper measured the fully unoptimized solver: no decomposition and
    # a numeric solve even without knowledge (otherwise the 0-constraint
    # series would be closed-form and take no time at all).  The engine
    # cache is off for the same reason.
    solver: MaxEntConfig = MaxEntConfig(
        decompose=False,
        use_closed_form=False,
        raise_on_infeasible=False,
        cache_size=0,
    )

    @classmethod
    def paper_scale(cls) -> "Figure7bcConfig":
        """Up to the paper's 2,842 buckets and 10,000 constraints."""
        return cls(
            bucket_counts=(250, 500, 1000, 2000, 2842),
            knowledge_sizes=(0, 100, 1000, 10_000),
            max_antecedent=4,
        )


def figure7bc(
    config: Figure7bcConfig | None = None,
) -> tuple[ExperimentResult, ExperimentResult]:
    """Running time (7b) and iterations (7c) vs number of buckets."""
    config = config or Figure7bcConfig()
    time_result = ExperimentResult(
        name="Figure 7(b): running time vs data size",
        x_label="buckets",
        y_label="seconds",
        series={},
        notes="Decomposition disabled; one series per knowledge size.",
    )
    iteration_result = ExperimentResult(
        name="Figure 7(c): iterations vs data size",
        x_label="buckets",
        y_label="iterations",
        series={},
        notes="Decomposition disabled; one series per knowledge size.",
    )
    engine = PrivacyEngine.from_config(config.solver)
    for n_buckets in config.bucket_counts:
        workload = build_adult_workload(
            n_records=n_buckets * config.l,
            l=config.l,
            max_antecedent=config.max_antecedent,
            seed=config.seed,
        )
        for size in config.knowledge_sizes:
            bound = TopKBound(size // 2, size - size // 2)
            _accuracy, n_rows, stats = _accuracy_under_bound(
                workload, bound, config.solver, engine
            )
            label = f"#Constraints = {size}"
            time_result.add(label, x=n_buckets, y=stats.seconds, constraints=n_rows)
            iteration_result.add(
                label, x=n_buckets, y=float(stats.iterations), constraints=n_rows
            )
    return time_result, iteration_result


def scaled_config(base, **overrides):
    """Convenience for tests/benches: dataclasses.replace with keywords."""
    return replace(base, **overrides)
