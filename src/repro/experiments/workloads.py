"""Shared workload construction for the experiment drivers.

Every figure starts from the same pipeline — generate the Adult-shaped
table, bucketize it to 5-diversity, mine the rule universe — so this module
builds those pieces once per configuration and caches them within a run.
Problem sizes are scaled-down by default (the paper used 14,210 records /
2,842 buckets on 2008 hardware; our defaults keep the benchmark suite in
CI-friendly time) and every driver accepts explicit sizes to run at paper
scale.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.anonymize.anatomy import anatomize
from repro.anonymize.buckets import BucketizedTable
from repro.core.quantifier import PosteriorTable
from repro.data.adult import load_adult_synthetic
from repro.data.synthetic import SyntheticConfig, generate_synthetic
from repro.data.table import Table
from repro.knowledge.mining import MiningConfig, RuleSet, mine_association_rules
from repro.knowledge.statements import ConditionalProbability, Statement


@dataclass(frozen=True)
class AdultWorkload:
    """One prepared instance of the paper's evaluation setup."""

    table: Table
    published: BucketizedTable
    rules: RuleSet
    truth: PosteriorTable


def build_adult_workload(
    *,
    n_records: int = 2000,
    l: int = 5,
    max_antecedent: int = 3,
    min_support_count: int = 3,
    antecedent_sizes: tuple[int, ...] | None = None,
    seed: int = 20080609,
) -> AdultWorkload:
    """Generate, bucketize and mine one Adult-shaped workload.

    Mirrors the paper's setup: buckets of ``l`` records satisfying distinct
    l-diversity with the most frequent education value(s) exempted
    (footnote 3), rules mined at minimum support ``min_support_count``.
    """
    table = load_adult_synthetic(n_records=n_records, seed=seed)
    published = anatomize(table, l=l, exempt="auto", seed=seed)
    mining = MiningConfig(
        min_support_count=min_support_count,
        max_antecedent=max_antecedent,
        antecedent_sizes=antecedent_sizes,
    )
    rules = mine_association_rules(table, mining)
    truth = PosteriorTable.from_table(table)
    return AdultWorkload(
        table=table, published=published, rules=rules, truth=truth
    )


def build_synthetic_release(
    n_records: int,
    *,
    qi_domain_sizes: tuple[int, ...] = (6, 5, 4, 3),
    n_sa_values: int = 10,
    l: int = 5,
    seed: int = 20080609,
) -> BucketizedTable:
    """One synthetic bucketized release (the scaling-benchmark workload).

    The construction benchmarks use the default small QI domains; the
    cluster benchmarks widen them (unique QI tuples keep per-bucket
    knowledge from coupling buckets into one giant component).
    """
    table = generate_synthetic(
        SyntheticConfig(
            n_records=n_records,
            qi_domain_sizes=qi_domain_sizes,
            n_sa_values=n_sa_values,
            seed=seed,
        )
    )
    return anatomize(table, l=l, seed=seed)


def per_bucket_statements(
    published: BucketizedTable,
    *,
    low: float = 0.05,
    high: float = 0.30,
) -> list[Statement]:
    """One distinct conditional-probability statement per bucket.

    Models the worst-case background-knowledge sweeps of Martin et al.
    (an adversary with a separate belief about every group): each bucket
    gets ``P(first SA value | first QI tuple) = p`` with a bucket-unique
    ``p`` swept across ``[low, high]``.  Every bucket becomes a distinct
    *relevant* component — no two solve to the same fingerprint — which
    is exactly the shape that stresses component sharding.  The
    probabilities stay small enough to be feasible against the bucket
    invariants, and a bucket whose first QI tuple another bucket already
    claimed is skipped: at large scales QI tuples collide across buckets
    (and the collision couples those buckets into one component), so a
    second statement on the same left side would contradict the first.
    """
    n = max(len(published.buckets), 1)
    qi_attributes = published.schema.qi_attributes
    statements: list[Statement] = []
    claimed: set[tuple] = set()
    for index, bucket in enumerate(published.buckets):
        given_tuple = bucket.qi_tuples[0]
        if given_tuple in claimed:
            continue
        claimed.add(given_tuple)
        statements.append(
            ConditionalProbability(
                given=dict(zip(qi_attributes, given_tuple)),
                sa_value=bucket.sa_values[0],
                probability=round(low + (high - low) * index / n, 6),
            )
        )
    return statements


def k_grid(max_k: int, points: int = 8) -> list[int]:
    """A 0-anchored, roughly geometric grid of K values up to ``max_k``.

    The paper's x-axes span 0 to ~150k rules; a geometric grid captures the
    same "fast drop then flatten" shape with far fewer solves.
    """
    if max_k <= 0:
        return [0]
    grid = [0]
    value = max(1, max_k // (2 ** (points - 2)))
    while value < max_k:
        grid.append(value)
        value *= 2
    grid.append(max_k)
    return sorted(set(grid))
