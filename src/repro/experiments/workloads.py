"""Shared workload construction for the experiment drivers.

Every figure starts from the same pipeline — generate the Adult-shaped
table, bucketize it to 5-diversity, mine the rule universe — so this module
builds those pieces once per configuration and caches them within a run.
Problem sizes are scaled-down by default (the paper used 14,210 records /
2,842 buckets on 2008 hardware; our defaults keep the benchmark suite in
CI-friendly time) and every driver accepts explicit sizes to run at paper
scale.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.anonymize.anatomy import anatomize
from repro.anonymize.buckets import BucketizedTable
from repro.core.quantifier import PosteriorTable
from repro.data.adult import load_adult_synthetic
from repro.data.table import Table
from repro.knowledge.mining import MiningConfig, RuleSet, mine_association_rules


@dataclass(frozen=True)
class AdultWorkload:
    """One prepared instance of the paper's evaluation setup."""

    table: Table
    published: BucketizedTable
    rules: RuleSet
    truth: PosteriorTable


def build_adult_workload(
    *,
    n_records: int = 2000,
    l: int = 5,
    max_antecedent: int = 3,
    min_support_count: int = 3,
    antecedent_sizes: tuple[int, ...] | None = None,
    seed: int = 20080609,
) -> AdultWorkload:
    """Generate, bucketize and mine one Adult-shaped workload.

    Mirrors the paper's setup: buckets of ``l`` records satisfying distinct
    l-diversity with the most frequent education value(s) exempted
    (footnote 3), rules mined at minimum support ``min_support_count``.
    """
    table = load_adult_synthetic(n_records=n_records, seed=seed)
    published = anatomize(table, l=l, exempt="auto", seed=seed)
    mining = MiningConfig(
        min_support_count=min_support_count,
        max_antecedent=max_antecedent,
        antecedent_sizes=antecedent_sizes,
    )
    rules = mine_association_rules(table, mining)
    truth = PosteriorTable.from_table(table)
    return AdultWorkload(
        table=table, published=published, rules=rules, truth=truth
    )


def k_grid(max_k: int, points: int = 8) -> list[int]:
    """A 0-anchored, roughly geometric grid of K values up to ``max_k``.

    The paper's x-axes span 0 to ~150k rules; a geometric grid captures the
    same "fast drop then flatten" shape with far fewer solves.
    """
    if max_k <= 0:
        return [0]
    grid = [0]
    value = max(1, max_k // (2 ** (points - 2)))
    while value < max_k:
        grid.append(value)
        value *= 2
    grid.append(max_k)
    return sorted(set(grid))
