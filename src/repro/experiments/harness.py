"""Result containers and rendering for the experiment drivers.

Every figure driver returns an :class:`ExperimentResult`: named series of
(x, y) points plus metadata, renderable as the exact rows/series the paper
plots — a text table and an ASCII chart, since the repository regenerates
*numbers and shapes*, not PDFs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ExperimentError
from repro.experiments.ascii_plot import line_plot
from repro.utils.tabulate import render_table


@dataclass(frozen=True)
class SeriesPoint:
    """One measured point of one series."""

    x: float
    y: float
    extra: dict = field(default_factory=dict)


@dataclass
class ExperimentResult:
    """All series of one figure, with enough context to interpret them."""

    name: str
    x_label: str
    y_label: str
    series: dict[str, list[SeriesPoint]]
    notes: str = ""

    def add(self, series_name: str, x: float, y: float, **extra) -> None:
        """Append a point to ``series_name`` (created on first use)."""
        self.series.setdefault(series_name, []).append(
            SeriesPoint(x=x, y=y, extra=dict(extra))
        )

    def series_xy(self, series_name: str) -> tuple[list[float], list[float]]:
        """The x and y vectors of one series."""
        try:
            points = self.series[series_name]
        except KeyError:
            raise ExperimentError(
                f"{self.name} has no series {series_name!r}; "
                f"available: {sorted(self.series)}"
            ) from None
        return [p.x for p in points], [p.y for p in points]

    def to_table(self) -> str:
        """The figure's data as a text table (one row per x, one column per
        series) — the rows the paper's plot encodes."""
        xs = sorted({p.x for points in self.series.values() for p in points})
        names = list(self.series)
        value: dict[tuple[float, str], float] = {}
        for name, points in self.series.items():
            for p in points:
                value[(p.x, name)] = p.y
        rows = []
        for x in xs:
            rows.append(
                [x] + [value.get((x, name), float("nan")) for name in names]
            )
        return render_table(
            [self.x_label] + names, rows, title=f"{self.name}  ({self.y_label})"
        )

    def to_plot(self, *, width: int = 70, height: int = 18) -> str:
        """An ASCII rendition of the figure."""
        data = {name: self.series_xy(name) for name in self.series}
        return line_plot(
            data,
            title=self.name,
            x_label=self.x_label,
            y_label=self.y_label,
            width=width,
            height=height,
        )

    def render(self) -> str:
        """Table + plot + notes, ready to print."""
        parts = [self.to_table(), "", self.to_plot()]
        if self.notes:
            parts += ["", self.notes]
        return "\n".join(parts)


def append_engine_notes(result: ExperimentResult, engine) -> ExperimentResult:
    """Record an execution engine's telemetry in a result's notes.

    ``engine`` is a :class:`repro.engine.PrivacyEngine` (duck-typed via its
    ``describe()`` method).  Every figure driver runs its whole sweep on
    one engine, so the appended line — solve count, component cache hit
    rate, cpu vs wall seconds — tells the reader how much of the sweep was
    served from cache rather than recomputed.
    """
    line = engine.describe()
    result.notes = f"{result.notes}\n{line}" if result.notes else line
    return result
