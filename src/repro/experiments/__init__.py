"""Experiment harness reproducing every figure of the paper's evaluation."""

from repro.experiments.figures import (
    Figure5Config,
    Figure6Config,
    Figure7aConfig,
    Figure7bcConfig,
    figure5,
    figure6,
    figure7a,
    figure7bc,
)
from repro.experiments.harness import ExperimentResult, SeriesPoint

__all__ = [
    "ExperimentResult",
    "Figure5Config",
    "Figure6Config",
    "Figure7aConfig",
    "Figure7bcConfig",
    "SeriesPoint",
    "figure5",
    "figure6",
    "figure7a",
    "figure7bc",
]
