"""Quickstart: the paper's running example, end to end.

Reproduces Section 1's motivating deduction on the Figure 1 data: without
background knowledge every disease in a bucket is equally plausible for
every member, but the single piece of common medical knowledge
``P(Breast Cancer | male) = 0`` lets an adversary *determine* that the only
female of Bucket 2 has Breast Cancer — and Privacy-MaxEnt quantifies
exactly that.

Run:  python examples/quickstart.py
"""

from repro import ConditionalProbability, PosteriorTable, PrivacyMaxEnt, estimation_accuracy
from repro.data.paper_example import Q2, Q4, S1, paper_published, paper_table


def main() -> None:
    table = paper_table()
    published = paper_published()
    truth = PosteriorTable.from_table(table)

    print("Original data D: 10 records; QI = (gender, degree); SA = disease")
    print(f"Published D': {published.n_buckets} buckets "
          f"(Figure 1 of the paper)\n")

    # --- no background knowledge: the classic uniform estimate -------------
    engine = PrivacyMaxEnt(published)
    posterior = engine.posterior()
    print("Without background knowledge (Eq. 9 / Theorem 5):")
    print(f"  P*(Breast Cancer | female college) = "
          f"{posterior.prob(Q2, S1):.3f}")
    print(f"  P*(Breast Cancer | female junior)  = "
          f"{posterior.prob(Q4, S1):.3f}")
    print(f"  estimation accuracy (weighted KL) = "
          f"{estimation_accuracy(truth, posterior):.4f} bits\n")

    # --- the Breast-Cancer knowledge ----------------------------------------
    knowledge = [
        ConditionalProbability(
            given={"gender": "male"}, sa_value=S1, probability=0.0
        )
    ]
    informed = PrivacyMaxEnt(published, knowledge=knowledge)
    posterior = informed.posterior()
    print('With the knowledge "males do not get Breast Cancer":')
    print(f"  P*(Breast Cancer | female college) = "
          f"{posterior.prob(Q2, S1):.3f}")
    print(f"  P*(Breast Cancer | female junior)  = "
          f"{posterior.prob(Q4, S1):.3f}   <- fully disclosed")
    print(f"  estimation accuracy (weighted KL) = "
          f"{estimation_accuracy(truth, posterior):.4f} bits")
    print("\nGrace (the only female in Bucket 2) is re-identified: the "
          "bucket's Breast Cancer can only be hers.")

    solution = informed.solve()
    print(f"\nSolver: {solution.stats.solver}, "
          f"{solution.stats.iterations} iterations, "
          f"residual {solution.stats.residual:.1e}, "
          f"{solution.stats.n_components} components")


if __name__ == "__main__":
    main()
