"""A scripted client session against a running `repro serve` instance.

Reproduces the paper's running example (Figure 1) over the wire:
register the 3-bucket release with its original table, read the
no-knowledge posterior, add the "males do not get Breast Cancer"
statement to watch Grace's full disclosure, run a Section 4.3
assessment over candidate bounds, and finally verify via the telemetry
endpoint that repeated queries were served from cache rather than
re-solved.

Run ``repro serve`` (or ``python -m repro serve``) first, then:

    python examples/serve_client.py [--host H] [--port P] [--wait SECONDS]

Exits non-zero on any mismatch — the CI smoke job leans on that.
"""

from __future__ import annotations

import argparse
import sys

from repro.data.paper_example import Q2, Q4, S1, paper_published, paper_table
from repro.knowledge.bounds import TopKBound
from repro.knowledge.statements import ConditionalProbability
from repro.service.client import ServiceClient


def check(condition: bool, message: str) -> None:
    if not condition:
        print(f"FAIL: {message}", file=sys.stderr)
        raise SystemExit(1)
    print(f"  ok: {message}")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8711)
    parser.add_argument(
        "--wait",
        type=float,
        default=30.0,
        help="seconds to wait for the service to come up",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=0,
        help=(
            "expect a sharded front-end with this many shard workers "
            "(0: a plain single-engine service)"
        ),
    )
    args = parser.parse_args()

    client = ServiceClient(args.host, args.port)
    health = client.wait_until_healthy(timeout=args.wait)
    print(f"service is healthy after {health['uptime_seconds']:.2f}s uptime")
    if args.shards:
        shard_reports = health.get("shards", [])
        check(
            len(shard_reports) == args.shards,
            f"health reports {args.shards} shard worker(s)",
        )
        check(
            all(report["alive"] for report in shard_reports),
            "every shard worker is alive",
        )

    release_id = client.register(
        paper_published(), original=paper_table(), name="paper-figure-1"
    )
    print(f"registered the Figure 1 release as {release_id}")

    # -- no background knowledge: the uniform Eq. (9) estimate --------------
    result = client.posterior(release_id)
    p_uniform = result.posterior.prob(Q2, S1)
    print(f"P*(Breast Cancer | female college) = {p_uniform:.3f} "
          f"(served from {result.served_from})")
    check(abs(p_uniform - 0.125) < 1e-9, "uniform estimate matches Eq. (9)")

    # -- one medical fact fully discloses Grace -----------------------------
    knowledge = [
        ConditionalProbability(
            given={"gender": "male"}, sa_value=S1, probability=0.0
        )
    ]
    result = client.posterior(release_id, knowledge)
    p_grace = result.posterior.prob(Q4, S1)
    print(f"P*(Breast Cancer | female junior)  = {p_grace:.3f} "
          f"(served from {result.served_from})")
    check(abs(p_grace - 1.0) < 1e-6, "Grace is fully disclosed")
    check(result.served_from == "solve", "first knowledge query ran a solve")

    # -- the repeat costs nothing: served from cache, not re-solved ---------
    repeat = client.posterior(release_id, knowledge)
    check(
        repeat.served_from in ("result-cache", "coalesced"),
        f"repeat served from {repeat.served_from}, no re-solve",
    )
    check(
        abs(repeat.posterior.prob(Q4, S1) - p_grace) < 1e-12,
        "cached posterior is bit-identical",
    )

    # -- Section 4.3: one assessment per candidate bound --------------------
    assessments = client.assess(
        release_id,
        [TopKBound(0, 0), TopKBound(2, 2), TopKBound(4, 4)],
        mining={"min_support_count": 1, "max_antecedent": 1},
    )
    print("assessment table:")
    for row in assessments:
        print(
            f"  {row['bound']:<18} accuracy={row['estimation_accuracy']:.4f} "
            f"max_disclosure={row['max_disclosure']:.3f} "
            f"(served from {row['served_from']})"
        )
    check(len(assessments) == 3, "one assessment per bound")
    accuracies = [row["estimation_accuracy"] for row in assessments]
    check(
        accuracies[0] >= accuracies[-1],
        "more knowledge does not worsen estimation accuracy",
    )

    # -- telemetry proves the serving layer did its job ---------------------
    telemetry = client.telemetry()
    counters = telemetry["service"]["counters"]
    check(telemetry["status"] == "ok", "telemetry endpoint is healthy")
    # healthz + register + 3 posteriors + assess answered so far (the
    # in-flight telemetry request is not yet in its own snapshot).
    check(counters.get("requests_total", 0) >= 6, "requests were counted")
    if args.shards:
        # Sharded front-end: the repeats were served by the owning
        # worker's caches, visible in the aggregated fleet telemetry.
        cluster = telemetry["cluster"]
        check(
            len(cluster["workers"]) == args.shards,
            "telemetry aggregates every shard worker",
        )
        shard_hits = sum(
            worker["telemetry"]["store"]["result_cache"]["hits"]
            + worker["telemetry"]["coalescing"]["coalesced"]
            for worker in cluster["workers"]
            if worker.get("telemetry")
        )
        check(
            shard_hits >= 1,
            "repeat queries hit a shard's result cache / coalesced",
        )
        check(
            sum(
                worker["telemetry"]["service"]["counters"].get(
                    "releases_registered", 0
                )
                for worker in cluster["workers"]
                if worker.get("telemetry")
            )
            >= 1,
            "the release lives on a shard worker",
        )
    else:
        cache = telemetry["store"]["result_cache"]
        check(
            cache["hits"] + telemetry["coalescing"]["coalesced"] >= 1,
            "repeat queries hit the result cache / coalesced",
        )
    check(
        counters.get("solves_started", 0) < counters.get("requests_total", 0),
        "fewer solves than requests (the service amortized work)",
    )
    latencies = telemetry["service"]["endpoints"]
    posterior_summary = latencies.get("POST /v1/releases/{id}/posterior", {})
    check(posterior_summary.get("count", 0) >= 3, "latency histogram recorded")
    print(
        "posterior latency: "
        f"p50={posterior_summary['p50_seconds'] * 1000:.2f}ms "
        f"p95={posterior_summary['p95_seconds'] * 1000:.2f}ms"
    )
    print("all checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
