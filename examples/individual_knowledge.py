"""Knowledge about individuals (Section 6): the pseudonym model.

Reproduces the paper's three statement families on the Figure 1/Figure 4
data:

1. probabilistic knowledge about one person and one SA value
   ("the probability that Alice (q1) has Breast Cancer is 0.2"),
2. disjunctive knowledge ("Alice has either Breast Cancer or HIV"),
3. group counts ("two people among Alice, Bob and Charlie have HIV").

Each statement becomes a linear constraint over the person-level variables
``P(i, s, b)`` of the pseudonym expansion; maximum entropy then yields a
per-person posterior ``P*(s | i)``.

Run:  python examples/individual_knowledge.py
"""

from repro import (
    GroupCount,
    IndividualDisjunction,
    IndividualProbability,
    PrivacyMaxEnt,
    PseudonymTable,
)
from repro.data.paper_example import Q1, Q2, Q5, S1, S4, paper_published


def show(title: str, posterior: dict[str, dict[str, float]], people: list[str]) -> None:
    print(title)
    for name in people:
        top = sorted(posterior[name].items(), key=lambda kv: -kv[1])[:3]
        rendered = ", ".join(f"P({s}|{name})={p:.3f}" for s, p in top)
        print(f"  {rendered}")
    print()


def main() -> None:
    published = paper_published()
    pseudonyms = PseudonymTable(published)

    # Alice is known to be in the data with QI q1 = (male, college)... the
    # paper's example uses q1; we follow it and pick the first pseudonym.
    alice = pseudonyms.assign(Q1)  # i1
    bob = pseudonyms.assign(Q2)  # first (female, college) pseudonym
    charlie = pseudonyms.assign(Q5)  # the (female, graduate) pseudonym
    print(f"Pseudonyms: Alice={alice.name} (q1), Bob={bob.name} (q2), "
          f"Charlie={charlie.name} (q5)\n")

    # --- baseline: no individual knowledge --------------------------------
    engine = PrivacyMaxEnt(published, individuals=True)
    show(
        "No individual knowledge (symmetry: matches the group posterior):",
        engine.person_posterior(),
        [alice.name, bob.name, charlie.name],
    )

    # --- (1) probabilistic single-value knowledge ---------------------------
    engine = PrivacyMaxEnt(
        published,
        knowledge=[IndividualProbability(person=alice, sa_value=S1, probability=0.2)],
    )
    show(
        f'(1) "P(Breast Cancer | Alice) = 0.2":',
        engine.person_posterior(),
        [alice.name, bob.name],
    )

    # --- (2) disjunction ------------------------------------------------------
    engine = PrivacyMaxEnt(
        published,
        knowledge=[IndividualDisjunction(person=alice, sa_values=(S1, S4))],
    )
    show(
        '(2) "Alice has either Breast Cancer or HIV":',
        engine.person_posterior(),
        [alice.name, bob.name],
    )

    # --- (3) group count ---------------------------------------------------------
    engine = PrivacyMaxEnt(
        published,
        knowledge=[
            GroupCount(persons=(alice, bob, charlie), sa_value=S4, count=2)
        ],
    )
    show(
        '(3) "Exactly two of Alice, Bob, Charlie have HIV":',
        engine.person_posterior(),
        [alice.name, bob.name, charlie.name],
    )


if __name__ == "__main__":
    main()
