"""Case study: the paper's full Adult pipeline at laptop scale.

Mirrors Section 7's setup — Adult-shaped data, buckets of five records at
distinct 5-diversity (most frequent education value exempted, footnote 3),
association rules mined at minimum support 3 — and prints the Section 4.3
deliverable: a (bound, privacy score) table over candidate Top-(K+, K-)
bounds, so a publisher can see exactly how fast the release's effective
diversity collapses as the assumed adversary strengthens.

Run:  python examples/adult_case_study.py [n_records]
"""

import sys

from repro import MiningConfig, TopKBound, anatomize, assess, load_adult_synthetic
from repro.anonymize.diversity import auto_exempt
from repro.core.report import render_assessments
from repro.core.metrics import distinct_l_diversity, entropy_l_diversity, t_closeness


def main(n_records: int = 1500) -> None:
    table = load_adult_synthetic(n_records=n_records, seed=20080609)
    # Footnote 3 of the paper: the most frequent education value(s) are not
    # considered sensitive; they may repeat within a bucket.
    exempt = auto_exempt(table.value_counts("education"), 5)
    published = anatomize(table, l=5, exempt=exempt, seed=1)

    print(f"Data: {table.n_rows} records, 8 QI attributes, "
          f"education as SA ({table.schema.sa.size} values)")
    print(f"Exempt (non-sensitive) values: {sorted(exempt)}")
    print(f"Release: {published.n_buckets} buckets, "
          f"distinct l = {distinct_l_diversity(published, exempt=exempt)}, "
          f"entropy l = {entropy_l_diversity(published):.2f}, "
          f"t-closeness = {t_closeness(published):.3f}\n")

    bounds = [
        TopKBound(0, 0),
        TopKBound(25, 25),
        TopKBound(100, 100),
        TopKBound(400, 400),
        TopKBound(1600, 1600),
    ]
    assessments = assess(
        table,
        published,
        bounds,
        mining=MiningConfig(min_support_count=3, max_antecedent=3),
        exclude_sa=exempt,
    )
    print(render_assessments(
        assessments,
        title="Privacy under candidate Top-(K+, K-) knowledge bounds",
    ))
    print(
        "\nReading: est_accuracy is the paper's weighted-KL measure "
        "(smaller = adversary closer to the truth); effective_l is "
        "1/max-disclosure — watch the published 5-diversity erode as K "
        "grows."
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 1500)
