"""Observability smoke against a running `repro serve` instance.

Drives the paper's Figure 1 release through a knowledge-bearing solve,
then proves the observability surfaces told the truth about it:

- ``/metrics`` renders a parseable Prometheus 0.0.4 exposition whose
  engine counters reflect the solve that just ran;
- ``/v1/traces`` retains a finished trace rooted at the HTTP request
  whose span tree reaches down into the solver's group tasks — and,
  under ``--cluster``, across the wire into the shard workers
  (coordinator scatter/dispatch spans stitched to worker solve spans).

Run ``repro serve`` (or a cluster front-end) first, then:

    python examples/obs_smoke.py [--host H] [--port P] [--cluster]

Exits non-zero on any mismatch — the CI observability-smoke job leans
on that.
"""

from __future__ import annotations

import argparse
import sys

from repro.data.paper_example import Q4, S1, paper_published, paper_table
from repro.knowledge.statements import ConditionalProbability
from repro.maxent.config import MaxEntConfig
from repro.obs.metrics import parse_exposition
from repro.obs.trace import format_trace
from repro.service.client import ServiceClient


def check(condition: bool, message: str) -> None:
    if not condition:
        print(f"FAIL: {message}", file=sys.stderr)
        raise SystemExit(1)
    print(f"  ok: {message}")


def span_names(trace: dict) -> set[str]:
    return {span["name"] for span in trace.get("spans", [])}


def find_trace(traces: list[dict], required: set[str]) -> dict | None:
    """The most recent finished trace containing every required span."""
    for trace in traces:
        if required <= span_names(trace):
            return trace
    return None


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8711)
    parser.add_argument(
        "--wait",
        type=float,
        default=30.0,
        help="seconds to wait for the service to come up",
    )
    parser.add_argument(
        "--cluster",
        action="store_true",
        help=(
            "expect a cluster-executor service: the solve trace must "
            "stitch coordinator dispatch spans to shard worker spans"
        ),
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=0,
        help=(
            "expect a sharded front-end: /metrics must aggregate this "
            "many per-shard engine scrapes (0: a plain service)"
        ),
    )
    args = parser.parse_args()

    client = ServiceClient(args.host, args.port)
    health = client.wait_until_healthy(timeout=args.wait)
    print(f"service is healthy after {health['uptime_seconds']:.2f}s uptime")

    release_id = client.register(
        paper_published(), original=paper_table(), name="obs-smoke"
    )
    print(f"registered the Figure 1 release as {release_id}")

    # A knowledge-bearing solve with per-component dispatch
    # (batch_components=0) so the executor sees one work unit per
    # numeric component — the trace must show the fan-out.
    knowledge = [
        ConditionalProbability(
            given={"gender": "male"}, sa_value=S1, probability=0.0
        )
    ]
    result = client.posterior(
        release_id, knowledge, config=MaxEntConfig(batch_components=0)
    )
    check(
        abs(result.posterior.prob(Q4, S1) - 1.0) < 1e-6,
        "the traced solve produced the paper's answer",
    )
    check(result.served_from == "solve", "the query really ran a solve")

    # -- /metrics: a well-formed exposition reflecting the solve ------------
    text = client.metrics()
    families = parse_exposition(text)
    print(f"/metrics exposes {len(families)} metric families")
    for family in (
        "repro_requests_total",
        "repro_responses_total",
        "repro_uptime_seconds",
        "repro_request_duration_seconds_bucket",
        "repro_engine_solves_total",
        "repro_engine_wall_seconds_total",
    ):
        check(family in families, f"exposition has {family}")
    solves = sum(value for _, value in families["repro_engine_solves_total"])
    check(solves >= 1, "engine solve counter reflects the solve")
    requests = sum(value for _, value in families["repro_requests_total"])
    check(requests >= 3, "request counter reflects this session")
    durations = families["repro_request_duration_seconds_count"]
    check(
        any(
            labels.get("endpoint", "").endswith("/posterior") and value >= 1
            for labels, value in durations
        ),
        "posterior latency histogram recorded",
    )
    if args.shards:
        shards = {
            labels["shard"]
            for labels, _ in families["repro_engine_solves_total"]
            if "shard" in labels
        }
        check(
            len(shards) == args.shards,
            f"fleet exposition labels {args.shards} per-shard engine(s)",
        )
        check(
            "repro_shards_alive" in families,
            "fleet exposition reports shard liveness",
        )
        alive = sum(value for _, value in families["repro_shards_alive"])
        check(alive == args.shards, "every shard scrape succeeded")

    # -- /v1/traces: one stitched trace for the solve -----------------------
    report = client.traces(limit=20)
    check(report.get("enabled", False), "tracing is enabled")
    traces = report.get("traces", [])
    check(len(traces) >= 1, "finished traces are retained")

    required = {"service.request"}
    if not args.shards:
        # A release-sharding front-end forwards the solve; the worker's
        # spans live on the worker's own /v1/traces (linked by trace
        # id), so only the component-scatter paths solve locally.
        required |= {"engine.solve", "engine.solve_group"}
    if args.cluster:
        required |= {
            "cluster.scatter",
            "cluster.dispatch",
            "shard.solve_components",
        }
    trace = find_trace(traces, required)
    if trace is None:
        for candidate in traces:
            print(format_trace(candidate), file=sys.stderr)
    check(
        trace is not None,
        "one trace spans "
        + ("service -> coordinator -> workers" if args.cluster else
           "service -> engine -> group tasks" if not args.shards else
           "the front-end request"),
    )
    print(format_trace(trace))

    ids = {span["span_id"] for span in trace["spans"]}
    orphans = [
        span
        for span in trace["spans"]
        if span["parent_id"] is not None and span["parent_id"] not in ids
    ]
    check(not orphans, "every non-root span's parent is in the trace")
    check(
        sum(1 for span in trace["spans"] if span["parent_id"] is None) == 1,
        "the trace has exactly one root",
    )
    if "engine.solve_group" in required:
        group_spans = [
            span
            for span in trace["spans"]
            if span["name"] == "engine.solve_group"
        ]
        check(
            any(
                key.startswith("phase.")
                for span in group_spans
                for key in span["attributes"]
            ),
            "solver phase breakdown rides the group spans",
        )
    if args.cluster:
        workers = {
            span["attributes"].get("worker")
            for span in trace["spans"]
            if span["name"] == "shard.solve_components"
        }
        check(
            len(workers) >= 1 and None not in workers,
            f"worker-side spans identify their shard ({sorted(workers)})",
        )

    print("all checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
