"""Vague and relational knowledge (Section 4.5): inequality constraints.

Adversaries rarely know exact probabilities.  The paper's Kazama-Tsujii
extension admits

- interval knowledge  ``0.3 - eps <= P(s1 | q1) <= 0.3 + eps``, and
- comparisons         ``P(s2 | q1) < P(s1 | q1)``,

both of which compile to ``G p <= d`` rows solved with non-negative dual
multipliers.  This example sweeps the vagueness radius ``eps`` and shows the
estimate interpolating between "exact knowledge" (eps = 0) and "no
knowledge" (eps so wide the constraint never binds), plus which vague
constraints end up *active* at the solution.

Run:  python examples/vague_knowledge.py
"""

from repro import (
    Comparison,
    ConditionalInterval,
    ConditionalProbability,
    PosteriorTable,
    PrivacyMaxEnt,
    estimation_accuracy,
)
from repro.data.paper_example import Q1, S1, S2, S3, paper_published, paper_table
from repro.maxent.inequality import classify_inequalities


def main() -> None:
    table = paper_table()
    published = paper_published()
    truth = PosteriorTable.from_table(table)

    # Ground truth: P(Pneumonia | male college) = 1/3 (Brian among q1's
    # three records).  The adversary knows this only vaguely.
    exact = 1.0 / 3.0
    print("Vague knowledge: P(Pneumonia | male, college) = 1/3 +- eps\n")
    print(f"{'eps':>6}  {'P*(s3|q1)':>10}  {'est. accuracy':>14}")
    for eps in (0.0, 0.05, 0.15, 0.30, 0.60):
        if eps == 0.0:
            knowledge = [
                ConditionalProbability(
                    given={"gender": "male", "degree": "college"},
                    sa_value=S3,
                    probability=exact,
                )
            ]
        else:
            knowledge = [
                ConditionalInterval(
                    given={"gender": "male", "degree": "college"},
                    sa_value=S3,
                    low=max(0.0, exact - eps),
                    high=min(1.0, exact + eps),
                )
            ]
        engine = PrivacyMaxEnt(published, knowledge=knowledge)
        posterior = engine.posterior()
        accuracy = estimation_accuracy(truth, posterior)
        print(f"{eps:6.2f}  {posterior.prob(Q1, S3):10.4f}  {accuracy:14.4f}")

    print(
        "\nWider eps -> the constraint stops binding and the estimate "
        "returns to the no-knowledge uniform value."
    )

    # --- relational knowledge -------------------------------------------------
    print("\nRelational knowledge: P(Flu | q1) >= P(Breast Cancer | q1) + 0.2")
    engine = PrivacyMaxEnt(
        published,
        knowledge=[
            Comparison(
                given={"gender": "male", "degree": "college"},
                more_likely=S2,
                less_likely=S1,
                margin=0.2,
            )
        ],
    )
    posterior = engine.posterior()
    print(f"  P*(Flu | q1)           = {posterior.prob(Q1, S2):.4f}")
    print(f"  P*(Breast Cancer | q1) = {posterior.prob(Q1, S1):.4f}")

    report = classify_inequalities(engine.system, engine.solve().p)
    for entry in report:
        state = "ACTIVE" if entry.is_active else f"slack {entry.slack:.4f}"
        print(f"  constraint [{entry.row.label}]: {state}")


if __name__ == "__main__":
    main()
