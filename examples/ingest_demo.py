"""Database-to-release ingestion, end to end.

The paper's pipeline starts from a *table someone already has* — so this
demo starts from a SQLite database, not an in-memory array:

1. Seed a synthetic Adult table into a throwaway SQLite file (the
   "customer database").
2. Stream it back through :class:`SQLiteConnector` in chunks and show
   the content digest is chunk-size invariant — the connector's
   determinism contract.
3. Anonymize chunk by chunk with Anatomy and fold the wire buckets into
   an :class:`IngestSession`, proving the incrementally-accumulated
   release digest is **bit-identical** to hashing the assembled one-shot
   payload (the document that never actually existed).
4. Register the release and replay a seeded OLAP-style query mix
   against it: the knowledge-free posterior must sit exactly at the
   release's own in-bucket SA frequency bound (the l-diversity floor,
   relaxed only by Anatomy's auto-exempted too-frequent values), and
   the attacker's accumulated view must cover more rows every batch.

Runs fully in-process by default.  With ``--service`` the same chunks
are streamed over HTTP to a running ``repro serve`` instance instead
(begin -> chunks -> finalize), which must land on the same digest.

    python examples/ingest_demo.py [--service [--host H] [--port P]]
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from collections import Counter
from pathlib import Path

from repro.anonymize.anatomy import anatomize
from repro.core.serialize import published_to_dict, schema_to_dict
from repro.data.adult import load_adult_synthetic
from repro.data.connectors import SQLiteConnector, table_to_sqlite
from repro.service.ingest import IngestSession, chunk_digest
from repro.service.store import SessionStore, release_digest
from repro.workload import EmbeddedBackend, WorkloadConfig, WorkloadDriver

N_RECORDS = 2000
CHUNK_ROWS = 500
L = 4
SEED = 11


def check(condition: bool, message: str) -> None:
    if not condition:
        print(f"FAIL: {message}", file=sys.stderr)
        raise SystemExit(1)
    print(f"  ok: {message}")


def seed_database(path: Path) -> tuple[tuple, str]:
    table = load_adult_synthetic(n_records=N_RECORDS, seed=SEED)
    table_to_sqlite(table, path)
    qi = tuple(a.name for a in table.schema.qi)
    print(f"seeded {path.name}: {table.n_rows} rows, qi={list(qi)}")
    return qi, table.schema.sa_attribute


def anonymized_chunks(connector: SQLiteConnector, schema) -> list[list]:
    chunks = []
    for chunk in connector.chunks(CHUNK_ROWS):
        published = anatomize(chunk.to_table(schema), l=L, seed=SEED)
        chunks.append(published_to_dict(published)["buckets"])
    return chunks


def ingest_embedded(schema, chunks) -> tuple[str, object]:
    session = IngestSession("demo", schema_to_dict(schema), name="demo")
    for seq, buckets in enumerate(chunks):
        session.add_chunk(seq, buckets, chunk_digest(buckets))
    digest, published = session.build(None)
    SessionStore().register_digest(digest, published, name="demo")
    return digest, published


def ingest_service(host: str, port: int, schema, chunks) -> str:
    from repro.service.client import ServiceClient

    with ServiceClient(host, port) as client:
        client.wait_until_healthy(timeout=30)
        upload_id = client.begin_upload(
            schema_to_dict(schema), name="ingest-demo"
        )
        for seq, buckets in enumerate(chunks):
            client.upload_chunk(upload_id, seq, buckets)
        summary = client.finalize_upload(upload_id)
    print(
        f"service registered {summary['release_id']!r}: "
        f"{summary['n_records']} records in {summary['n_buckets']} buckets"
    )
    return summary["digest"]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--service", action="store_true")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8711)
    args = parser.parse_args()

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "adult.db"
        qi, sa = seed_database(path)

        # -- connector determinism ------------------------------------------
        digests = set()
        for chunk_rows in (100, 500, 1337):
            with SQLiteConnector(path, "records", qi=qi, sa=sa) as connector:
                digests.add(connector.content_digest(chunk_rows))
        check(
            len(digests) == 1,
            f"content digest is chunk-size invariant ({digests.pop()[:16]}…)",
        )

        # -- chunked anonymization + incremental digest ---------------------
        with SQLiteConnector(path, "records", qi=qi, sa=sa) as connector:
            schema = connector.schema()
            chunks = anonymized_chunks(connector, schema)
        print(f"anonymized {len(chunks)} chunks (Anatomy, l={L})")

        digest, published = ingest_embedded(schema, chunks)
        one_shot = release_digest(published_to_dict(published))
        check(
            digest == one_shot,
            "incremental digest is bit-identical to the one-shot payload's",
        )
        check(
            published.n_records == N_RECORDS,
            f"all {N_RECORDS} records reached the release",
        )

        if args.service:
            check(
                ingest_service(args.host, args.port, schema, chunks) == digest,
                "the HTTP chunked upload landed on the same digest",
            )

    # -- replay a query workload against the ingested release ---------------
    backend = EmbeddedBackend(published)
    try:
        report = WorkloadDriver(
            backend,
            config=WorkloadConfig(
                n_batches=3, queries_per_batch=16, knowledge_step=0, seed=SEED
            ),
        ).run()
    finally:
        backend.close()

    # The release's own worst-case in-bucket SA frequency: 1/l for strict
    # l-diversity, higher only where Anatomy exempted a too-frequent value
    # (the paper's footnote 3: Adult's dominant education values cannot
    # satisfy the eligibility condition, so they are exempted).
    sa_counts: Counter = Counter()
    for bucket in published.buckets:
        sa_counts.update(bucket.sa_values)
    exempted = {
        value: count / published.n_records
        for value, count in sa_counts.items()
        if count / published.n_records > 1.0 / L
    }
    for value, share in exempted.items():
        print(
            f"note: {value!r} is {share:.0%} of rows — too frequent for "
            f"strict {L}-diversity, so Anatomy exempts it"
        )
    floor = max(
        max(Counter(bucket.sa_values).values()) / bucket.size
        for bucket in published.buckets
    )
    for batch in report["batches"]:
        attacker = batch["attacker"]
        print(
            f"  batch {batch['batch']}: max disclosure "
            f"{batch['max_disclosure']:.4f}, attacker coverage "
            f"{attacker['coverage']:.2%} ({batch['served_from']})"
        )
    check(
        all(
            abs(b["max_disclosure"] - floor) <= 1e-6
            for b in report["batches"]
        ),
        "knowledge-free disclosure sits exactly at the release's "
        f"in-bucket SA frequency bound ({floor:.4f})",
    )
    coverages = [b["attacker"]["coverage"] for b in report["batches"]]
    check(
        coverages == sorted(coverages) and coverages[-1] > 0,
        "the attacker's accumulated view only ever grows",
    )
    print("all checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
