"""Privacy-MaxEnt vs the pre-MaxEnt combinatorial family (related work).

Before Privacy-MaxEnt, background knowledge was handled by reasoning over
the *assignments* consistent with deterministic rules (Martin et al.'s
worst-case disclosure, Chen et al.'s privacy skyline).  This example runs
both frameworks side by side on the paper's Figure 1 data and shows:

1. without knowledge they coincide (both reduce to Eq. 9),
2. with deterministic rules they *mostly* agree but can genuinely diverge
   (uniform-over-assignments is not maximum entropy once symmetry breaks),
3. with probabilistic rules the combinatorial family simply cannot play —
   the precise gap Privacy-MaxEnt was built to fill.

Run:  python examples/exact_vs_maxent.py
"""

from repro import (
    ConditionalProbability,
    PrivacyMaxEnt,
    enumeration_posterior,
    worst_case_disclosure,
)
from repro.data.paper_example import Q2, Q4, S1, S2, paper_published
from repro.errors import NotSupportedError


def main() -> None:
    published = paper_published()

    # --- 1. no knowledge: identical frameworks -----------------------------
    maxent = PrivacyMaxEnt(published).posterior()
    combinatorial = enumeration_posterior(published)
    print("Without knowledge (both reduce to the Eq. 9 frequency formula):")
    for q, s in ((Q2, S1), (Q4, S1)):
        print(
            f"  P({s} | {'/'.join(q)}):  enumeration "
            f"{combinatorial.prob(q, s):.4f}   maxent {maxent.prob(q, s):.4f}"
        )

    # --- 2. deterministic knowledge ------------------------------------------
    rule = ConditionalProbability(
        given={"gender": "male"}, sa_value=S1, probability=0.0
    )
    maxent = PrivacyMaxEnt(published, knowledge=[rule]).posterior()
    combinatorial = enumeration_posterior(published, [rule])
    print('\nWith "males never have Breast Cancer":')
    for q, s in ((Q2, S1), (Q4, S1), (Q2, S2)):
        print(
            f"  P({s} | {'/'.join(q)}):  enumeration "
            f"{combinatorial.prob(q, s):.4f}   maxent {maxent.prob(q, s):.4f}"
        )
    print(
        f"  worst-case (Martin-style) disclosure: "
        f"{worst_case_disclosure(published, [rule]):.4f}"
    )

    # --- 3. probabilistic knowledge: only MaxEnt can express it --------------
    probabilistic = ConditionalProbability(
        given={"gender": "male"}, sa_value=S2, probability=0.3
    )
    print('\nWith the probabilistic rule "P(Flu | male) = 0.3":')
    try:
        enumeration_posterior(published, [probabilistic])
    except NotSupportedError as error:
        print(f"  enumeration: UNSUPPORTED — {error}")
    posterior = PrivacyMaxEnt(published, knowledge=[probabilistic]).posterior()
    print(
        f"  maxent:      P(Flu | male college) = "
        f"{posterior.prob(('male', 'college'), S2):.4f}"
    )
    print(
        "\nThis asymmetry — linear *probabilistic* constraints handled "
        "uniformly — is the paper's core contribution."
    )


if __name__ == "__main__":
    main()
