"""Exploring knowledge bounds (Sections 4.3-4.4): what should I assume?

A publisher cannot know what adversaries know; Privacy-MaxEnt instead
reports privacy *as a function of an assumed bound*.  This example sweeps
the Top-(K+, K-) family three ways — positive-only, negative-only, mixed —
and prints the resulting frontier, which is exactly the decision surface
the paper proposes publishers examine ("users can understand the risk of
their data publishing under various assumptions").

It also demonstrates the epsilon-vague variant of a bound: the same rules
assumed known only approximately, which weakens the adversary.

Run:  python examples/bound_exploration.py [n_records]
"""

import sys

from repro import (
    MiningConfig,
    PosteriorTable,
    PrivacyMaxEnt,
    TopKBound,
    anatomize,
    estimation_accuracy,
    load_adult_synthetic,
    mine_association_rules,
)
from repro.utils.tabulate import render_table


def main(n_records: int = 1200) -> None:
    table = load_adult_synthetic(n_records=n_records, seed=20080609)
    published = anatomize(table, l=5, seed=3)
    rules = mine_association_rules(
        table, MiningConfig(min_support_count=3, max_antecedent=2)
    )
    truth = PosteriorTable.from_table(table)
    print(
        f"{n_records} records -> {published.n_buckets} buckets; rule "
        f"universe: {rules.n_positive} positive / {rules.n_negative} negative\n"
    )

    rows = []
    for k in (0, 40, 160, 640):
        for name, bound in (
            ("positive only", TopKBound(k, 0)),
            ("negative only", TopKBound(0, k)),
            ("mixed", TopKBound(k // 2, k - k // 2)),
        ):
            if k == 0 and name != "mixed":
                continue  # all three coincide at K=0
            engine = PrivacyMaxEnt(published, knowledge=bound.statements(rules))
            accuracy = estimation_accuracy(truth, engine.posterior())
            rows.append([k, name if k else "(no knowledge)", accuracy])
    print(
        render_table(
            ["K", "bound family", "estimation accuracy (bits)"],
            rows,
            title="The Top-(K+, K-) decision surface",
        )
    )

    print("\nVague variant: the same mixed K=160 bound with growing epsilon")
    rows = []
    for epsilon in (0.0, 0.02, 0.1):
        bound = TopKBound(80, 80, epsilon=epsilon)
        engine = PrivacyMaxEnt(published, knowledge=bound.statements(rules))
        accuracy = estimation_accuracy(truth, engine.posterior())
        rows.append([bound.describe(), accuracy])
    print(render_table(["bound", "estimation accuracy (bits)"], rows))
    print(
        "\nLarger epsilon = vaguer adversary = higher accuracy value "
        "(estimate farther from truth) — vagueness buys privacy back."
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 1200)
