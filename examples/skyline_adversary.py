"""A privacy-skyline adversary (Chen et al.), run through Privacy-MaxEnt.

The paper's Related Work credits Chen, LeFevre & Ramakrishnan's (l, k, m)
triple as the most expressive *deterministic* bound before Privacy-MaxEnt.
This example compiles escalating skyline adversaries into Section 6
individual statements and watches a single target's posterior sharpen:

- (0,0,0): nothing beyond the release,
- (0,2,0): two sensitive values the target provably lacks,
- (3,2,0): plus three other patients' exact diagnoses,
- (3,2,1): plus one known peer sharing the target's diagnosis.

Run:  python examples/skyline_adversary.py
"""

from repro import PrivacyMaxEnt, PseudonymTable
from repro.data.paper_example import paper_published, paper_table
from repro.knowledge.skyline import SkylineBound
from repro.maxent.solver import MaxEntConfig


def main() -> None:
    table = paper_table()
    published = paper_published()
    target_row = 2  # Cathy: (female, college), Breast Cancer
    truth = table.sa_labels()[target_row]
    print(f"Target: row {target_row} "
          f"{table.qi_tuple(target_row)} — true value {truth!r}\n")

    print(f"{'bound':>18}  {'P*(truth | target)':>20}  statements")
    for l, k, m in ((0, 0, 0), (0, 2, 0), (3, 2, 0), (3, 2, 1)):
        bound = SkylineBound(l_others=l, k_negations=k, m_peers=m)
        pseudonyms = PseudonymTable(published)
        target, statements = bound.instantiate(
            table, pseudonyms, target_row=target_row, seed=42
        )
        engine = PrivacyMaxEnt(
            published,
            knowledge=statements,
            individuals=True,
            config=MaxEntConfig(raise_on_infeasible=False),
        )
        posterior = engine.person_posterior()[target.name]
        confidence = posterior.get(truth, 0.0)
        print(f"{bound.describe():>18}  {confidence:20.4f}  {len(statements)}")

    print(
        "\nEvery (l, k, m) bound is just a bundle of linear constraints — "
        "the uniform treatment that is the paper's thesis."
    )


if __name__ == "__main__":
    main()
