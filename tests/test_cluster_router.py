"""Rendezvous routing: determinism, balance, minimal reassignment."""

from __future__ import annotations

import hashlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.router import ClusterError, ShardRouter


def _keys(n: int) -> list[str]:
    return [hashlib.sha256(str(i).encode()).hexdigest() for i in range(n)]


class TestShardRouter:
    def test_owner_is_deterministic(self):
        router = ShardRouter(["w1", "w2", "w3"])
        again = ShardRouter(["w3", "w1", "w2"])  # registration order differs
        for key in _keys(50):
            assert router.owner(key) == again.owner(key)

    def test_every_worker_gets_a_share(self):
        router = ShardRouter([f"w{i}" for i in range(4)])
        assignment = router.partition(_keys(400))
        assert set(assignment) == set(router.worker_ids)
        # Rendezvous balance is binomial: each worker should land within
        # a loose band around 100 of 400.
        for indices in assignment.values():
            assert 40 <= len(indices) <= 180

    def test_partition_covers_all_positions(self):
        router = ShardRouter(["a", "b"])
        keys = _keys(31)
        assignment = router.partition(keys)
        positions = sorted(p for block in assignment.values() for p in block)
        assert positions == list(range(31))

    def test_removal_moves_only_the_dead_workers_keys(self):
        """The failover property: survivors keep every key they owned."""
        workers = [f"w{i}" for i in range(5)]
        router = ShardRouter(workers)
        keys = _keys(300)
        before = {key: router.owner(key) for key in keys}
        router.remove("w2")
        for key in keys:
            after = router.owner(key)
            if before[key] != "w2":
                assert after == before[key]
            else:
                assert after != "w2"

    def test_exclude_matches_removal(self):
        router = ShardRouter(["a", "b", "c"])
        removed = ShardRouter(["a", "c"])
        for key in _keys(40):
            assert router.owner(key, exclude={"b"}) == removed.owner(key)

    def test_ranked_is_the_failover_order(self):
        router = ShardRouter(["a", "b", "c"])
        for key in _keys(20):
            ranked = router.ranked(key)
            assert ranked[0] == router.owner(key)
            assert router.owner(key, exclude={ranked[0]}) == ranked[1]

    def test_no_candidates_raises(self):
        router = ShardRouter(["only"])
        with pytest.raises(ClusterError, match="no eligible worker"):
            router.owner("key", exclude={"only"})
        with pytest.raises(ClusterError):
            ShardRouter([]).owner("key")

    def test_add_and_remove_are_idempotent(self):
        router = ShardRouter(["a"])
        router.add("a")
        router.add("b")
        assert router.worker_ids == ("a", "b")
        router.remove("missing")
        router.remove("b")
        router.remove("b")
        assert router.worker_ids == ("a",)

    def test_owners_are_the_ranked_prefix(self):
        router = ShardRouter(["a", "b", "c", "d"])
        for key in _keys(25):
            ranked = router.ranked(key)
            assert router.owners(key, k=2) == ranked[:2]
            assert router.owners(key, k=10) == ranked  # fewer than k is fine
            assert router.owners(key, k=1) == [router.owner(key)]

    def test_owners_exclude_and_bad_k(self):
        router = ShardRouter(["a", "b", "c"])
        for key in _keys(10):
            survivors = router.owners(key, k=2, exclude={"a"})
            assert "a" not in survivors
        with pytest.raises(ClusterError, match="replica count"):
            router.owners("key", k=0)
        with pytest.raises(ClusterError, match="no eligible"):
            router.owners("key", exclude={"a", "b", "c"})


# -- membership-churn properties (hypothesis) --------------------------------
#
# The elastic cluster leans on rendezvous hashing's minimal-reassignment
# property in *both* directions now: removals (failover) and additions
# (joins trigger incremental rebalancing that must touch only the keys
# whose top-K owner set actually changed).  Property-test both, plus the
# replica-set laws promotion relies on.

worker_sets = st.lists(
    st.text(
        alphabet=st.characters(min_codepoint=33, max_codepoint=126),
        min_size=1,
        max_size=12,
    ),
    min_size=1,
    max_size=8,
    unique=True,
)
key_sets = st.lists(st.text(min_size=1, max_size=24), min_size=1, max_size=40)


class TestChurnProperties:
    @settings(max_examples=75, deadline=None)
    @given(workers=worker_sets, keys=key_sets, data=st.data())
    def test_removing_one_worker_moves_only_its_keys(
        self, workers, keys, data
    ):
        router = ShardRouter(workers)
        before = {key: router.owner(key) for key in keys}
        victim = data.draw(st.sampled_from(workers), label="victim")
        router.remove(victim)
        for key in keys:
            if not router.worker_ids:
                break
            after = router.owner(key)
            if before[key] == victim:
                assert after != victim
            else:
                assert after == before[key]

    @settings(max_examples=75, deadline=None)
    @given(workers=worker_sets, keys=key_sets, joiner=st.text(min_size=1, max_size=12))
    def test_adding_one_worker_steals_only_for_itself(
        self, workers, keys, joiner
    ):
        """The join-rebalance property: after a join, every key either
        kept its owner or moved *to the joiner* — no third-party shuffle."""
        router = ShardRouter(workers)
        before = {key: router.owner(key) for key in keys}
        router.add(joiner)
        for key in keys:
            after = router.owner(key)
            assert after == before[key] or after == joiner

    @settings(max_examples=75, deadline=None)
    @given(workers=worker_sets, keys=key_sets, joiner=st.text(min_size=1, max_size=12))
    def test_join_changes_topk_only_by_inserting_the_joiner(
        self, workers, keys, joiner
    ):
        """Replicated ownership under churn: a join may insert the
        joiner into a key's top-K set (displacing the last element) but
        never reorders the survivors — so the incremental rebalance
        registers at most the joiner per key."""
        router = ShardRouter(workers)
        before = {key: router.owners(key, k=2) for key in keys}
        router.add(joiner)
        fresh = joiner not in workers
        for key in keys:
            after = router.owners(key, k=2)
            if after == before[key]:
                continue
            assert fresh and joiner in after
            survivors = [w for w in after if w != joiner]
            assert survivors == before[key][: len(survivors)]

    @settings(max_examples=75, deadline=None)
    @given(workers=worker_sets, keys=key_sets)
    def test_promotion_law_owner_death_falls_to_its_replica(
        self, workers, keys
    ):
        """The zero-round-trip promotion contract: when a key's primary
        dies, the new primary is exactly the next surviving replica."""
        router = ShardRouter(workers)
        for key in keys:
            replicas = router.owners(key, k=2)
            primary = replicas[0]
            if len(router.worker_ids) == 1:
                with pytest.raises(ClusterError):
                    router.owner(key, exclude={primary})
                continue
            successor = router.owner(key, exclude={primary})
            if len(replicas) > 1:
                assert successor == replicas[1]

    @settings(max_examples=50, deadline=None)
    @given(workers=worker_sets, keys=key_sets)
    def test_owners_deterministic_across_registration_order(
        self, workers, keys
    ):
        router = ShardRouter(workers)
        shuffled = ShardRouter(list(reversed(workers)))
        for key in keys:
            assert router.owners(key, k=3) == shuffled.owners(key, k=3)
