"""Rendezvous routing: determinism, balance, minimal reassignment."""

from __future__ import annotations

import hashlib

import pytest

from repro.cluster.router import ClusterError, ShardRouter


def _keys(n: int) -> list[str]:
    return [hashlib.sha256(str(i).encode()).hexdigest() for i in range(n)]


class TestShardRouter:
    def test_owner_is_deterministic(self):
        router = ShardRouter(["w1", "w2", "w3"])
        again = ShardRouter(["w3", "w1", "w2"])  # registration order differs
        for key in _keys(50):
            assert router.owner(key) == again.owner(key)

    def test_every_worker_gets_a_share(self):
        router = ShardRouter([f"w{i}" for i in range(4)])
        assignment = router.partition(_keys(400))
        assert set(assignment) == set(router.worker_ids)
        # Rendezvous balance is binomial: each worker should land within
        # a loose band around 100 of 400.
        for indices in assignment.values():
            assert 40 <= len(indices) <= 180

    def test_partition_covers_all_positions(self):
        router = ShardRouter(["a", "b"])
        keys = _keys(31)
        assignment = router.partition(keys)
        positions = sorted(p for block in assignment.values() for p in block)
        assert positions == list(range(31))

    def test_removal_moves_only_the_dead_workers_keys(self):
        """The failover property: survivors keep every key they owned."""
        workers = [f"w{i}" for i in range(5)]
        router = ShardRouter(workers)
        keys = _keys(300)
        before = {key: router.owner(key) for key in keys}
        router.remove("w2")
        for key in keys:
            after = router.owner(key)
            if before[key] != "w2":
                assert after == before[key]
            else:
                assert after != "w2"

    def test_exclude_matches_removal(self):
        router = ShardRouter(["a", "b", "c"])
        removed = ShardRouter(["a", "c"])
        for key in _keys(40):
            assert router.owner(key, exclude={"b"}) == removed.owner(key)

    def test_ranked_is_the_failover_order(self):
        router = ShardRouter(["a", "b", "c"])
        for key in _keys(20):
            ranked = router.ranked(key)
            assert ranked[0] == router.owner(key)
            assert router.owner(key, exclude={ranked[0]}) == ranked[1]

    def test_no_candidates_raises(self):
        router = ShardRouter(["only"])
        with pytest.raises(ClusterError, match="no eligible worker"):
            router.owner("key", exclude={"only"})
        with pytest.raises(ClusterError):
            ShardRouter([]).owner("key")

    def test_add_and_remove_are_idempotent(self):
        router = ShardRouter(["a"])
        router.add("a")
        router.add("b")
        assert router.worker_ids == ("a", "b")
        router.remove("missing")
        router.remove("b")
        router.remove("b")
        assert router.worker_ids == ("a",)
