"""Unit tests for the generic synthetic generator."""

import numpy as np
import pytest

from repro.data.synthetic import SyntheticConfig, generate_synthetic
from repro.errors import ReproError


class TestConfigValidation:
    def test_defaults_valid(self):
        config = SyntheticConfig(n_records=100)
        assert config.n_sa_values == 8

    @pytest.mark.parametrize(
        "overrides",
        [
            {"n_records": 0},
            {"qi_domain_sizes": ()},
            {"qi_domain_sizes": (1, 4)},
            {"n_sa_values": 1},
            {"correlation": 1.5},
            {"n_influencers": 0},
            {"n_influencers": 9},
        ],
    )
    def test_invalid_configs_rejected(self, overrides):
        kwargs = dict(n_records=100)
        kwargs.update(overrides)
        with pytest.raises(ReproError):
            SyntheticConfig(**kwargs)


class TestGeneration:
    def test_shape_and_schema(self):
        config = SyntheticConfig(
            n_records=200, qi_domain_sizes=(3, 4, 2), n_sa_values=5, seed=1
        )
        table = generate_synthetic(config)
        assert table.n_rows == 200
        assert len(table.schema.qi_attributes) == 3
        assert table.schema.sa.size == 5

    def test_deterministic(self):
        config = SyntheticConfig(n_records=150, seed=9)
        a = generate_synthetic(config)
        b = generate_synthetic(config)
        for name in a.schema.attribute_names:
            assert np.array_equal(a.column(name), b.column(name))

    def test_correlation_zero_is_nearly_independent(self):
        # With correlation 0, the SA distribution conditioned on the first
        # QI value should be close to the global one.
        config = SyntheticConfig(
            n_records=20000,
            qi_domain_sizes=(2, 2),
            n_sa_values=4,
            correlation=0.0,
            seed=3,
        )
        table = generate_synthetic(config)
        q0 = table.column("q0")
        sa = table.column("sa")
        global_dist = np.bincount(sa, minlength=4) / len(sa)
        cond = np.bincount(sa[q0 == 0], minlength=4) / (q0 == 0).sum()
        assert np.abs(cond - global_dist).max() < 0.03

    def test_correlation_one_is_concentrated(self):
        # With correlation 1, each influencing configuration should have a
        # dominant SA value (dirichlet(0.25) draws are spiky).
        config = SyntheticConfig(
            n_records=20000,
            qi_domain_sizes=(2, 2),
            n_sa_values=6,
            correlation=1.0,
            n_influencers=2,
            seed=4,
        )
        table = generate_synthetic(config)
        q0, q1, sa = table.column("q0"), table.column("q1"), table.column("sa")
        key = q0 * 2 + q1
        top_shares = []
        for value in range(4):
            rows = sa[key == value]
            top_shares.append(np.bincount(rows, minlength=6).max() / len(rows))
        assert max(top_shares) > 0.5

    def test_skew_zero_near_uniform_marginal(self):
        config = SyntheticConfig(
            n_records=30000, qi_domain_sizes=(5,), skew=0.0, seed=5
        )
        table = generate_synthetic(config)
        counts = np.bincount(table.column("q0"), minlength=5) / 30000
        assert np.abs(counts - 0.2).max() < 0.02
