"""Tests of the Section 5 invariant theory: soundness, completeness,
conciseness — against brute-force assignment enumeration."""

import numpy as np
import pytest

from repro.core.invariants import (
    bucket_constraint_matrix,
    build_qi_invariants,
    build_sa_invariants,
    build_zero_invariants,
    is_invariant,
)
from repro.data.paper_example import (
    Q1,
    Q2,
    Q3,
    S1,
    S2,
    S3,
    paper_published,
)
from repro.knowledge.expressions import ProbabilityExpression

from tests.helpers import brute_force_is_invariant, random_published


@pytest.fixture(scope="module")
def published():
    return paper_published()


class TestSoundness:
    """Theorem 1: every base invariant holds under every assignment."""

    def test_qi_invariants_hold_under_all_assignments(self, published):
        for equation in build_qi_invariants(published):
            assert brute_force_is_invariant(equation.expression, published)

    def test_sa_invariants_hold_under_all_assignments(self, published):
        for equation in build_sa_invariants(published):
            assert brute_force_is_invariant(equation.expression, published)

    def test_invariant_constants_correct(self, published):
        # Check the worked examples of Section 5.2.
        qi = build_qi_invariants(published)
        # P(q1,s1,1)+P(q1,s2,1)+P(q1,s3,1) = P(q1, 1) = 2/10.
        match = [
            e
            for e in qi
            if e.expression.coefficient(
                next(iter(e.expression.terms))
            )
            and {t.qi for t in e.expression.terms} == {Q1}
            and {t.bucket for t in e.expression.terms} == {0}
        ]
        assert len(match) == 1
        assert match[0].constant == pytest.approx(0.2)

    def test_sa_invariant_constant_example(self, published):
        # P(q1,s4,2)+P(q3,s4,2)+P(q4,s4,2) = P(s4, 2) = 1/10.
        sa = build_sa_invariants(published)
        match = [
            e
            for e in sa
            if {t.sa for t in e.expression.terms} == {"HIV"}
            and {t.bucket for t in e.expression.terms} == {1}
        ]
        assert len(match) == 1
        assert match[0].constant == pytest.approx(0.1)

    def test_zero_invariants_enumerated(self, published):
        zeros = build_zero_invariants(published)
        # All (q, s, b) over the 6 x 5 published universe minus valid ones:
        # 3 buckets x 30 combos - 27 valid = 63.
        assert len(zeros) == 63
        assert all(e.constant == 0.0 for e in zeros)


class TestCompleteness:
    """Theorem 2: is_invariant accepts exactly the invariant expressions."""

    def test_single_term_not_invariant(self, published):
        expr = ProbabilityExpression.term(Q1, S1, 0)
        assert not is_invariant(expr, published)
        assert not brute_force_is_invariant(expr, published)

    def test_base_invariants_accepted(self, published):
        for equation in build_qi_invariants(published):
            assert is_invariant(equation.expression, published)
        for equation in build_sa_invariants(published):
            assert is_invariant(equation.expression, published)

    def test_linear_combination_accepted(self, published):
        qi = build_qi_invariants(published)
        combo = qi[0].expression + 2.5 * qi[1].expression
        assert is_invariant(combo, published)

    def test_cross_bucket_sum_accepted(self, published):
        # Lemma 1: sums of per-bucket invariants are invariants.
        qi = build_qi_invariants(published)
        sa = build_sa_invariants(published)
        combo = qi[0].expression - 0.5 * sa[-1].expression
        assert is_invariant(combo, published)

    def test_zero_invariant_terms_ignored(self, published):
        # Adding a Zero-invariant term does not break invariance.
        qi = build_qi_invariants(published)
        expr = qi[0].expression + ProbabilityExpression.term(Q1, S2, 2)
        assert is_invariant(expr, published)

    def test_figure3_f_expression_rejected(self, published):
        # The running counterexample: F = P(q1, s1, 1) + a mix that is not
        # in the invariant row space.
        expr = (
            ProbabilityExpression.term(Q1, S1, 0)
            + ProbabilityExpression.term(Q2, S2, 0)
            - ProbabilityExpression.term(Q3, S3, 0)
        )
        assert is_invariant(expr, published) == brute_force_is_invariant(
            expr, published
        )

    def test_agrees_with_brute_force_on_random_expressions(self):
        rng = np.random.default_rng(7)
        _table, published, _ids = random_published(
            rng, n_buckets=2, max_bucket_size=3
        )
        # Build random expressions over valid triples and compare deciders.
        triples = []
        for bucket in published.buckets:
            for q in bucket.distinct_qi():
                for s in bucket.distinct_sa():
                    triples.append((q, s, bucket.index))
        for _ in range(30):
            expr = ProbabilityExpression.zero()
            for q, s, b in triples:
                coefficient = float(rng.integers(-1, 2))
                if coefficient:
                    expr = expr + ProbabilityExpression.term(q, s, b, coefficient)
            if expr.is_zero():
                continue
            assert is_invariant(expr, published) == brute_force_is_invariant(
                expr, published
            )


class TestConciseness:
    """Theorem 3: rank of the per-bucket invariant matrix is g + h - 1."""

    def test_paper_buckets(self, published):
        for bucket in published.buckets:
            matrix, _terms = bucket_constraint_matrix(bucket)
            g = len(bucket.distinct_qi())
            h = len(bucket.distinct_sa())
            assert np.linalg.matrix_rank(matrix) == g + h - 1

    def test_figure3_dependency(self, published):
        # (C1 + C2 + C3) - (C4 + C5 + C6) = 0 for bucket 1 (g = h = 3).
        matrix, _terms = bucket_constraint_matrix(published.bucket(0))
        qi_sum = matrix[:3].sum(axis=0)
        sa_sum = matrix[3:].sum(axis=0)
        assert np.allclose(qi_sum, sa_sum)

    def test_removing_any_row_leaves_independent_set(self, published):
        matrix, _terms = bucket_constraint_matrix(published.bucket(0))
        full_rank = np.linalg.matrix_rank(matrix)
        for drop in range(matrix.shape[0]):
            reduced = np.delete(matrix, drop, axis=0)
            assert np.linalg.matrix_rank(reduced) == full_rank
            # And the reduced set is linearly independent (minimal).
            assert np.linalg.matrix_rank(reduced) == reduced.shape[0]

    def test_random_buckets(self):
        rng = np.random.default_rng(3)
        for _ in range(10):
            _table, published, _ids = random_published(
                rng, n_buckets=1, max_bucket_size=4
            )
            bucket = published.bucket(0)
            matrix, _terms = bucket_constraint_matrix(bucket)
            g = len(bucket.distinct_qi())
            h = len(bucket.distinct_sa())
            assert np.linalg.matrix_rank(matrix) == g + h - 1
