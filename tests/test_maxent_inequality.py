"""Tests for vague-knowledge (inequality) solving — the Section 4.5 extension."""

import numpy as np
import pytest

from repro.data.paper_example import Q1, S2, S3, paper_published, paper_table
from repro.core.quantifier import PosteriorTable
from repro.core.privacy_maxent import PrivacyMaxEnt
from repro.knowledge.compiler import compile_statements
from repro.knowledge.statements import (
    Comparison,
    ConditionalInterval,
    ConditionalProbability,
)
from repro.maxent.constraints import data_constraints
from repro.maxent.dual import build_dual
from repro.maxent.indexing import GroupVariableSpace
from repro.maxent.inequality import classify_inequalities, verify_kkt
from repro.maxent.lbfgs import solve_dual_lbfgs
from repro.maxent.primal import solve_primal


@pytest.fixture(scope="module")
def space():
    return GroupVariableSpace(paper_published())


def interval_system(space, low, high):
    system = data_constraints(space)
    system.extend(
        compile_statements(
            [
                ConditionalInterval(
                    given={"gender": "male", "degree": "college"},
                    sa_value=S3,
                    low=low,
                    high=high,
                )
            ],
            space,
        )
    )
    return system


class TestIntervalSolving:
    def test_non_binding_interval_matches_unconstrained(self, space):
        # The unconstrained posterior P*(s3 | q1) is 5/18 = 0.2778; a wide
        # interval around it must not move the solution.
        wide = interval_system(space, 0.05, 0.95)
        solution = solve_dual_lbfgs(build_dual(wide, 1.0), tol=1e-6)
        free = solve_dual_lbfgs(
            build_dual(data_constraints(space), 1.0), tol=1e-6
        )
        assert solution.converged
        assert np.abs(solution.p - free.p).max() < 1e-6

    def test_binding_lower_bound_lands_on_boundary(self, space):
        # Force P(s3 | q1) >= 0.5, well above the unconstrained 0.2778.
        system = interval_system(space, 0.5, 1.0)
        solution = solve_dual_lbfgs(build_dual(system, 1.0), tol=1e-9)
        assert solution.converged
        indices = space.vars_matching(
            {"gender": "male", "degree": "college"}, S3
        )
        achieved = solution.p[indices].sum() / 0.3  # P(q1) = 3/10
        assert achieved == pytest.approx(0.5, abs=1e-6)

    def test_binding_upper_bound(self, space):
        system = interval_system(space, 0.0, 0.1)
        solution = solve_dual_lbfgs(build_dual(system, 1.0), tol=1e-9)
        indices = space.vars_matching(
            {"gender": "male", "degree": "college"}, S3
        )
        achieved = solution.p[indices].sum() / 0.3
        assert achieved == pytest.approx(0.1, abs=1e-6)

    def test_agrees_with_primal_oracle(self, space):
        system = interval_system(space, 0.5, 1.0)
        dual = solve_dual_lbfgs(build_dual(system, 1.0), tol=1e-10)
        primal = solve_primal(system, 1.0)
        assert np.abs(dual.p - primal.p).max() < 1e-4

    def test_interval_tighter_than_equality_never_beats_it(self, space):
        """Entropy ordering: equality <= interval <= unconstrained."""
        from repro.utils.probability import entropy

        free = solve_dual_lbfgs(build_dual(data_constraints(space), 1.0))
        narrow = solve_dual_lbfgs(build_dual(interval_system(space, 0.45, 0.55), 1.0))
        exact_sys = data_constraints(space)
        exact_sys.extend(
            compile_statements(
                [
                    ConditionalProbability(
                        given={"gender": "male", "degree": "college"},
                        sa_value=S3,
                        probability=0.5,
                    )
                ],
                space,
            )
        )
        exact = solve_dual_lbfgs(build_dual(exact_sys, 1.0))
        assert entropy(exact.p) <= entropy(narrow.p) + 1e-9
        assert entropy(narrow.p) <= entropy(free.p) + 1e-9


class TestComparisons:
    def test_comparison_enforced(self, space):
        system = data_constraints(space)
        system.extend(
            compile_statements(
                [
                    Comparison(
                        given={"gender": "male", "degree": "college"},
                        more_likely=S3,
                        less_likely=S2,
                        margin=0.0,
                    )
                ],
                space,
            )
        )
        solution = solve_dual_lbfgs(build_dual(system, 1.0), tol=1e-9)
        more = solution.p[
            space.vars_matching({"gender": "male", "degree": "college"}, S3)
        ].sum()
        less = solution.p[
            space.vars_matching({"gender": "male", "degree": "college"}, S2)
        ].sum()
        assert more >= less - 1e-8


class TestDiagnostics:
    def test_classify_active_vs_slack(self, space):
        engine = PrivacyMaxEnt(
            paper_published(),
            knowledge=[
                ConditionalInterval(
                    given={"gender": "male", "degree": "college"},
                    sa_value=S3,
                    low=0.5,
                    high=1.0,
                )
            ],
        )
        report = classify_inequalities(engine.system, engine.solve().p)
        # The lower bound binds (0.5 > unconstrained 0.2778); the upper
        # bound (1.0) stays slack.
        states = {entry.row.label: entry.is_active for entry in report}
        lower = [v for k, v in states.items() if "lower" in k]
        upper = [v for k, v in states.items() if "upper" in k]
        assert lower == [True]
        assert upper == [False]

    def test_verify_kkt_clean_solution(self, space):
        system = interval_system(space, 0.5, 1.0)
        solution = solve_dual_lbfgs(build_dual(system, 1.0), tol=1e-9)
        ok, violations = verify_kkt(system, solution.p, tolerance=1e-6)
        assert ok, violations

    def test_verify_kkt_flags_violations(self, space):
        system = interval_system(space, 0.5, 1.0)
        bad = np.full(space.n_vars, 1.0 / space.n_vars)
        ok, violations = verify_kkt(system, bad, tolerance=1e-9)
        assert not ok
        assert violations


class TestEndToEndVagueness:
    def test_epsilon_zero_matches_equality(self):
        published = paper_published()
        truth = PosteriorTable.from_table(paper_table())
        exact = PrivacyMaxEnt(
            published,
            knowledge=[
                ConditionalProbability(
                    given={"gender": "male", "degree": "college"},
                    sa_value=S3,
                    probability=1 / 3,
                )
            ],
        ).posterior()
        degenerate = PrivacyMaxEnt(
            published,
            knowledge=[
                ConditionalInterval(
                    given={"gender": "male", "degree": "college"},
                    sa_value=S3,
                    low=1 / 3,
                    high=1 / 3,
                )
            ],
        ).posterior()
        assert exact.prob(Q1, S3) == pytest.approx(
            degenerate.prob(Q1, S3), abs=1e-6
        )
