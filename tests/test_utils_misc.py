"""Unit tests for union-find, tabulate, timer, rng and validation helpers."""

import time

import numpy as np
import pytest

from repro.errors import KnowledgeError, ReproError
from repro.utils.rng import make_rng, spawn
from repro.utils.tabulate import render_table
from repro.utils.timer import Timer
from repro.utils.unionfind import UnionFind
from repro.utils.validation import (
    check_fraction,
    check_non_negative_int,
    check_positive_int,
    check_probability,
)


class TestUnionFind:
    def test_initially_disjoint(self):
        uf = UnionFind(4)
        assert not uf.connected(0, 1)
        assert len(uf.components()) == 4

    def test_union_connects(self):
        uf = UnionFind(4)
        uf.union(0, 1)
        uf.union(1, 2)
        assert uf.connected(0, 2)
        assert not uf.connected(0, 3)

    def test_union_returns_whether_merged(self):
        uf = UnionFind(3)
        assert uf.union(0, 1) is True
        assert uf.union(0, 1) is False

    def test_components_partition(self):
        uf = UnionFind(6)
        uf.union(0, 3)
        uf.union(1, 4)
        components = uf.components()
        flattened = sorted(x for group in components for x in group)
        assert flattened == list(range(6))
        assert sorted(map(len, components)) == [1, 1, 2, 2]

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            UnionFind(-1)

    def test_transitive_chain(self):
        uf = UnionFind(100)
        for i in range(99):
            uf.union(i, i + 1)
        assert uf.connected(0, 99)
        assert len(uf.components()) == 1


class TestRenderTable:
    def test_contains_headers_and_cells(self):
        text = render_table(["a", "b"], [[1, 2.5], ["x", 0.0001]])
        assert "a" in text and "b" in text
        assert "1" in text
        assert "2.5000" in text

    def test_title_rendered(self):
        text = render_table(["c"], [[1]], title="My Table")
        assert text.startswith("My Table")

    def test_scientific_for_extremes(self):
        text = render_table(["v"], [[1e-9]])
        assert "e-09" in text

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])

    def test_columns_aligned(self):
        text = render_table(["col", "other"], [["x", "y"], ["longer", "z"]])
        lines = text.splitlines()
        # 'y' and 'z' should start at the same offset.
        assert lines[2].index("y") == lines[3].index("z")


class TestTimer:
    def test_context_manager_measures(self):
        with Timer() as t:
            time.sleep(0.01)
        assert t.seconds >= 0.005

    def test_start_stop(self):
        t = Timer()
        t.start()
        time.sleep(0.005)
        elapsed = t.stop()
        assert elapsed > 0
        assert t.seconds == elapsed

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Timer().stop()


class TestRng:
    def test_same_seed_same_stream(self):
        a = make_rng(42).random(5)
        b = make_rng(42).random(5)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(1)
        assert make_rng(gen) is gen

    def test_spawn_independent_reproducible(self):
        children_a = spawn(make_rng(7), 3)
        children_b = spawn(make_rng(7), 3)
        for x, y in zip(children_a, children_b):
            assert np.array_equal(x.random(4), y.random(4))


class TestValidation:
    def test_probability_bounds(self):
        assert check_probability(0.0) == 0.0
        assert check_probability(1.0) == 1.0
        with pytest.raises(KnowledgeError):
            check_probability(1.5)
        with pytest.raises(KnowledgeError):
            check_probability(-0.1)
        with pytest.raises(KnowledgeError):
            check_probability("not a number")

    def test_positive_int(self):
        assert check_positive_int(3) == 3
        with pytest.raises(ReproError):
            check_positive_int(0)
        with pytest.raises(ReproError):
            check_positive_int(True)  # bools are not counts
        with pytest.raises(ReproError):
            check_positive_int(2.0)

    def test_non_negative_int(self):
        assert check_non_negative_int(0) == 0
        with pytest.raises(ReproError):
            check_non_negative_int(-1)

    def test_fraction(self):
        assert check_fraction(1.0) == 1.0
        with pytest.raises(ReproError):
            check_fraction(0.0)
        with pytest.raises(ReproError):
            check_fraction(1.2)
