"""Unit tests for repro.data.table."""

import numpy as np
import pytest

from repro.data.schema import Attribute, Schema
from repro.data.table import Table
from repro.errors import DomainError, SchemaError


@pytest.fixture
def schema():
    return Schema(
        attributes=(
            Attribute("gender", ("male", "female")),
            Attribute("degree", ("college", "hs")),
            Attribute("disease", ("flu", "hiv", "cancer")),
        ),
        qi_attributes=("gender", "degree"),
        sa_attribute="disease",
    )


@pytest.fixture
def table(schema):
    return Table.from_records(
        schema,
        [
            {"gender": "male", "degree": "college", "disease": "flu"},
            {"gender": "male", "degree": "college", "disease": "hiv"},
            {"gender": "female", "degree": "hs", "disease": "cancer"},
        ],
    )


class TestConstruction:
    def test_from_records_roundtrip(self, table):
        assert table.n_rows == 3
        assert table.record(0) == {
            "gender": "male", "degree": "college", "disease": "flu",
        }

    def test_from_codes_validates_range(self, schema):
        with pytest.raises(DomainError):
            Table.from_codes(
                schema,
                {
                    "gender": np.array([5]),
                    "degree": np.array([0]),
                    "disease": np.array([0]),
                },
            )

    def test_missing_column_rejected(self, schema):
        with pytest.raises(SchemaError):
            Table.from_codes(schema, {"gender": np.array([0])})

    def test_extra_column_rejected(self, schema):
        with pytest.raises(SchemaError):
            Table.from_codes(
                schema,
                {
                    "gender": np.array([0]),
                    "degree": np.array([0]),
                    "disease": np.array([0]),
                    "bonus": np.array([0]),
                },
            )

    def test_unequal_lengths_rejected(self, schema):
        with pytest.raises(SchemaError):
            Table.from_codes(
                schema,
                {
                    "gender": np.array([0, 1]),
                    "degree": np.array([0]),
                    "disease": np.array([0]),
                },
            )

    def test_record_missing_attribute_rejected(self, schema):
        with pytest.raises(SchemaError):
            Table.from_records(schema, [{"gender": "male"}])

    def test_unknown_label_rejected(self, schema):
        with pytest.raises(DomainError):
            Table.from_records(
                schema,
                [{"gender": "male", "degree": "college", "disease": "plague"}],
            )

    def test_columns_read_only(self, table):
        with pytest.raises(ValueError):
            table.column("gender")[0] = 1


class TestViews:
    def test_qi_tuples(self, table):
        assert table.qi_tuples() == [
            ("male", "college"),
            ("male", "college"),
            ("female", "hs"),
        ]

    def test_qi_tuple_single(self, table):
        assert table.qi_tuple(2) == ("female", "hs")

    def test_sa_labels(self, table):
        assert table.sa_labels() == ["flu", "hiv", "cancer"]

    def test_qi_codes_shape(self, table):
        assert table.qi_codes().shape == (3, 2)

    def test_record_out_of_range(self, table):
        with pytest.raises(IndexError):
            table.record(99)

    def test_len(self, table):
        assert len(table) == 3


class TestStatistics:
    def test_value_counts(self, table):
        assert table.value_counts("gender") == {"male": 2, "female": 1}

    def test_qi_counts(self, table):
        counts = table.qi_counts()
        assert counts[("male", "college")] == 2
        assert counts[("female", "hs")] == 1

    def test_joint_counts(self, table):
        joint = table.joint_counts()
        assert joint[(("male", "college"), "flu")] == 1
        assert joint[(("male", "college"), "hiv")] == 1


class TestTransforms:
    def test_select_rows(self, table):
        subset = table.select([2, 0])
        assert subset.n_rows == 2
        assert subset.record(0)["disease"] == "cancer"
        assert subset.record(1)["disease"] == "flu"

    def test_without_ids_drops_column(self):
        schema = Schema(
            attributes=(
                Attribute("ssn", ("1", "2")),
                Attribute("gender", ("male", "female")),
                Attribute("disease", ("flu", "hiv")),
            ),
            qi_attributes=("gender",),
            sa_attribute="disease",
            id_attributes=("ssn",),
        )
        table = Table.from_records(
            schema, [{"ssn": "1", "gender": "male", "disease": "flu"}]
        )
        stripped = table.without_ids()
        assert "ssn" not in stripped.schema.attribute_names
        assert stripped.n_rows == 1
