"""Property-based tests for the anonymization and mining substrates."""

from __future__ import annotations

from collections import Counter

import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.anonymize.anatomy import anatomize
from repro.anonymize.diversity import auto_exempt, check_eligibility, table_is_diverse
from repro.data.schema import Attribute, Schema
from repro.data.table import Table
from repro.errors import DiversityError
from repro.knowledge.mining import MiningConfig, mine_association_rules

COMMON = dict(
    deadline=None, suppress_health_check=[HealthCheck.too_slow], max_examples=40
)


@st.composite
def tables(draw):
    """Random small categorical tables (2 QI attributes, 1 SA)."""
    n_q0 = draw(st.integers(2, 3))
    n_q1 = draw(st.integers(2, 3))
    n_sa = draw(st.integers(2, 5))
    n_rows = draw(st.integers(4, 24))
    schema = Schema(
        attributes=(
            Attribute("q0", tuple(f"a{i}" for i in range(n_q0))),
            Attribute("q1", tuple(f"b{i}" for i in range(n_q1))),
            Attribute("s", tuple(f"s{i}" for i in range(n_sa))),
        ),
        qi_attributes=("q0", "q1"),
        sa_attribute="s",
    )
    records = [
        {
            "q0": f"a{draw(st.integers(0, n_q0 - 1))}",
            "q1": f"b{draw(st.integers(0, n_q1 - 1))}",
            "s": f"s{draw(st.integers(0, n_sa - 1))}",
        }
        for _ in range(n_rows)
    ]
    return Table.from_records(schema, records)


class TestAnatomyProperties:
    @given(table=tables(), l=st.integers(2, 3), seed=st.integers(0, 5))
    @settings(**COMMON)
    def test_valid_whenever_it_succeeds(self, table, l, seed):
        assume(table.n_rows >= l)
        counts = Counter(table.sa_labels())
        try:
            exempt = auto_exempt(counts, l)
            check_eligibility(counts, l, exempt=exempt)
        except DiversityError:
            assume(False)  # genuinely infeasible instance: skip
        published = anatomize(table, l=l, exempt=exempt, seed=seed)
        # 1. The release is a permutation-preserving partition.
        total_sa: Counter = Counter()
        for bucket in published.buckets:
            total_sa.update(bucket.sa_counts())
        assert total_sa == counts
        assert published.qi_marginal() == table.qi_counts()
        # 2. Diversity holds under the declared exemption.
        assert table_is_diverse(published, l, exempt=exempt)
        # 3. Bucket sizes: l or (for residue recipients) a bit more.
        sizes = [bucket.size for bucket in published.buckets]
        assert min(sizes) >= l
        assert sum(sizes) == table.n_rows

    @given(table=tables(), seed=st.integers(0, 3))
    @settings(**COMMON)
    def test_seed_determinism(self, table, seed):
        assume(table.n_rows >= 2)
        counts = Counter(table.sa_labels())
        try:
            exempt = auto_exempt(counts, 2)
        except DiversityError:
            assume(False)
        first = anatomize(table, l=2, exempt=exempt, seed=seed)
        second = anatomize(table, l=2, exempt=exempt, seed=seed)
        assert [b.sa_values for b in first.buckets] == [
            b.sa_values for b in second.buckets
        ]


class TestMiningProperties:
    @given(table=tables())
    @settings(**COMMON)
    def test_rule_counts_recount_exactly(self, table):
        rules = mine_association_rules(
            table, MiningConfig(min_support_count=1, max_antecedent=2)
        )
        qi = table.qi_tuples()
        sa = table.sa_labels()
        schema = table.schema
        for rule in list(rules.positive)[:20]:
            positions = {
                name: schema.qi_index(name) for name in rule.antecedent
            }
            matching = [
                i
                for i, q in enumerate(qi)
                if all(
                    q[positions[name]] == value
                    for name, value in rule.antecedent.items()
                )
            ]
            joint = sum(1 for i in matching if sa[i] == rule.sa_value)
            assert rule.antecedent_count == len(matching)
            assert rule.confidence == pytest.approx(joint / len(matching))
            assert rule.support == pytest.approx(joint / table.n_rows)

    @given(table=tables())
    @settings(**COMMON)
    def test_positive_negative_duality(self, table):
        """For every (Qv, s): positive confidence + negative confidence = 1
        whenever both rules were emitted."""
        rules = mine_association_rules(
            table, MiningConfig(min_support_count=1, max_antecedent=1)
        )
        negative_of = {
            (tuple(sorted(r.antecedent.items())), r.sa_value): r.confidence
            for r in rules.negative
        }
        for rule in rules.positive:
            key = (tuple(sorted(rule.antecedent.items())), rule.sa_value)
            if key in negative_of:
                assert rule.confidence + negative_of[key] == pytest.approx(1.0)
