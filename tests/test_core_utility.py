"""Tests for the aggregate-utility metrics."""

import pytest

from repro.core.privacy_maxent import PrivacyMaxEnt, baseline_posterior
from repro.core.quantifier import PosteriorTable
from repro.core.utility import (
    AggregateQuery,
    UtilityReport,
    estimate_count,
    query_workload,
    relative_query_error,
    true_count,
)
from repro.data.paper_example import S1, S2, paper_published, paper_table
from repro.errors import ReproError
from repro.knowledge.statements import ConditionalProbability


@pytest.fixture(scope="module")
def table():
    return paper_table()


@pytest.fixture(scope="module")
def published():
    return paper_published()


class TestTrueCount:
    def test_known_counts(self, table):
        assert true_count(
            table, AggregateQuery(qv={"gender": "male"}, sa_value=S2)
        ) == 3
        assert true_count(
            table,
            AggregateQuery(
                qv={"gender": "female", "degree": "college"}, sa_value=S1
            ),
        ) == 1
        assert true_count(
            table, AggregateQuery(qv={"gender": "male"}, sa_value=S1)
        ) == 0

    def test_describe(self):
        query = AggregateQuery(qv={"gender": "male"}, sa_value=S2)
        assert "gender=male" in query.describe()


class TestEstimateCount:
    def test_exact_when_posterior_is_truth(self, table, published):
        truth = PosteriorTable.from_table(table)
        query = AggregateQuery(qv={"gender": "male"}, sa_value=S2)
        estimate = estimate_count(published, truth, query)
        assert estimate == pytest.approx(3.0)

    def test_baseline_estimator_reasonable(self, table, published):
        baseline = baseline_posterior(published)
        query = AggregateQuery(qv={"gender": "male"}, sa_value=S2)
        estimate = estimate_count(published, baseline, query)
        # Anatomy-style estimate: in [0, 6] (six males) and near the truth.
        assert 0 <= estimate <= 6
        assert abs(estimate - 3.0) < 2.0

    def test_knowledge_sharpens_estimates(self, table, published):
        """The utility/privacy duality: the informed posterior answers the
        Breast-Cancer query exactly."""
        query = AggregateQuery(qv={"gender": "female"}, sa_value=S1)
        truth_value = true_count(table, query)  # both BC cases are female
        baseline_est = estimate_count(
            published, baseline_posterior(published), query
        )
        informed = PrivacyMaxEnt(
            published,
            knowledge=[
                ConditionalProbability(
                    given={"gender": "male"}, sa_value=S1, probability=0.0
                )
            ],
        ).posterior()
        informed_est = estimate_count(published, informed, query)
        assert abs(informed_est - truth_value) < abs(
            baseline_est - truth_value
        )
        assert informed_est == pytest.approx(truth_value, abs=1e-6)


class TestWorkload:
    def test_sampled_queries_have_support(self, table):
        queries = query_workload(
            table, n_queries=10, n_qi_attributes=1, seed=3
        )
        assert len(queries) == 10
        for query in queries:
            assert true_count(table, query) >= 1

    def test_deterministic_per_seed(self, table):
        a = query_workload(table, n_queries=5, n_qi_attributes=1, seed=1)
        b = query_workload(table, n_queries=5, n_qi_attributes=1, seed=1)
        assert a == b

    def test_invalid_params(self, table):
        with pytest.raises(ReproError):
            query_workload(table, n_queries=0)
        with pytest.raises(ReproError):
            query_workload(table, n_qi_attributes=99)


class TestRelativeError:
    def test_truth_posterior_scores_zero(self, table, published):
        truth = PosteriorTable.from_table(table)
        queries = query_workload(
            table, n_queries=8, n_qi_attributes=1, seed=2
        )
        report = relative_query_error(table, published, truth, queries)
        assert isinstance(report, UtilityReport)
        assert report.mean_relative_error == pytest.approx(0.0, abs=1e-9)
        assert report.n_queries == 8

    def test_baseline_has_positive_error(self, table, published):
        queries = query_workload(
            table, n_queries=8, n_qi_attributes=2, seed=2
        )
        report = relative_query_error(
            table, published, baseline_posterior(published), queries
        )
        assert report.worst_relative_error > 0
        assert (
            report.median_relative_error <= report.mean_relative_error
            or report.median_relative_error >= 0
        )

    def test_empty_workload_rejected(self, table, published):
        with pytest.raises(ReproError):
            relative_query_error(
                table, published, baseline_posterior(published), []
            )

    def test_adult_scale_utility(self, adult_small, adult_small_published):
        """Aggregate error at realistic scale stays moderate — the Anatomy
        utility claim."""
        queries = query_workload(
            adult_small, n_queries=30, n_qi_attributes=1, min_true_count=5,
            seed=7,
        )
        report = relative_query_error(
            adult_small,
            adult_small_published,
            baseline_posterior(adult_small_published),
            queries,
        )
        assert report.mean_relative_error < 0.6
