"""The live-query workload: seeded mixes, revelation, batched trajectories."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.paper_example import paper_published, paper_table
from repro.errors import ExperimentError
from repro.experiments.workloads import build_adult_workload
from repro.workload import (
    AttackerView,
    EmbeddedBackend,
    PosteriorIndex,
    QueryMix,
    WorkloadConfig,
    WorkloadDriver,
    evaluate,
)
from repro.core.quantifier import PosteriorTable


@pytest.fixture(scope="module")
def posterior() -> PosteriorTable:
    return PosteriorTable.from_table(paper_table())


@pytest.fixture(scope="module")
def index(posterior) -> PosteriorIndex:
    return PosteriorIndex(posterior)


class TestQueryMix:
    def test_same_seed_same_stream(self, index):
        a = QueryMix(index, seed=7).batch(40)
        b = QueryMix(index, seed=7).batch(40)
        assert a == b

    def test_different_seed_different_stream(self, index):
        a = QueryMix(index, seed=7).batch(40)
        b = QueryMix(index, seed=8).batch(40)
        assert a != b

    def test_all_shapes_appear(self, index):
        shapes = {q.shape for q in QueryMix(index, seed=3).batch(200)}
        assert shapes == {"point", "range", "groupby", "join_olap"}

    def test_weights_steer_the_mix(self, index):
        mix = QueryMix(index, weights={"point": 1.0, "range": 0.0,
                                       "groupby": 0.0, "join_olap": 0.0})
        assert {q.shape for q in mix.batch(30)} == {"point"}

    def test_unknown_shape_is_an_error(self, index):
        with pytest.raises(ExperimentError, match="unknown query shape"):
            QueryMix(index, weights={"truncate": 1.0})

    def test_zero_total_weight_is_an_error(self, index):
        with pytest.raises(ExperimentError, match="sum"):
            QueryMix(index, weights={s: 0.0 for s in
                                     ("point", "range", "groupby", "join_olap")})


class TestEvaluate:
    def test_point_reveals_one_posterior_row(self, index, posterior):
        matrix, weights = posterior.matrix, posterior.weights
        mix = QueryMix(index, weights={"point": 1.0, "range": 0.0,
                                       "groupby": 0.0, "join_olap": 0.0},
                       seed=1)
        result = evaluate(mix.draw(), index, matrix, weights)
        assert result.touched.shape == (1,)
        row = result.touched[0]
        assert result.revealed[0] == pytest.approx(matrix[row])
        assert result.answer["top_prob"] == pytest.approx(matrix[row].max())

    def test_range_reveals_only_the_blend(self, index, posterior):
        matrix, weights = posterior.matrix, posterior.weights
        mix = QueryMix(index, weights={"point": 0.0, "range": 1.0,
                                       "groupby": 0.0, "join_olap": 0.0},
                       seed=2)
        result = evaluate(mix.draw(), index, matrix, weights)
        if result.touched.size > 1:
            # Every touched row is attributed the same blended distribution
            # — an aggregate answer must not leak per-row structure.
            assert np.allclose(result.revealed, result.revealed[0])

    def test_groupby_rows_get_their_groups_blend(self, index, posterior):
        matrix, weights = posterior.matrix, posterior.weights
        mix = QueryMix(index, weights={"point": 0.0, "range": 0.0,
                                       "groupby": 1.0, "join_olap": 0.0},
                       seed=3)
        query = mix.draw()
        result = evaluate(query, index, matrix, weights)
        codes = index.position_codes[query.params["position"]]
        same_group = codes == codes[0]
        assert np.allclose(
            result.revealed[same_group], result.revealed[same_group][0]
        )
        # Each revealed distribution is a probability vector.
        assert result.revealed.sum(axis=1) == pytest.approx(
            np.ones(index.n_rows)
        )

    def test_join_olap_reveals_one_sa_column(self, index, posterior):
        matrix, weights = posterior.matrix, posterior.weights
        mix = QueryMix(index, weights={"point": 0.0, "range": 0.0,
                                       "groupby": 0.0, "join_olap": 1.0},
                       seed=4)
        query = mix.draw()
        result = evaluate(query, index, matrix, weights)
        sa = query.params["sa"]
        others = [s for s in range(matrix.shape[1]) if s != sa]
        assert np.all(result.revealed[:, others] == 0.0)


class TestAttackerView:
    def test_accumulates_elementwise_max(self):
        view = AttackerView(3, 2)
        view.absorb(np.array([0, 1]), np.array([[0.2, 0.8], [0.5, 0.5]]))
        view.absorb(np.array([0]), np.array([[0.6, 0.1]]))
        assert view.peak_disclosure == pytest.approx(0.8)
        assert view.coverage == pytest.approx(2 / 3)

    def test_empty_absorb_is_a_no_op(self):
        view = AttackerView(2, 2)
        view.absorb(np.empty(0, dtype=np.int64), np.empty((0, 2)))
        assert view.coverage == 0.0
        assert view.peak_disclosure == 0.0


class TestWorkloadConfig:
    def test_rejects_nonpositive_batches(self):
        with pytest.raises(ExperimentError):
            WorkloadConfig(n_batches=0)

    def test_rejects_negative_knowledge_step(self):
        with pytest.raises(ExperimentError):
            WorkloadConfig(knowledge_step=-1)


class TestWorkloadDriver:
    @pytest.fixture(scope="class")
    def report(self):
        workload = build_adult_workload(n_records=260, l=3, seed=5)
        backend = EmbeddedBackend(workload.published)
        try:
            driver = WorkloadDriver(
                backend,
                rules=workload.rules,
                config=WorkloadConfig(
                    n_batches=3, queries_per_batch=12, knowledge_step=2,
                    seed=17,
                ),
            )
            yield driver.run()
        finally:
            backend.close()

    def test_trajectory_shape(self, report):
        assert len(report["batches"]) == 3
        assert report["total_queries"] == 36
        assert report["n_qi_tuples"] > 0
        assert set(report["shapes"]) <= {
            "point", "range", "groupby", "join_olap"
        }

    def test_knowledge_grows_per_batch(self, report):
        assert [b["k_rules"] for b in report["batches"]] == [0, 2, 4]
        assert report["batches"][1]["n_statements"] > 0

    def test_disclosure_is_monotone_in_knowledge(self, report):
        disclosures = [b["max_disclosure"] for b in report["batches"]]
        assert disclosures[0] <= disclosures[-1] + 1e-9
        # Batch 0 is knowledge-free: the l-diversity floor.
        assert disclosures[0] == pytest.approx(1 / 3, abs=1e-6)

    def test_attacker_view_never_shrinks(self, report):
        peaks = [b["attacker"]["peak_disclosure"] for b in report["batches"]]
        assert peaks == sorted(peaks)
        coverages = [b["attacker"]["coverage"] for b in report["batches"]]
        assert coverages == sorted(coverages)

    def test_report_is_json_serializable(self, report):
        import json

        json.dumps(report)

    def test_knowledge_without_rules_is_an_error(self):
        backend = EmbeddedBackend(paper_published())
        try:
            with pytest.raises(ExperimentError, match="rules"):
                WorkloadDriver(
                    backend, config=WorkloadConfig(knowledge_step=2)
                )
        finally:
            backend.close()

    def test_knowledge_free_run_needs_no_rules(self):
        backend = EmbeddedBackend(paper_published())
        try:
            report = WorkloadDriver(
                backend,
                config=WorkloadConfig(
                    n_batches=2, queries_per_batch=6, knowledge_step=0
                ),
            ).run()
        finally:
            backend.close()
        assert all(b["k_rules"] == 0 for b in report["batches"])
