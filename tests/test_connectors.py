"""Table connectors: schema discovery, chunked streaming, content digests."""

from __future__ import annotations

import sqlite3

import pytest

from repro.data.connectors import (
    DBAPIConnector,
    MemoryConnector,
    RowDigest,
    SQLiteConnector,
    canonical_schema,
    coerce_label,
    connect_postgres,
    quote_identifier,
    table_to_sqlite,
)
from repro.data.schema import Attribute, Schema
from repro.data.table import Table
from repro.errors import ConnectorError


def tiny_schema() -> Schema:
    return Schema(
        attributes=(
            Attribute("zip", ("10001", "10002", "10003")),
            Attribute("age", ("20", "30", "40")),
            Attribute("disease", ("flu", "cold", "hiv")),
        ),
        qi_attributes=("zip", "age"),
        sa_attribute="disease",
    )


def tiny_table(n_rows: int = 9) -> Table:
    schema = tiny_schema()
    records = [
        {
            "zip": schema.attribute("zip").domain[i % 3],
            "age": schema.attribute("age").domain[(i // 3) % 3],
            "disease": schema.attribute("disease").domain[i % 3],
        }
        for i in range(n_rows)
    ]
    return Table.from_records(schema, records)


def seeded_sqlite(tmp_path, table=None, name="records"):
    table = table or tiny_table()
    path = tmp_path / "source.db"
    table_to_sqlite(table, path, name)
    return path, table


def open_connector(path, **overrides):
    table = overrides.pop("table", "records")
    kwargs = dict(qi=("zip", "age"), sa="disease")
    kwargs.update(overrides)
    return SQLiteConnector(path, table, **kwargs)


class TestCanonicalSchema:
    def test_orders_qi_then_sa(self):
        schema = Schema(
            attributes=(
                Attribute("disease", ("flu",)),
                Attribute("age", ("20",)),
                Attribute("zip", ("10001",)),
            ),
            qi_attributes=("zip", "age"),
            sa_attribute="disease",
        )
        assert canonical_schema(schema).attribute_names == (
            "zip",
            "age",
            "disease",
        )

    def test_idempotent(self):
        schema = canonical_schema(tiny_schema())
        assert canonical_schema(schema).attribute_names == schema.attribute_names


class TestCoerceLabel:
    def test_strings_pass_through(self):
        assert coerce_label("flu", column="sa") == "flu"

    def test_integers_and_floats_stringify(self):
        assert coerce_label(42, column="age") == "42"
        assert coerce_label(2.5, column="age") == repr(2.5)

    def test_null_without_label_is_an_error(self):
        with pytest.raises(ConnectorError, match="NULL"):
            coerce_label(None, column="age")

    def test_null_with_label_substitutes(self):
        assert coerce_label(None, column="age", null_label="?") == "?"

    def test_bytes_are_rejected(self):
        with pytest.raises(ConnectorError, match="BLOB"):
            coerce_label(b"\x00", column="age")


class TestQuoteIdentifier:
    def test_valid_name_is_double_quoted(self):
        assert quote_identifier("my_table") == '"my_table"'

    def test_injection_shapes_are_rejected(self):
        for bad in ('a"b', "a;drop", "a b", "", "1abc", "a-b"):
            with pytest.raises(ConnectorError):
                quote_identifier(bad)


class TestMemoryConnector:
    def test_round_trips_the_table(self):
        table = tiny_table()
        with MemoryConnector(table) as connector:
            assert connector.row_count() == table.n_rows
            rebuilt = connector.to_table()
        assert rebuilt.n_rows == table.n_rows
        # Canonical column order: QI columns first, then the SA.
        assert rebuilt.schema.attribute_names == ("zip", "age", "disease")

    def test_closed_connector_refuses(self):
        connector = MemoryConnector(tiny_table())
        connector.close()
        with pytest.raises(ConnectorError, match="closed"):
            connector.row_count()

    def test_empty_table_streams_zero_chunks(self):
        table = Table.from_records(tiny_schema(), [])
        with MemoryConnector(table) as connector:
            assert connector.row_count() == 0
            assert list(connector.chunks(4)) == []


class TestChunkDeterminism:
    def test_digest_is_chunk_size_invariant(self):
        table = tiny_table(9)
        digests = set()
        for chunk_rows in (1, 2, 3, 4, 9, 100):
            with MemoryConnector(table) as connector:
                digests.add(connector.content_digest(chunk_rows))
        assert len(digests) == 1

    def test_digest_matches_across_connector_kinds(self, tmp_path):
        path, table = seeded_sqlite(tmp_path)
        with MemoryConnector(table) as memory:
            expected = memory.content_digest(2)
        with open_connector(path) as sqlite_side:
            assert sqlite_side.content_digest(3) == expected

    def test_digest_depends_on_content(self):
        base = tiny_table(6)
        with MemoryConnector(base) as connector:
            one = connector.content_digest()
        with MemoryConnector(tiny_table(7)) as connector:
            other = connector.content_digest()
        assert one != other

    def test_chunk_offsets_partition_the_row_range(self):
        with MemoryConnector(tiny_table(9)) as connector:
            offsets = [chunk.offset for chunk in connector.chunks(4)]
            sizes = [len(chunk.rows) for chunk in connector.chunks(4)]
        assert offsets == [0, 4, 8]
        assert sizes == [4, 4, 1]

    def test_row_digest_header_covers_schema(self):
        schema = tiny_schema()
        table = tiny_table(3)
        renamed = Schema(
            attributes=(
                Attribute("postcode", schema.attribute("zip").domain),
                Attribute("age", schema.attribute("age").domain),
                Attribute("disease", schema.attribute("disease").domain),
            ),
            qi_attributes=("postcode", "age"),
            sa_attribute="disease",
        )
        a, b = RowDigest(schema), RowDigest(renamed)
        rows = [tuple(map(str, range(3)))]
        a.update(rows)
        b.update(rows)
        assert a.hexdigest() != b.hexdigest()


class TestSQLiteConnector:
    def test_discovers_schema_and_streams(self, tmp_path):
        path, table = seeded_sqlite(tmp_path)
        with open_connector(path) as connector:
            schema = connector.schema()
            assert schema.qi_attributes == ("zip", "age")
            assert schema.sa_attribute == "disease"
            rebuilt = connector.to_table(chunk_rows=2)
        assert rebuilt.n_rows == table.n_rows

    def test_missing_file_table_errors_cleanly(self, tmp_path):
        path, _table = seeded_sqlite(tmp_path)
        with open_connector(path, table="nope") as connector:
            with pytest.raises(ConnectorError):
                connector.schema()

    def test_empty_table_needs_explicit_domains(self, tmp_path):
        path = tmp_path / "empty.db"
        connection = sqlite3.connect(str(path))
        connection.execute("CREATE TABLE records (zip TEXT, age TEXT, disease TEXT)")
        connection.commit()
        connection.close()
        with open_connector(path) as connector:
            with pytest.raises(ConnectorError, match="domains"):
                connector.schema()
        domains = {
            "zip": ("10001",),
            "age": ("20",),
            "disease": ("flu", "cold"),
        }
        with open_connector(path, domains=domains) as connector:
            assert connector.row_count() == 0
            assert connector.schema().attribute("disease").domain == ("flu", "cold")

    def test_nulls_error_without_null_label(self, tmp_path):
        path, _table = seeded_sqlite(tmp_path)
        connection = sqlite3.connect(str(path))
        connection.execute(
            "INSERT INTO records (zip, age, disease) VALUES ('10001', NULL, 'flu')"
        )
        connection.commit()
        connection.close()
        with open_connector(path) as connector:
            with pytest.raises(ConnectorError, match="NULL"):
                connector.to_table()
        with open_connector(path, null_label="unknown") as connector:
            rebuilt = connector.to_table()
        assert "unknown" in rebuilt.schema.attribute("age").domain

    def test_mixed_storage_types_coerce_to_labels(self, tmp_path):
        path = tmp_path / "typed.db"
        connection = sqlite3.connect(str(path))
        connection.execute("CREATE TABLE records (zip TEXT, age INTEGER, disease TEXT)")
        connection.executemany(
            "INSERT INTO records VALUES (?, ?, ?)",
            [("10001", 20, "flu"), ("10002", 30, "cold"), ("10003", 40, "flu")],
        )
        connection.commit()
        connection.close()
        with open_connector(path) as connector:
            rebuilt = connector.to_table()
        assert rebuilt.schema.attribute("age").domain == ("20", "30", "40")

    def test_real_values_coerce_via_repr(self, tmp_path):
        path = tmp_path / "real.db"
        connection = sqlite3.connect(str(path))
        connection.execute("CREATE TABLE records (zip TEXT, age REAL, disease TEXT)")
        connection.executemany(
            "INSERT INTO records VALUES (?, ?, ?)",
            [("10001", 20.5, "flu"), ("10002", 30.25, "cold")],
        )
        connection.commit()
        connection.close()
        with open_connector(path) as connector:
            rebuilt = connector.to_table()
        assert set(rebuilt.schema.attribute("age").domain) == {"20.5", "30.25"}

    def test_mid_ingest_mutation_is_a_clean_error(self, tmp_path):
        path, _table = seeded_sqlite(tmp_path)
        with open_connector(path) as connector:
            chunks = connector.chunks(3)
            next(chunks)
            # Another connection commits between chunks.
            other = sqlite3.connect(str(path))
            other.execute(
                "INSERT INTO records (zip, age, disease) "
                "VALUES ('10001', '20', 'flu')"
            )
            other.commit()
            other.close()
            with pytest.raises(ConnectorError, match="modified"):
                for _chunk in chunks:
                    pass

    def test_unknown_label_after_mutation_names_the_source(self, tmp_path):
        # A value outside the discovered domain (source mutated between
        # schema discovery and streaming) surfaces as ConnectorError, not
        # a KeyError, when materializing the chunk.
        path, _table = seeded_sqlite(tmp_path)
        with open_connector(path) as connector:
            schema = connector.schema()
        chunk_rows = [("99999", "20", "flu")]
        from repro.data.connectors import RowChunk

        with pytest.raises(ConnectorError, match="mutated"):
            RowChunk(chunk_rows, 0).to_table(schema)

    def test_key_column_pagination_orders_rows(self, tmp_path):
        path, table = seeded_sqlite(tmp_path)
        with open_connector(path) as connector:
            rows = [r for c in connector.chunks(2) for r in c.rows]
        with MemoryConnector(table) as memory:
            expected = [r for c in memory.chunks(50) for r in c.rows]
        assert rows == expected


class TestPostgresGate:
    def test_missing_driver_points_at_the_extra(self):
        with pytest.raises(ConnectorError, match=r"repro\[postgres\]"):
            connect_postgres(
                "dbname=missing", "records", qi=("zip",), sa="disease", key_column="id"
            )


class TestDBAPIRowCountStability:
    def test_row_count_change_is_detected(self, tmp_path):
        path, _table = seeded_sqlite(tmp_path)
        connection = sqlite3.connect(str(path), check_same_thread=False)
        connector = DBAPIConnector(
            connection,
            "records",
            qi=("zip", "age"),
            sa="disease",
            key_column="rowid",
            owns_connection=True,
        )
        with connector:
            chunks = connector.chunks(3)
            next(chunks)
            # Mutate through the *same* connection: PRAGMA data_version
            # does not tick, but the generic row-count recheck must.
            connection.execute("DELETE FROM records WHERE rowid <= 4")
            connection.commit()
            with pytest.raises(ConnectorError):
                for _chunk in chunks:
                    pass
