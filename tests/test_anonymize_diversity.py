"""Unit tests for diversity checks and the exemption rule."""

from collections import Counter

import pytest

from repro.anonymize.buckets import Bucket
from repro.anonymize.diversity import (
    auto_exempt,
    bucket_is_diverse,
    check_eligibility,
    distinct_diversity,
    exempt_values,
    table_is_diverse,
)
from repro.data.paper_example import paper_published
from repro.errors import DiversityError


def bucket_of(sa_values, qi_value="q"):
    return Bucket(
        index=0,
        qi_tuples=tuple((qi_value,) for _ in sa_values),
        sa_values=tuple(sa_values),
    )


class TestBucketDiversity:
    def test_all_distinct_is_l_diverse(self):
        bucket = bucket_of(["a", "b", "c"])
        assert bucket_is_diverse(bucket, 3)

    def test_repeat_breaks_diversity(self):
        bucket = bucket_of(["a", "a", "b"])
        assert not bucket_is_diverse(bucket, 3)
        assert bucket_is_diverse(bucket, 1)

    def test_exempt_value_may_repeat(self):
        bucket = bucket_of(["a", "a", "b"])
        assert bucket_is_diverse(bucket, 3, exempt=frozenset({"a"}))

    def test_distinct_diversity_value(self):
        assert distinct_diversity(bucket_of(["a", "b", "c", "d"])) == 4
        assert distinct_diversity(bucket_of(["a", "a", "b", "c"])) == 2

    def test_distinct_diversity_all_exempt(self):
        bucket = bucket_of(["a", "a", "a"])
        assert distinct_diversity(bucket, exempt=frozenset({"a"})) == 3

    def test_paper_buckets_are_diverse(self):
        # Figure 1's buckets repeat Flu in bucket 1 (s2 twice over 4
        # records): distinct 2-diverse, not 3-diverse.
        published = paper_published()
        assert table_is_diverse(published, 2)
        assert not table_is_diverse(published, 3)


class TestEligibility:
    def test_feasible_counts_pass(self):
        check_eligibility(Counter(a=3, b=3, c=3), 3)

    def test_dominating_value_fails(self):
        with pytest.raises(DiversityError, match="infeasible"):
            check_eligibility(Counter(a=7, b=1, c=1), 3)

    def test_exemption_rescues(self):
        check_eligibility(Counter(a=7, b=1, c=1), 3, exempt=frozenset({"a"}))

    def test_too_few_records(self):
        with pytest.raises(DiversityError, match="one bucket"):
            check_eligibility(Counter(a=1), 5)

    def test_empty_rejected(self):
        with pytest.raises(DiversityError):
            check_eligibility(Counter(), 2)


class TestAutoExempt:
    def test_no_exemption_needed(self):
        assert auto_exempt(Counter(a=2, b=2, c=2), 3) == frozenset()

    def test_exempts_most_frequent(self):
        counts = Counter(a=10, b=2, c=2, d=2)
        assert auto_exempt(counts, 4) == frozenset({"a"})

    def test_exempts_minimal_prefix(self):
        counts = Counter(a=10, b=9, c=2, d=2, e=2)
        exempt = auto_exempt(counts, 5)
        assert exempt == {"a", "b"}

    def test_exempt_values_helper(self):
        counts = Counter(a=5, b=3, c=1)
        assert exempt_values(counts, 2) == {"a", "b"}
