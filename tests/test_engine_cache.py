"""Solve-cache correctness: hits, misses, eviction, bit-identity."""

import numpy as np
import pytest

from repro.data.paper_example import paper_published
from repro.engine import PrivacyEngine
from repro.engine.cache import CacheEntry, SolveCache, WarmStartStore
from repro.knowledge.compiler import compile_statements
from repro.knowledge.statements import ConditionalProbability
from repro.maxent.config import MaxEntConfig
from repro.maxent.constraints import data_constraints
from repro.maxent.indexing import GroupVariableSpace
from repro.maxent.solution import SolverStats


def make_stats(**overrides) -> SolverStats:
    base = dict(
        solver="lbfgs",
        iterations=7,
        seconds=0.25,
        n_vars=3,
        n_equalities=2,
        n_inequalities=0,
        eq_residual=1e-9,
        ineq_residual=0.0,
        converged=True,
    )
    base.update(overrides)
    return SolverStats(**base)


def paper_system(probability: float = 0.3):
    space = GroupVariableSpace(paper_published())
    system = data_constraints(space)
    system.extend(
        compile_statements(
            [
                ConditionalProbability(
                    given={"gender": "male"},
                    sa_value="Flu",
                    probability=probability,
                )
            ],
            space,
        )
    )
    return space, system


class TestLRU:
    def test_eviction_respects_cache_size(self):
        cache = SolveCache(2)
        for key in ("a", "b", "c"):
            cache.put(key, CacheEntry(p=np.ones(2), stats=make_stats()))
        assert len(cache) == 2
        assert "a" not in cache
        assert "b" in cache and "c" in cache

    def test_get_refreshes_recency(self):
        cache = SolveCache(2)
        cache.put("a", CacheEntry(p=np.ones(2), stats=make_stats()))
        cache.put("b", CacheEntry(p=np.ones(2), stats=make_stats()))
        cache.get("a")
        cache.put("c", CacheEntry(p=np.ones(2), stats=make_stats()))
        assert "a" in cache and "b" not in cache

    def test_zero_size_disables(self):
        cache = SolveCache(0)
        cache.put("a", CacheEntry(p=np.ones(2), stats=make_stats()))
        assert not cache.enabled
        assert len(cache) == 0

    def test_lookup_counts_hits_and_misses(self):
        cache = SolveCache(4)
        assert cache.lookup("a") is None
        cache.put("a", CacheEntry(p=np.ones(2), stats=make_stats()))
        assert cache.lookup("a") is not None
        assert (cache.hits, cache.misses) == (1, 1)
        assert cache.hit_rate == 0.5

    def test_entry_is_immutable(self):
        entry = CacheEntry(p=np.ones(3), stats=make_stats())
        with pytest.raises(ValueError):
            entry.p[0] = 2.0

    def test_replay_stats_zeroes_time_and_counts_hit(self):
        entry = CacheEntry(
            p=np.ones(3), stats=make_stats(cpu_seconds=0.25)
        )
        replay = entry.replay_stats()
        assert replay.seconds == 0.0
        assert replay.cpu_seconds == 0.0  # no numeric work this run
        assert replay.cache_hits == 1
        assert replay.iterations == entry.stats.iterations

    def test_warm_start_store_copies(self):
        store = WarmStartStore(2)
        x = np.ones(3)
        store.put("k", x)
        x[0] = 99.0
        assert store.get("k")[0] == 1.0


class TestPrefixCounters:
    """Per-fingerprint-prefix telemetry (the per-shard cache signal)."""

    def test_eviction_counter_and_per_prefix_attribution(self):
        cache = SolveCache(2)
        entry = CacheEntry(p=np.ones(2), stats=make_stats())
        for key in ("aaaaaaaa-1", "bbbbbbbb-1", "bbbbbbbb-2"):
            cache.put(key, entry)
        assert cache.evictions == 1  # "aaaaaaaa-1" fell out
        stats = cache.prefix_stats()
        assert stats["aaaaaaaa"]["evictions"] == 1
        # Slots are created lazily (lookups/evictions), so the never-
        # evicted, never-looked-up prefix has no counters yet.
        assert stats.get("bbbbbbbb", {"evictions": 0})["evictions"] == 0

    def test_lookup_counts_split_by_prefix(self):
        cache = SolveCache(4)
        entry = CacheEntry(p=np.ones(2), stats=make_stats())
        cache.put("aaaaaaaa-1", entry)
        assert cache.lookup("aaaaaaaa-1") is not None
        assert cache.lookup("bbbbbbbb-1") is None
        stats = cache.prefix_stats()
        assert stats["aaaaaaaa"] == {"hits": 1, "misses": 0, "evictions": 0}
        assert stats["bbbbbbbb"] == {"hits": 0, "misses": 1, "evictions": 0}

    def test_tracked_prefixes_are_bounded(self):
        from repro.engine.cache import MAX_TRACKED_PREFIXES

        cache = SolveCache(4)
        for index in range(MAX_TRACKED_PREFIXES + 10):
            cache.lookup(f"{index:08x}-key")
        assert len(cache.prefix_stats()) == MAX_TRACKED_PREFIXES
        # Overflowing prefixes still count in the aggregate totals.
        assert cache.misses == MAX_TRACKED_PREFIXES + 10

    def test_clear_resets_prefix_and_eviction_state(self):
        cache = SolveCache(1)
        entry = CacheEntry(p=np.ones(2), stats=make_stats())
        cache.put("aaaaaaaa-1", entry)
        cache.put("bbbbbbbb-1", entry)
        cache.lookup("bbbbbbbb-1")
        cache.clear()
        assert cache.evictions == 0
        assert cache.prefix_stats() == {}

    def test_engine_stats_surface_prefix_breakdown(self):
        space, system = paper_system()
        config = MaxEntConfig(raise_on_infeasible=False, cache_size=8)
        with PrivacyEngine(cache_size=8) as engine:
            engine.solve(space, system, config)
            engine.solve(space, system, config)
            cache_stats = engine.stats()["cache"]
        assert cache_stats["evictions"] == 0
        assert cache_stats["by_prefix"]
        assert any(
            counters["hits"] > 0
            for counters in cache_stats["by_prefix"].values()
        )


class TestEngineCaching:
    def test_identical_system_hits_and_is_bit_identical(self):
        space, system = paper_system()
        engine = PrivacyEngine(cache_size=16)
        first = engine.solve(space, system)
        second = engine.solve(space, system)
        assert engine.cache.hits == 1
        assert np.array_equal(first.p, second.p)
        assert second.stats.cache_hits == 1
        assert second.stats.cpu_seconds == 0.0
        assert second.stats.converged

    def test_different_rhs_misses(self):
        space, system_a = paper_system(0.3)
        _, system_b = paper_system(0.35)
        engine = PrivacyEngine(cache_size=16)
        engine.solve(space, system_a)
        engine.solve(space, system_b)
        assert engine.cache.hits == 0
        assert engine.cache.misses == 2

    def test_cache_disabled_by_config(self):
        space, system = paper_system()
        engine = PrivacyEngine(cache_size=0)
        engine.solve(space, system)
        second = engine.solve(space, system)
        assert engine.cache.hits == 0
        assert second.stats.cache_hits == 0

    def test_eviction_forces_resolve(self):
        space, system_a = paper_system(0.3)
        _, system_b = paper_system(0.35)
        engine = PrivacyEngine(cache_size=1)
        engine.solve(space, system_a)
        engine.solve(space, system_b)  # evicts the first entry
        engine.solve(space, system_a)
        assert engine.cache.hits == 0
        assert len(engine.cache) == 1

    def test_different_solver_config_misses(self):
        space, system = paper_system()
        engine = PrivacyEngine(cache_size=16)
        engine.solve(space, system, MaxEntConfig(tol=1e-6))
        engine.solve(space, system, MaxEntConfig(tol=1e-8))
        assert engine.cache.hits == 0

    def test_hit_component_records_report_no_compute(self):
        space, system = paper_system()
        engine = PrivacyEngine(cache_size=16)
        engine.solve(space, system)
        second = engine.solve(space, system)
        hit_records = [
            r for r in second.components if r.stats.cache_hits
        ]
        assert hit_records
        assert all(r.stats.cpu_seconds == 0.0 for r in hit_records)

    def test_concurrent_shared_solves_are_safe(self):
        import threading

        space, system_a = paper_system(0.3)
        _, system_b = paper_system(0.35)
        engine = PrivacyEngine(cache_size=4)
        errors = []

        def worker(system):
            try:
                for _ in range(5):
                    solution = engine.solve(space, system)
                    assert solution.stats.converged
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(s,))
            for s in (system_a, system_b) * 4
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert engine.n_solves == 40

    def test_warm_start_preserves_solution(self):
        space, system_a = paper_system(0.3)
        _, system_b = paper_system(0.35)
        warm = PrivacyEngine(cache_size=16)
        warm.solve(space, system_a)
        warmed = warm.solve(space, system_b)  # same structure, new rhs
        cold = PrivacyEngine(cache_size=0).solve(space, system_b)
        assert warmed.stats.converged and cold.stats.converged
        assert np.abs(warmed.p - cold.p).max() < 1e-6
