"""Unit tests for posterior tables and person posteriors."""

import numpy as np
import pytest

from repro.core.privacy_maxent import PrivacyMaxEnt
from repro.core.quantifier import PosteriorTable, person_posterior
from repro.data.paper_example import (
    Q1,
    Q2,
    Q4,
    S1,
    S2,
    paper_published,
    paper_table,
)
from repro.errors import ReproError


@pytest.fixture(scope="module")
def truth():
    return PosteriorTable.from_table(paper_table())


@pytest.fixture(scope="module")
def estimate():
    return PrivacyMaxEnt(paper_published()).posterior()


class TestFromTable:
    def test_rows_are_distributions(self, truth):
        sums = truth.matrix.sum(axis=1)
        assert np.allclose(sums, 1.0)

    def test_known_values(self, truth):
        # q1 = (male, college): Allen Flu, Brian Pneumonia, Ethan HIV.
        assert truth.prob(Q1, S2) == pytest.approx(1 / 3)
        assert truth.prob(Q1, S1) == 0.0
        # q4 = (female, junior): Grace has Breast Cancer.
        assert truth.prob(Q4, S1) == 1.0

    def test_weights_are_marginals(self, truth):
        assert truth.weight(Q1) == pytest.approx(0.3)
        assert truth.weight(Q4) == pytest.approx(0.1)
        assert truth.weights.sum() == pytest.approx(1.0)

    def test_unknown_qi_raises(self, truth):
        with pytest.raises(ReproError):
            truth.prob(("alien", "phd"), S1)

    def test_unknown_sa_is_zero(self, truth):
        assert truth.prob(Q1, "Malaria") == 0.0

    def test_distribution(self, truth):
        dist = truth.distribution(Q1)
        assert sum(dist.values()) == pytest.approx(1.0)
        assert dist[S2] == pytest.approx(1 / 3)


class TestFromSolution:
    def test_rows_are_distributions(self, estimate):
        assert np.allclose(estimate.matrix.sum(axis=1), 1.0, atol=1e-8)

    def test_matches_eq9_hand_computation(self, estimate):
        # P*(s2 | q1) = [P(q1,b0) * 2/4 + P(q1,b1) * 0] / P(q1)
        #            = (0.2 * 0.5) / 0.3 = 1/3.
        assert estimate.prob(Q1, S2) == pytest.approx(1 / 3)
        # P*(s1 | q2): bucket 0 only, (0.1 * 1/4) / 0.2 = 0.125.
        assert estimate.prob(Q2, S1) == pytest.approx(0.125)

    def test_same_qi_universe_as_truth(self, truth, estimate):
        assert set(estimate.qi_tuples) == set(truth.qi_tuples)

    def test_person_space_rejected(self):
        engine = PrivacyMaxEnt(paper_published(), individuals=True)
        with pytest.raises(ReproError):
            engine.posterior()
        solution = engine.solve()
        with pytest.raises(ReproError):
            PosteriorTable.from_solution(solution)


class TestAlignment:
    def test_aligned_to_reorders(self, truth, estimate):
        aligned = estimate.aligned_to(truth)
        assert aligned.qi_tuples == truth.qi_tuples
        for q in truth.qi_tuples:
            assert aligned.prob(q, S2) == pytest.approx(estimate.prob(q, S2))

    def test_mismatched_universe_rejected(self, truth):
        other = PosteriorTable(
            [Q1],
            truth.sa_domain,
            np.ones((1, len(truth.sa_domain))) / len(truth.sa_domain),
            np.array([1.0]),
        )
        with pytest.raises(ReproError):
            other.aligned_to(truth)

    def test_shape_validation(self, truth):
        with pytest.raises(ReproError):
            PosteriorTable([Q1], ("a", "b"), np.ones((2, 2)), np.array([1.0]))
        with pytest.raises(ReproError):
            PosteriorTable([Q1], ("a", "b"), np.ones((1, 2)), np.array([1.0, 2.0]))


class TestPersonPosterior:
    def test_distributions_per_person(self):
        engine = PrivacyMaxEnt(paper_published(), individuals=True)
        posterior = person_posterior(engine.solve())
        assert len(posterior) == 10
        for name, dist in posterior.items():
            assert sum(dist.values()) == pytest.approx(1.0, abs=1e-7)

    def test_symmetry_with_group_posterior(self, estimate):
        """Without individual knowledge the pseudonym model collapses to
        the group model: P*(s | i) == P*(s | q(i))."""
        engine = PrivacyMaxEnt(paper_published(), individuals=True)
        posterior = engine.person_posterior()
        pseudonyms = engine.pseudonyms
        for person in pseudonyms.pseudonyms:
            for s, value in posterior[person.name].items():
                assert value == pytest.approx(
                    estimate.prob(person.qi, s), abs=1e-6
                )

    def test_group_solution_rejected(self):
        engine = PrivacyMaxEnt(paper_published())
        with pytest.raises(ReproError):
            person_posterior(engine.solve())
