"""Tests for the JSON wire forms of request/response objects."""

import json

import numpy as np
import pytest

from repro.core import serialize as wire
from repro.core.privacy_maxent import PrivacyMaxEnt, assess
from repro.data.paper_example import Q2, S1, paper_published, paper_table
from repro.errors import KnowledgeError, ReproError
from repro.knowledge.bounds import TopKBound
from repro.knowledge.individuals import IndividualProbability, Pseudonym
from repro.knowledge.mining import MiningConfig
from repro.knowledge.statements import (
    Comparison,
    ConditionalInterval,
    ConditionalProbability,
    JointProbability,
)
from repro.maxent.config import MaxEntConfig


def json_round_trip(payload):
    """Force the payload through real JSON (catches non-serializable leaks)."""
    return json.loads(json.dumps(payload))


class TestSchemaAndTables:
    def test_schema_round_trip(self, paper_schema_fixture):
        payload = json_round_trip(wire.schema_to_dict(paper_schema_fixture))
        assert wire.schema_from_dict(payload) == paper_schema_fixture

    def test_table_round_trip(self):
        table = paper_table()
        rebuilt = wire.table_from_dict(
            json_round_trip(wire.table_to_dict(table))
        )
        assert rebuilt.records() == table.records()

    def test_published_round_trip(self):
        published = paper_published()
        rebuilt = wire.published_from_dict(
            json_round_trip(wire.published_to_dict(published))
        )
        assert rebuilt.n_buckets == published.n_buckets
        assert rebuilt.n_records == published.n_records
        for old, new in zip(published.buckets, rebuilt.buckets):
            assert old.qi_tuples == new.qi_tuples
            assert old.sa_values == new.sa_values

    def test_schema_rejects_unknown_keys(self, paper_schema_fixture):
        payload = wire.schema_to_dict(paper_schema_fixture)
        payload["surprise"] = 1
        with pytest.raises(ReproError, match="unknown field"):
            wire.schema_from_dict(payload)

    def test_release_needs_buckets(self, paper_schema_fixture):
        with pytest.raises(ReproError, match="non-empty"):
            wire.published_from_dict(
                {"schema": wire.schema_to_dict(paper_schema_fixture), "buckets": []}
            )

    def test_non_object_rejected(self):
        with pytest.raises(ReproError, match="JSON object"):
            wire.published_from_dict([1, 2, 3])


class TestStatements:
    @pytest.mark.parametrize(
        "statement",
        [
            ConditionalProbability(
                given={"gender": "male"}, sa_value="HIV", probability=0.25
            ),
            JointProbability(
                given={"degree": "college"}, sa_value="Flu", probability=0.1
            ),
            ConditionalInterval(
                given={"gender": "female"}, sa_value="Flu", low=0.1, high=0.4
            ),
            Comparison(
                given={"gender": "male"},
                more_likely="Flu",
                less_likely="HIV",
                margin=0.05,
            ),
        ],
    )
    def test_round_trip(self, statement):
        payload = json_round_trip(wire.statement_to_dict(statement))
        assert wire.statement_from_dict(payload) == statement

    def test_unknown_type_rejected(self):
        with pytest.raises(KnowledgeError, match="unknown statement type"):
            wire.statement_from_dict({"type": "telepathy"})

    def test_unknown_field_rejected(self):
        payload = wire.statement_to_dict(
            ConditionalProbability(
                given={"gender": "male"}, sa_value="HIV", probability=0.25
            )
        )
        payload["extra"] = True
        with pytest.raises(ReproError, match="unknown field"):
            wire.statement_from_dict(payload)

    def test_individual_statements_have_no_wire_form(self):
        statement = IndividualProbability(
            Pseudonym("i1", ("male", "college")), "HIV", 0.0
        )
        with pytest.raises(KnowledgeError, match="no wire form"):
            wire.statement_to_dict(statement)

    def test_statements_from_list(self):
        statement = ConditionalProbability(
            given={"gender": "male"}, sa_value="HIV", probability=0.25
        )
        assert wire.statements_from_list(None) == []
        assert wire.statements_from_list(
            [wire.statement_to_dict(statement)]
        ) == [statement]
        with pytest.raises(ReproError, match="JSON list"):
            wire.statements_from_list({"not": "a list"})


class TestConfigsAndBounds:
    def test_config_round_trip(self):
        config = MaxEntConfig(
            solver="newton", tol=1e-8, cache_path="/tmp/cache.pkl"
        )
        payload = json_round_trip(wire.config_to_dict(config))
        assert wire.config_from_dict(payload) == config

    def test_config_none_is_default(self):
        assert wire.config_from_dict(None) == MaxEntConfig()

    def test_config_unknown_knob_rejected(self):
        with pytest.raises(ReproError, match="unknown field"):
            wire.config_from_dict({"warp_speed": 9})

    def test_bound_round_trip(self):
        bound = TopKBound(5, 3, epsilon=0.01)
        assert wire.bound_from_dict(
            json_round_trip(wire.bound_to_dict(bound))
        ) == bound

    def test_mining_config(self):
        assert wire.mining_config_from_dict(None) == MiningConfig()
        rebuilt = wire.mining_config_from_dict(
            {"min_support_count": 5, "max_antecedent": 1}
        )
        assert rebuilt == MiningConfig(min_support_count=5, max_antecedent=1)


class TestResults:
    def test_posterior_round_trip(self):
        posterior = PrivacyMaxEnt(paper_published()).posterior()
        rebuilt = wire.posterior_from_dict(
            json_round_trip(wire.posterior_to_dict(posterior))
        )
        assert rebuilt.qi_tuples == posterior.qi_tuples
        assert rebuilt.sa_domain == posterior.sa_domain
        np.testing.assert_allclose(rebuilt.matrix, posterior.matrix)
        assert rebuilt.prob(Q2, S1) == pytest.approx(posterior.prob(Q2, S1))

    def test_stats_dict_has_residual(self):
        solution = PrivacyMaxEnt(paper_published()).solve()
        payload = json_round_trip(wire.stats_to_dict(solution.stats))
        assert payload["solver"] == solution.stats.solver
        assert payload["residual"] == pytest.approx(solution.stats.residual)

    def test_assessment_round_trip(self):
        table = paper_table()
        published = paper_published()
        assessments = assess(
            table,
            published,
            [TopKBound(1, 1)],
            mining=MiningConfig(min_support_count=1, max_antecedent=1),
        )
        payload = json_round_trip(wire.assessment_to_dict(assessments[0]))
        rebuilt = wire.assessment_from_dict(payload)
        assert rebuilt.bound == assessments[0].bound
        assert rebuilt.max_disclosure == pytest.approx(
            assessments[0].max_disclosure
        )
        assert rebuilt.stats.solver == assessments[0].stats.solver
