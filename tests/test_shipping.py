"""Zero-copy shared-memory shipping (repro.engine.shipping).

The two non-negotiables: workers reconstruct exactly the payload the
parent shipped (round-trip fidelity through the out-of-band buffers),
and segments never outlive a dispatch — normal completion, pickle
fallback and worker crashes all drain ``ShippingStats.active`` to empty
and leave nothing attachable in the OS namespace.
"""

import os
import pickle

import numpy as np
import pytest

from repro.engine import PrivacyEngine
from repro.engine import shipping
from repro.engine.executors import ProcessExecutor
from repro.experiments.workloads import (
    build_synthetic_release,
    per_bucket_statements,
)
from repro.knowledge.compiler import compile_statements
from repro.maxent.config import MaxEntConfig
from repro.maxent.constraints import data_constraints
from repro.maxent.indexing import GroupVariableSpace

pytestmark = pytest.mark.skipif(
    not shipping.HAS_SHARED_MEMORY,
    reason="multiprocessing.shared_memory unavailable",
)


def summarize_arrays(job):
    """Module-level task: prove the arrays crossed intact."""
    a, b, tag = job
    return (float(a.sum()), float(b.max()), tag, a.flags.writeable)


def crash_hard(job):
    """Module-level task that kills its worker process outright."""
    os._exit(13)


def sample_jobs(n=3):
    rng = np.random.default_rng(11)
    return [
        (
            rng.standard_normal(64 + 16 * i),
            rng.standard_normal((4, 4)) * i,
            f"job-{i}",
        )
        for i in range(n)
    ]


def segment_is_gone(name: str) -> bool:
    from multiprocessing import shared_memory

    try:
        handle = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return True
    handle.close()
    return False


class TestShipRoundTrip:
    def test_in_process_round_trip(self):
        jobs = sample_jobs()
        headers, segment = shipping.ship_jobs(summarize_arrays, jobs)
        try:
            assert len(headers) == len(jobs)
            assert all(h.segment == segment.name for h in headers)
            for header, (a, b, tag) in zip(headers, jobs):
                total, peak, got_tag, _ = shipping.run_shipped_task(header)
                assert total == pytest.approx(float(a.sum()))
                assert peak == pytest.approx(float(b.max()))
                assert got_tag == tag
        finally:
            shipping.release_segment(segment)
        assert segment_is_gone(segment.name)

    def test_buffers_are_aligned(self):
        headers, segment = shipping.ship_jobs(summarize_arrays, sample_jobs())
        try:
            for header in headers:
                for offset, _ in header.buffers:
                    assert offset % 64 == 0
        finally:
            shipping.release_segment(segment)

    def test_release_is_reentrant(self):
        headers, segment = shipping.ship_jobs(summarize_arrays, sample_jobs())
        shipping.release_segment(segment)
        shipping.release_segment(segment)  # second release must not raise
        assert segment_is_gone(segment.name)


class TestExecutorShipping:
    def test_process_pool_ships_and_frees(self):
        jobs = sample_jobs(4)
        executor = ProcessExecutor(2)
        executor.ship_tasks.add(summarize_arrays)
        with executor:
            results = executor.map(summarize_arrays, jobs)
        assert [r[2] for r in results] == [f"job-{i}" for i in range(4)]
        assert executor.shipping.segments_created == 1
        assert executor.shipping.segments_reused == len(jobs) - 1
        assert executor.shipping.segments_freed == 1
        assert executor.shipping.active == []

    def test_env_kill_switch_falls_back_to_pickle(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHM", "0")
        assert not shipping.shipping_enabled()
        executor = ProcessExecutor(2)
        executor.ship_tasks.add(summarize_arrays)
        with executor:
            results = executor.map(summarize_arrays, sample_jobs(3))
        assert len(results) == 3
        assert executor.shipping.segments_created == 0

    def test_unlisted_tasks_use_pickle_transport(self):
        with ProcessExecutor(2) as executor:
            assert executor.map(abs, [-3, 1, -2]) == [3, 1, 2]
            assert executor.shipping.segments_created == 0

    def test_worker_crash_frees_the_segment(self):
        executor = ProcessExecutor(2)
        executor.ship_tasks.add(crash_hard)
        jobs = sample_jobs(3)
        with executor:
            stream = executor.imap(crash_hard, jobs)
            assert executor.shipping.active, "dispatch should be live"
            name = executor.shipping.active[0]
            with pytest.raises(Exception):  # BrokenProcessPool
                list(stream)
        assert executor.shipping.segments_freed == 1
        assert executor.shipping.active == []
        assert segment_is_gone(name)


def shipping_workload():
    published = build_synthetic_release(
        480, qi_domain_sizes=(40, 30, 20, 10), n_sa_values=6, l=5
    )
    space = GroupVariableSpace(published)
    system = data_constraints(space)
    system.extend(
        compile_statements(per_bucket_statements(published), space)
    )
    return space, system


class TestEngineIntegration:
    @pytest.mark.parametrize("start_method", [None, "spawn"])
    def test_engine_solve_over_shared_memory(self, start_method):
        space, system = shipping_workload()
        config = MaxEntConfig(
            raise_on_infeasible=False, batch_components=512,
            batch_max_vars=512, executor="process", workers=2,
        )
        baseline = PrivacyEngine(cache_size=0).solve(space, system, config)
        executor = ProcessExecutor(2, start_method=start_method)
        with PrivacyEngine(executor=executor, cache_size=0) as engine:
            solution = engine.solve(space, system, config)
            stats = engine.stats()
        assert np.abs(solution.p - baseline.p).max() <= 100 * config.tol
        assert stats["shipping"]["segments_created"] >= 1
        assert stats["shipping"]["segments_created"] == (
            stats["shipping"]["segments_freed"]
        )
        assert stats["shipping"]["segments_reused"] >= 1
        assert stats["shipping"]["active_segments"] == 0
        assert executor.shipping.active == []

    def test_serial_engine_reports_zero_counters(self):
        stats = PrivacyEngine().stats()
        assert stats["shipping"] == {
            "segments_created": 0,
            "segments_reused": 0,
            "segments_freed": 0,
            "active_segments": 0,
        }


class TestHeaderShape:
    def test_header_pickles_small(self):
        jobs = sample_jobs(2)
        headers, segment = shipping.ship_jobs(summarize_arrays, jobs)
        try:
            payload_bytes = sum(
                len(pickle.dumps(h)) for h in headers
            )
            array_bytes = sum(
                a.nbytes + b.nbytes for a, b, _ in jobs
            )
            # The point of the transport: headers are tiny next to the
            # array payload that now rides shared memory.
            assert payload_bytes < array_bytes
        finally:
            shipping.release_segment(segment)
