"""Unit tests for Estimation Accuracy and the KL helpers."""

import math

import numpy as np
import pytest

from repro.core.accuracy import estimation_accuracy, joint_kl, per_tuple_accuracy
from repro.core.privacy_maxent import PrivacyMaxEnt
from repro.core.quantifier import PosteriorTable
from repro.data.paper_example import S1, paper_published, paper_table
from repro.errors import ReproError
from repro.knowledge.statements import ConditionalProbability


@pytest.fixture(scope="module")
def truth():
    return PosteriorTable.from_table(paper_table())


class TestEstimationAccuracy:
    def test_self_distance_zero(self, truth):
        assert estimation_accuracy(truth, truth) == pytest.approx(0.0)

    def test_positive_for_baseline(self, truth):
        baseline = PrivacyMaxEnt(paper_published()).posterior()
        assert estimation_accuracy(truth, baseline) > 0

    def test_knowledge_improves_estimate(self, truth):
        """The paper's headline: more background knowledge, lower accuracy
        value (the adversary's estimate approaches the truth)."""
        baseline = PrivacyMaxEnt(paper_published()).posterior()
        informed = PrivacyMaxEnt(
            paper_published(),
            knowledge=[
                ConditionalProbability(
                    given={"gender": "male"}, sa_value=S1, probability=0.0
                )
            ],
        ).posterior()
        assert estimation_accuracy(truth, informed) < estimation_accuracy(
            truth, baseline
        )

    def test_hand_computed_value(self, truth):
        """Check the weighted-KL formula against a by-hand sum."""
        estimate = PrivacyMaxEnt(paper_published()).posterior()
        total = 0.0
        for i, q in enumerate(truth.qi_tuples):
            weight = truth.weights[i]
            for j, s in enumerate(truth.sa_domain):
                p = truth.matrix[i, j]
                if p > 0:
                    total += weight * p * math.log2(p / estimate.prob(q, s))
        assert estimation_accuracy(truth, estimate) == pytest.approx(total)

    def test_infinite_when_estimate_misses_support(self, truth):
        rows = len(truth.qi_tuples)
        cols = len(truth.sa_domain)
        matrix = np.zeros((rows, cols))
        matrix[:, 0] = 1.0  # point mass on one SA value
        broken = PosteriorTable(truth.qi_tuples, truth.sa_domain, matrix, truth.weights)
        assert math.isinf(estimation_accuracy(truth, broken))

    def test_base_parameter_scales(self, truth):
        baseline = PrivacyMaxEnt(paper_published()).posterior()
        bits = estimation_accuracy(truth, baseline, base=2.0)
        nats = estimation_accuracy(truth, baseline, base=math.e)
        assert bits == pytest.approx(nats / math.log(2))


class TestPerTupleAccuracy:
    def test_breakdown_sums_to_total(self, truth):
        baseline = PrivacyMaxEnt(paper_published()).posterior()
        breakdown = per_tuple_accuracy(truth, baseline)
        weighted = sum(
            truth.weight(q) * value for q, value in breakdown.items()
        )
        assert weighted == pytest.approx(estimation_accuracy(truth, baseline))

    def test_fully_disclosed_tuple_has_zero_distance(self, truth):
        informed = PrivacyMaxEnt(
            paper_published(),
            knowledge=[
                ConditionalProbability(
                    given={"gender": "male"}, sa_value=S1, probability=0.0
                )
            ],
        ).posterior()
        breakdown = per_tuple_accuracy(truth, informed)
        # Grace (female, junior) is fully determined -> KL = 0 there.
        assert breakdown[("female", "junior")] == pytest.approx(0.0, abs=1e-6)


class TestJointKL:
    def test_identical_zero(self):
        joint = {("q", "s", 0): 0.4, ("q", "s", 1): 0.6}
        assert joint_kl(joint, joint) == pytest.approx(0.0)

    def test_missing_support_infinite(self):
        p = {("q", "s", 0): 1.0}
        q = {("q", "t", 0): 1.0}
        assert math.isinf(joint_kl(p, q))

    def test_known_value(self):
        p = {("a",): 1.0}
        q = {("a",): 0.5, ("b",): 0.5}
        assert joint_kl(p, q) == pytest.approx(1.0)  # 1 bit
