"""Unit tests for association-rule mining."""

from collections import Counter

import pytest

from repro.data.paper_example import paper_table
from repro.errors import KnowledgeError
from repro.knowledge.mining import MiningConfig, mine_association_rules
from repro.knowledge.rules import NegativeRule, PositiveRule


class TestMiningConfig:
    def test_defaults(self):
        config = MiningConfig()
        assert config.min_support_count == 3  # the paper's setting

    def test_invalid_support(self):
        with pytest.raises(Exception):
            MiningConfig(min_support_count=0)

    def test_empty_sizes_rejected(self):
        with pytest.raises(KnowledgeError):
            MiningConfig(antecedent_sizes=())

    def test_bad_confidence(self):
        with pytest.raises(KnowledgeError):
            MiningConfig(min_confidence=1.5)


class TestMiningOnPaperExample:
    """Hand-verifiable counts on the 10-record Figure 1 table."""

    @pytest.fixture(scope="class")
    def rules(self):
        return mine_association_rules(
            paper_table(),
            MiningConfig(min_support_count=1, max_antecedent=2),
        )

    def find(self, rules, antecedent, sa_value):
        for rule in rules:
            if rule.antecedent == antecedent and rule.sa_value == sa_value:
                return rule
        return None

    def test_flu_given_male(self, rules):
        # 3 of 6 males have Flu: P(Flu | male) = 0.5.
        rule = self.find(rules.positive, {"gender": "male"}, "Flu")
        assert rule is not None
        assert rule.confidence == pytest.approx(0.5)
        assert rule.support == pytest.approx(3 / 10)
        assert rule.antecedent_count == 6

    def test_breast_cancer_negative_for_male(self, rules):
        # No male has Breast Cancer: the paper's canonical negative rule.
        rule = self.find(rules.negative, {"gender": "male"}, "Breast Cancer")
        assert rule is not None
        assert rule.confidence == pytest.approx(1.0)
        assert rule.support == pytest.approx(6 / 10)

    def test_two_attribute_antecedent(self, rules):
        # q1 = (male, college): 3 records, 1 with Pneumonia.
        rule = self.find(
            rules.positive,
            {"gender": "male", "degree": "college"},
            "Pneumonia",
        )
        assert rule is not None
        assert rule.confidence == pytest.approx(1 / 3)
        assert rule.antecedent_count == 3

    def test_sorted_by_confidence(self, rules):
        confidences = [r.confidence for r in rules.positive]
        assert confidences == sorted(confidences, reverse=True)
        confidences = [r.confidence for r in rules.negative]
        assert confidences == sorted(confidences, reverse=True)

    def test_rule_types(self, rules):
        assert all(isinstance(r, PositiveRule) for r in rules.positive)
        assert all(isinstance(r, NegativeRule) for r in rules.negative)

    def test_restricted_to_size(self, rules):
        only_one = rules.restricted_to_size(1)
        assert all(r.size == 1 for r in only_one.positive)
        assert all(r.size == 1 for r in only_one.negative)
        assert only_one.n_positive < rules.n_positive


class TestSupportThreshold:
    def test_min_support_filters(self):
        strict = mine_association_rules(
            paper_table(), MiningConfig(min_support_count=3, max_antecedent=1)
        )
        for rule in strict.positive:
            assert rule.support * 10 >= 3 - 1e-9

    def test_min_confidence_filters(self):
        rules = mine_association_rules(
            paper_table(),
            MiningConfig(
                min_support_count=1, max_antecedent=1, min_confidence=0.5
            ),
        )
        assert all(r.confidence >= 0.5 for r in rules.positive)
        assert all(r.confidence >= 0.5 for r in rules.negative)


class TestConsistencyWithData:
    """Every mined rule must reproduce exact empirical frequencies."""

    def test_confidence_times_antecedent_is_integer(self, adult_small):
        rules = mine_association_rules(
            adult_small, MiningConfig(min_support_count=3, max_antecedent=2)
        )
        for rule in list(rules.positive)[:200]:
            joint = rule.confidence * rule.antecedent_count
            assert abs(joint - round(joint)) < 1e-9

    def test_counts_match_table(self, adult_small):
        rules = mine_association_rules(
            adult_small, MiningConfig(min_support_count=3, max_antecedent=1)
        )
        sexes = adult_small.labels("sex")
        educations = adult_small.labels("education")
        male_hs = sum(
            1 for s, e in zip(sexes, educations)
            if s == "Male" and e == "HS-grad"
        )
        males = sexes.count("Male")
        for rule in rules.positive:
            if rule.antecedent == {"sex": "Male"} and rule.sa_value == "HS-grad":
                assert rule.confidence == pytest.approx(male_hs / males)
                assert rule.antecedent_count == males
                break
        else:
            pytest.fail("expected the (sex=Male => HS-grad) rule")

    def test_antecedent_sizes_filter(self, adult_small):
        rules = mine_association_rules(
            adult_small,
            MiningConfig(min_support_count=3, antecedent_sizes=(2,)),
        )
        sizes = Counter(r.size for r in rules.positive)
        assert set(sizes) == {2}

    def test_empty_table_rejected(self, paper_schema_fixture):
        from repro.data.table import Table

        empty = Table.from_records(paper_schema_fixture, [])
        with pytest.raises(KnowledgeError):
            mine_association_rules(empty)
