"""Seeded fault injection: the elastic cluster's claims, proven under fire.

Every test here drives *real* worker subprocesses through deterministic
fault schedules (:mod:`repro.cluster.chaos`): connections refused,
responses cut mid-flight, latency spikes, SIGKILL and respawn with the
same persisted identity.  The invariants asserted are the robustness
acceptance bar for the elastic cluster:

- zero failed client requests while workers die, join, and return;
- no duplicate cache entries (each distinct component fingerprint is
  looked up and cached exactly once, engine side);
- posteriors bit-identical (scatter path) or within 1e-10 (service
  path) to a single-engine run;
- a respawned worker with a persisted identity reclaims its rendezvous
  slot without a re-routing storm (``moved == 0`` in the rebalance
  record).

Fault schedules are seeded, so a run that passes passes every time —
the decision logs say exactly what was injected.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.cluster import (
    ClusterCoordinator,
    ClusterError,
    ClusterExecutor,
    MembershipConfig,
    ShardedFrontend,
)
from repro.cluster.chaos import ChaosProxy, FaultSchedule, WorkerProcess
from repro.core.privacy_maxent import PrivacyMaxEnt
from repro.data.paper_example import Q4, S1, paper_published
from repro.engine.engine import PrivacyEngine
from repro.engine.fingerprint import component_fingerprint
from repro.experiments.workloads import (
    build_synthetic_release,
    per_bucket_statements,
)
from repro.knowledge.compiler import compile_statements
from repro.knowledge.statements import ConditionalProbability
from repro.maxent.config import MaxEntConfig
from repro.maxent.constraints import ConstraintSystem, data_constraints
from repro.maxent.decompose import decompose
from repro.maxent.indexing import GroupVariableSpace
from repro.service import BackgroundService, ServiceClient, ServiceConfig

# Bitwise replay: the scatter tests prove fault tolerance by
# bit-comparing posteriors, which only the per-component path promises.
CONFIG = MaxEntConfig(raise_on_infeasible=False, replay="bitwise")

#: One seed for the whole suite — date of the paper's conference run.
SEED = 20080612


def wait_for(predicate, *, timeout: float = 30.0, message: str = "condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.05)
    pytest.fail(f"timed out after {timeout}s waiting for {message}")


@pytest.fixture()
def workload():
    published = build_synthetic_release(
        480, qi_domain_sizes=(40, 30, 20, 10), n_sa_values=8, l=8
    )
    space = GroupVariableSpace(published)
    system = ConstraintSystem(space.n_vars)
    system.extend(data_constraints(space))
    system.extend(compile_statements(per_bucket_statements(published), space))
    return space, system


def _unique_numeric_fingerprints(space, system) -> set[str]:
    components = decompose(space, system)
    return {
        component_fingerprint(c.system, c.mass, CONFIG.solve_key())
        for c in components
        if not c.is_irrelevant
    }


class TestFaultSchedule:
    def test_same_seed_replays_the_same_decisions(self):
        schedule = FaultSchedule(SEED, refuse=0.2, reset=0.2, delay=0.2)
        drawn = [schedule.next_fault() for _ in range(64)]
        assert drawn == schedule.decisions
        assert schedule.replay(64) == drawn
        twin = FaultSchedule(SEED, refuse=0.2, reset=0.2, delay=0.2)
        assert [twin.next_fault() for _ in range(64)] == drawn

    def test_rates_partition_the_draw(self):
        assert set(FaultSchedule(SEED, refuse=1.0).replay(16)) == {"refuse"}
        assert set(FaultSchedule(SEED, delay=1.0).replay(16)) == {"delay"}
        assert set(FaultSchedule(SEED).replay(16)) == {"pass"}
        mixed = FaultSchedule(SEED, refuse=0.3, reset=0.3, delay=0.3)
        counts = dict.fromkeys(("refuse", "reset", "delay", "pass"), 0)
        for kind in mixed.replay(200):
            counts[kind] += 1
        assert all(counts.values())  # every branch reachable

    def test_invalid_rates_raise(self):
        with pytest.raises(ClusterError, match="must be in"):
            FaultSchedule(SEED, refuse=1.2)
        with pytest.raises(ClusterError, match="sum to at most 1"):
            FaultSchedule(SEED, refuse=0.6, reset=0.6)

    def test_counts_tally_the_log(self):
        schedule = FaultSchedule(SEED, refuse=0.5)
        for _ in range(40):
            schedule.next_fault()
        counts = schedule.counts()
        assert sum(counts.values()) == 40
        assert set(counts) <= {"refuse", "pass"}


class TestScatterUnderFire:
    def test_wire_faults_cannot_corrupt_or_duplicate_solves(self, workload):
        """Refusals, mid-response resets and latency spikes on one
        worker's wire: the gathered posterior stays bit-identical to a
        single engine's and no fingerprint is cached twice."""
        space, system = workload
        baseline = PrivacyEngine(cache_size=0).solve(space, system, CONFIG)
        unique = _unique_numeric_fingerprints(space, system)
        assert len(unique) > 20

        schedule = FaultSchedule(
            SEED, refuse=0.15, reset=0.10, delay=0.10, delay_seconds=0.02
        )
        with WorkerProcess(worker_id="chaos0") as clean, WorkerProcess(
            worker_id="chaos1"
        ) as victim:
            clean.spawn()
            victim.spawn()
            with ChaosProxy(
                victim.host, victim.port, schedule
            ) as proxy:
                coordinator = ClusterCoordinator.attach(
                    f"chaos0@{clean.address},chaos1@{proxy.address}",
                    chunk_size=4,
                )
                try:
                    engine = PrivacyEngine(
                        executor=ClusterExecutor(coordinator),
                        cache_size=1024,
                    )
                    solution = engine.solve(space, system, CONFIG)
                finally:
                    coordinator.shutdown()

            # The proxy really was on the request path.
            assert proxy.connections > 0
            assert sum(schedule.counts().values()) == proxy.connections

            # Bit-identical despite whatever the schedule injected.
            assert np.array_equal(solution.p, baseline.p)
            assert solution.stats.converged == baseline.stats.converged

            # No duplicate cache entries: one miss and one stored entry
            # per distinct fingerprint, zero hits (nothing asked twice).
            assert engine.cache.misses == len(unique)
            assert engine.cache.hits == 0
            assert len(engine.cache) == len(unique)

    def test_latency_spikes_do_not_read_as_death(self, workload):
        """A slow wire is not a dead worker: with every connection
        delayed, the fleet stays fully alive and the result exact."""
        space, system = workload
        baseline = PrivacyEngine(cache_size=0).solve(space, system, CONFIG)
        schedule = FaultSchedule(SEED, delay=1.0, delay_seconds=0.05)
        with WorkerProcess(worker_id="slow0") as w0, WorkerProcess(
            worker_id="slow1"
        ) as w1:
            w0.spawn()
            w1.spawn()
            with ChaosProxy(w1.host, w1.port, schedule) as proxy:
                coordinator = ClusterCoordinator.attach(
                    f"slow0@{w0.address},slow1@{proxy.address}",
                    chunk_size=4,
                )
                try:
                    engine = PrivacyEngine(
                        executor=ClusterExecutor(coordinator), cache_size=0
                    )
                    solution = engine.solve(space, system, CONFIG)
                    assert coordinator.dead_ids() == []
                finally:
                    coordinator.shutdown()
            assert proxy.injected["delay"] == proxy.connections > 0
        assert np.array_equal(solution.p, baseline.p)


KNOWLEDGE = [
    ConditionalProbability(
        given={"gender": "male"}, sa_value=S1, probability=0.0
    )
]


class TestElasticFrontend:
    def test_kill_join_and_identity_respawn_with_zero_failed_requests(
        self, tmp_path
    ):
        """The flagship drill: a release keeps serving while its owner
        is SIGKILLed, a replica is promoted, and the owner respawns on
        a new port with its persisted identity — every client request
        succeeds and the rejoin rebalance moves zero keys."""
        expected = PrivacyMaxEnt(
            paper_published(), knowledge=KNOWLEDGE
        ).posterior()
        membership = MembershipConfig.from_env(
            heartbeat_interval=0.2, liveness_timeout=1.2, replication=2
        )
        coordinator = ClusterCoordinator([], allow_empty=True)
        service = ShardedFrontend(
            ServiceConfig(port=0),
            coordinator=coordinator,
            owns_coordinator=True,
            membership=membership,
            accept_joins=True,
        )
        with BackgroundService(service) as background:
            join_target = f"127.0.0.1:{background.port}"
            workers = [
                WorkerProcess(
                    identity_file=str(tmp_path / f"worker{i}.id"),
                    join=[join_target],
                )
                for i in range(2)
            ]
            try:
                for worker in workers:
                    worker.spawn()
                wait_for(
                    lambda: len(coordinator.alive_ids()) == 2,
                    message="both workers to join the front-end",
                )
                by_id = {
                    (tmp_path / f"worker{i}.id").read_text().strip(): w
                    for i, w in enumerate(workers)
                }
                assert set(by_id) == set(coordinator.router.worker_ids)

                with ServiceClient(port=background.port) as client:
                    client.wait_until_healthy(timeout=15)
                    release_id = client.register(
                        paper_published(), name="paper"
                    )
                    baseline = client.posterior(release_id, KNOWLEDGE)
                    assert baseline.posterior.prob(Q4, S1) == pytest.approx(
                        expected.prob(Q4, S1), abs=1e-10
                    )
                    summary = client.release(release_id)
                    owner = summary["shard"]
                    # K=2 over a 2-worker fleet: both hold the release.
                    assert set(summary["replicas"]) | {owner} == set(by_id)

                    # -- SIGKILL the owner; serving must not blink. ----
                    by_id[owner].kill()
                    survived = client.posterior(release_id, KNOWLEDGE)
                    assert survived.posterior.prob(
                        Q4, S1
                    ) == pytest.approx(expected.prob(Q4, S1), abs=1e-10)
                    assert client.release(release_id)["shard"] != owner
                    assert (
                        coordinator.events.counts().get(
                            "release_promoted", 0
                        )
                        >= 1
                    )
                    # The liveness sweep notices the silence too.
                    wait_for(
                        lambda: owner in coordinator.dead_ids(),
                        message="heartbeat sweep to expire the victim",
                    )

                    # -- Respawn with the same identity, new port. -----
                    rebalances_before = coordinator.events.counts().get(
                        "rebalance", 0
                    )
                    by_id[owner].respawn()
                    wait_for(
                        lambda: owner in coordinator.alive_ids(),
                        message="respawned worker to rejoin",
                    )
                    wait_for(
                        lambda: coordinator.events.counts().get(
                            "rebalance", 0
                        )
                        > rebalances_before,
                        message="the rejoin rebalance to run",
                    )
                    rejoin_rebalances = [
                        event
                        for event in coordinator.events.recent()
                        if event["kind"] == "rebalance"
                        and event["worker"] == owner
                    ]
                    assert rejoin_rebalances
                    # No re-routing storm: the returning identity's keys
                    # never moved — at most reseeded onto the fresh
                    # (empty-store) process.
                    for event in rejoin_rebalances:
                        assert event["moved"] == 0

                    # Every request in this test succeeded; one more
                    # after the dust settles, still exact.
                    final = client.posterior(release_id, KNOWLEDGE)
                    assert final.posterior.prob(Q4, S1) == pytest.approx(
                        expected.prob(Q4, S1), abs=1e-10
                    )
            finally:
                for worker in workers:
                    worker.close()

    def test_client_requests_all_succeed_through_flaky_owner_wire(self):
        """Satellite 6's regression drill: with the owner's wire
        refusing and cutting connections, the front-end's retry policy
        and replica promotion keep every client request successful."""
        schedule = FaultSchedule(
            SEED, refuse=0.2, reset=0.1, delay=0.1, delay_seconds=0.02
        )
        with WorkerProcess(worker_id="flaky0") as w0, WorkerProcess(
            worker_id="flaky1"
        ) as w1:
            w0.spawn()
            w1.spawn()
            with ChaosProxy(w1.host, w1.port, schedule) as proxy:
                coordinator = ClusterCoordinator.attach(
                    f"flaky0@{w0.address},flaky1@{proxy.address}"
                )
                service = ShardedFrontend(
                    ServiceConfig(port=0),
                    coordinator=coordinator,
                    owns_coordinator=True,
                )
                with BackgroundService(service) as background:
                    with ServiceClient(port=background.port) as client:
                        client.wait_until_healthy(timeout=15)
                        release_id = client.register(
                            paper_published(), name="paper"
                        )
                        expected = PrivacyMaxEnt(
                            paper_published(), knowledge=KNOWLEDGE
                        ).posterior()
                        # Every round trip below crosses the faulty
                        # wire whenever routing picks the proxied
                        # worker (repeats hit its result cache, still
                        # over the wire) — and every one must succeed.
                        for _ in range(8):
                            result = client.posterior(
                                release_id, KNOWLEDGE
                            )
                            assert result.posterior.prob(
                                Q4, S1
                            ) == pytest.approx(
                                expected.prob(Q4, S1), abs=1e-10
                            )
                            assert (
                                client.release(release_id)["shard"]
                                in coordinator.router.worker_ids
                            )
            # The drill only proves something if the wire really failed.
            counts = schedule.counts()
            assert proxy.connections > 0
            assert counts.get("refuse", 0) + counts.get("reset", 0) >= 1
