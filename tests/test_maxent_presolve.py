"""Unit tests for the constraint presolver."""

import numpy as np
import pytest

from repro.errors import InfeasibleKnowledgeError
from repro.maxent.constraints import ConstraintSystem
from repro.maxent.presolve import presolve


def system_of(n_vars, equalities=(), inequalities=()):
    system = ConstraintSystem(n_vars)
    for indices, coefficients, rhs in equalities:
        system.add_equality(indices, coefficients, rhs, kind="bk")
    for indices, coefficients, rhs in inequalities:
        system.add_inequality(indices, coefficients, rhs, kind="bk")
    return system


class TestFixing:
    def test_single_variable_row_fixes(self):
        result = presolve(system_of(3, [([0], [1.0], 0.25)]))
        assert result.fixed_values == {0: 0.25}
        assert list(result.free_vars) == [1, 2]
        assert result.system.n_equalities == 0

    def test_zero_rhs_positive_row_fixes_all(self):
        result = presolve(system_of(3, [([0, 1], [1.0, 1.0], 0.0)]))
        assert result.fixed_values == {0: 0.0, 1: 0.0}

    def test_cascade(self):
        # Row 1 fixes x0; substituting into row 2 makes it single-variable.
        result = presolve(
            system_of(
                3,
                [
                    ([0], [1.0], 0.2),
                    ([0, 1], [1.0, 1.0], 0.5),
                ],
            )
        )
        assert result.fixed_values[0] == pytest.approx(0.2)
        assert result.fixed_values[1] == pytest.approx(0.3)

    def test_restore(self):
        result = presolve(system_of(3, [([1], [2.0], 0.5)]))
        full = result.restore(np.array([0.1, 0.2]))
        assert full.tolist() == [0.1, 0.25, 0.2]

    def test_restore_shape_checked(self):
        result = presolve(system_of(3, [([1], [1.0], 0.5)]))
        with pytest.raises(ValueError):
            result.restore(np.zeros(5))

    def test_mass_removed(self):
        result = presolve(system_of(3, [([0], [1.0], 0.25)]))
        assert result.mass_removed == pytest.approx(0.25)


class TestInfeasibility:
    def test_contradictory_fixes(self):
        with pytest.raises(InfeasibleKnowledgeError):
            presolve(
                system_of(2, [([0], [1.0], 0.2), ([0], [1.0], 0.4)])
            )

    def test_negative_forced_value(self):
        with pytest.raises(InfeasibleKnowledgeError):
            presolve(system_of(2, [([0], [1.0], -0.2)]))

    def test_value_above_one(self):
        with pytest.raises(InfeasibleKnowledgeError):
            presolve(system_of(2, [([0], [1.0], 1.5)]))

    def test_empty_row_nonzero_rhs(self):
        # x0 = 0.2 substituted into (x0 = 0.5-with-no-other-vars).
        with pytest.raises(InfeasibleKnowledgeError):
            presolve(
                system_of(
                    2, [([0], [1.0], 0.2), ([0], [2.0], 1.0)]
                )
            )

    def test_duplicate_rows_conflicting(self):
        with pytest.raises(InfeasibleKnowledgeError):
            presolve(
                system_of(
                    3,
                    [
                        ([0, 1], [1.0, 1.0], 0.5),
                        ([0, 1], [1.0, 1.0], 0.7),
                    ],
                )
            )

    def test_inequality_infeasible_after_substitution(self):
        # x0 fixed to 0.5; inequality x0 <= 0.1 becomes 0 <= -0.4.
        with pytest.raises(InfeasibleKnowledgeError):
            presolve(
                system_of(
                    2,
                    [([0], [1.0], 0.5)],
                    [([0], [1.0], 0.1)],
                )
            )


class TestReduction:
    def test_duplicate_rows_deduped(self):
        result = presolve(
            system_of(
                3,
                [
                    ([0, 1], [1.0, 1.0], 0.5),
                    ([0, 1], [1.0, 1.0], 0.5),
                ],
            )
        )
        assert result.system.n_equalities == 1

    def test_rows_reindexed(self):
        result = presolve(
            system_of(
                4,
                [
                    ([1], [1.0], 0.25),
                    ([1, 2, 3], [1.0, 1.0, 1.0], 0.75),
                ],
            )
        )
        assert list(result.free_vars) == [0, 2, 3]
        row = result.system.equalities[0]
        # Variables 2, 3 became reduced indices 1, 2.
        assert sorted(row.indices.tolist()) == [1, 2]
        assert row.rhs == pytest.approx(0.5)

    def test_inequality_substitution(self):
        result = presolve(
            system_of(
                3,
                [([0], [1.0], 0.2)],
                [([0, 1], [1.0, 1.0], 0.5)],
            )
        )
        row = result.system.inequalities[0]
        assert row.rhs == pytest.approx(0.3)

    def test_zero_rhs_positive_inequality_fixes(self):
        result = presolve(system_of(3, [], [([0, 1], [1.0, 1.0], 0.0)]))
        assert result.fixed_values == {0: 0.0, 1: 0.0}

    def test_no_op_on_clean_system(self):
        system = system_of(3, [([0, 1, 2], [1.0, 1.0, 1.0], 1.0)])
        result = presolve(system)
        assert result.fixed_values == {}
        assert result.system.n_equalities == 1
        assert result.n_free == 3


class TestPaperDeduction:
    """Presolve alone reproduces the breast-cancer chain of Section 3.1.

    With P(s1 | q2) = 0 and P(s1 or s2 | q3) = 0 known, the paper deduces
    that in bucket 1 q3 maps to s3, q2 maps to s2, and the q1 records take
    s1 and s2.  Those zero rules pin enough variables that presolve fixes
    bucket 1 almost completely.
    """

    def test_zero_rules_cascade(self):
        from repro.data.paper_example import (
            Q2,
            Q3,
            S1,
            S2,
            S3,
            paper_published,
        )
        from repro.knowledge.compiler import compile_statements
        from repro.knowledge.statements import ConditionalProbability
        from repro.maxent.constraints import data_constraints
        from repro.maxent.indexing import GroupVariableSpace

        space = GroupVariableSpace(paper_published())
        system = data_constraints(space)
        knowledge = compile_statements(
            [
                ConditionalProbability(
                    given={"gender": "female", "degree": "college"},
                    sa_value=S1,
                    probability=0.0,
                ),
                ConditionalProbability(
                    given={"gender": "male", "degree": "high school"},
                    sa_value=S1,
                    probability=0.0,
                ),
                ConditionalProbability(
                    given={"gender": "male", "degree": "high school"},
                    sa_value=S2,
                    probability=0.0,
                ),
            ],
            space,
        )
        system.extend(knowledge)
        result = presolve(system)
        # q3 -> s3 in bucket 1: P(q3, s3, 1) forced to 1/10.
        var = space.index_of(Q3, S3, 0)
        assert result.fixed_values.get(var) == pytest.approx(0.1)
        # q2 -> s2 in bucket 1: P(q2, s2, 1) forced to 1/10.
        var = space.index_of(Q2, S2, 0)
        assert result.fixed_values.get(var) == pytest.approx(0.1)
