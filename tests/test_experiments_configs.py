"""Tests for experiment configurations, incl. the paper-scale factories."""

import pytest

from repro.experiments.figures import (
    Figure5Config,
    Figure6Config,
    Figure7aConfig,
    Figure7bcConfig,
    scaled_config,
)


class TestPaperScaleFactories:
    def test_figure5_full_size(self):
        config = Figure5Config.paper_scale()
        assert config.n_records == 14210
        assert config.max_k == 150_000

    def test_figure6_all_sizes(self):
        config = Figure6Config.paper_scale()
        assert config.sizes == (1, 2, 3, 4, 5, 6, 7, 8)
        assert config.n_records == 14210

    def test_figure7a_constraint_decades(self):
        config = Figure7aConfig.paper_scale()
        assert max(config.constraint_counts) == 1_000_000

    def test_figure7bc_paper_buckets(self):
        config = Figure7bcConfig.paper_scale()
        assert 2842 in config.bucket_counts
        assert 10_000 in config.knowledge_sizes

    def test_perf_configs_disable_decomposition(self):
        # Section 7: "we have not applied the optimization techniques".
        assert Figure7aConfig().solver.decompose is False
        assert Figure7bcConfig().solver.decompose is False
        # And force numeric solving so the 0-knowledge series costs time.
        assert Figure7bcConfig().solver.use_closed_form is False

    def test_accuracy_configs_keep_decomposition(self):
        # Figures 5/6 report accuracy, not time; decomposition changes
        # nothing about the solution and keeps the sweep fast.
        assert Figure5Config().solver.decompose is True
        assert Figure6Config().solver.decompose is True


class TestScaledConfig:
    def test_replaces_fields(self):
        config = scaled_config(Figure5Config(), n_records=123, max_k=7)
        assert config.n_records == 123
        assert config.max_k == 7
        assert config.l == Figure5Config().l

    def test_rejects_unknown_fields(self):
        with pytest.raises(TypeError):
            scaled_config(Figure5Config(), banana=1)
