"""Tests for solve-cache persistence (warm restarts via cache_path)."""

import pickle
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.core.privacy_maxent import PrivacyMaxEnt
from repro.data.paper_example import S2, paper_published
from repro.engine import PrivacyEngine
from repro.errors import ReproError
from repro.knowledge.statements import ConditionalProbability
from repro.maxent.config import MaxEntConfig

KNOWLEDGE = [
    ConditionalProbability(given={"gender": "male"}, sa_value=S2, probability=0.3)
]


def solve_once(engine):
    quantifier = PrivacyMaxEnt(
        paper_published(), knowledge=KNOWLEDGE, engine=engine
    )
    return quantifier.solve(force=True)


class TestSaveLoad:
    def test_round_trip_warms_a_new_engine(self, tmp_path):
        path = tmp_path / "cache.pkl"
        with PrivacyEngine(cache_path=path) as cold:
            first = solve_once(cold)
            assert first.stats.cache_hits == 0
            saved = cold.save_cache()
            assert saved == len(cold.cache) > 0
        assert path.exists()

        with PrivacyEngine(cache_path=path) as warm:
            assert len(warm.cache) == saved
            second = solve_once(warm)
            assert second.stats.cache_hits > 0
            np.testing.assert_array_equal(second.p, first.p)

    def test_close_persists_automatically(self, tmp_path):
        path = tmp_path / "auto.pkl"
        engine = PrivacyEngine(cache_path=path)
        solve_once(engine)
        assert not path.exists()
        engine.close()
        assert path.exists()
        with open(path, "rb") as handle:
            payload = pickle.load(handle)
        assert payload["entries"]

    def test_from_config_uses_cache_path(self, tmp_path):
        path = tmp_path / "config.pkl"
        config = MaxEntConfig(cache_path=str(path))
        engine = PrivacyEngine.from_config(config)
        assert engine.cache_path == str(path)
        solve_once(engine)
        engine.close()
        warm = PrivacyEngine.from_config(config)
        assert len(warm.cache) > 0
        warm.close()

    def test_warm_starts_persist_too(self, tmp_path):
        path = tmp_path / "warm.pkl"
        with PrivacyEngine(cache_path=path) as engine:
            solve_once(engine)
            n_warm = len(engine.warm_starts)
        if n_warm:
            with PrivacyEngine(cache_path=path) as restored:
                assert len(restored.warm_starts) == n_warm

    def test_save_without_path_raises(self):
        engine = PrivacyEngine()
        with pytest.raises(ReproError, match="no cache path"):
            engine.save_cache()
        engine.close()


class TestResilience:
    def test_missing_file_is_a_cold_start(self, tmp_path):
        engine = PrivacyEngine(cache_path=tmp_path / "absent.pkl")
        assert len(engine.cache) == 0
        engine.close()

    def test_corrupt_file_is_a_cold_start(self, tmp_path):
        path = tmp_path / "corrupt.pkl"
        path.write_bytes(b"this is not a pickle")
        engine = PrivacyEngine(cache_path=path)
        assert len(engine.cache) == 0
        solve_once(engine)  # still fully functional
        engine.close()
        # ... and close() rewrote a healthy snapshot over the corruption.
        assert PrivacyEngine(cache_path=path).cache

    def test_wrong_format_tag_is_ignored(self, tmp_path):
        path = tmp_path / "stale.pkl"
        with open(path, "wb") as handle:
            pickle.dump({"format": "something-else", "entries": [("k", 1, 2)]}, handle)
        engine = PrivacyEngine(cache_path=path)
        assert len(engine.cache) == 0
        engine.close()

    def test_v1_snapshot_migrates(self, tmp_path):
        """A pre-contract (v1) snapshot loads: the entry layout is the
        same, and the stats records get their new fields defaulted."""
        path = tmp_path / "v1.pkl"
        with PrivacyEngine(cache_path=path) as old:
            first = solve_once(old)
            old.save_cache()
        with open(path, "rb") as handle:
            payload = pickle.load(handle)
        payload["format"] = "privacy-maxent-solve-cache/1"
        for _, _, stats in payload["entries"]:
            # A real v1 writer never pickled the post-v1 stats fields.
            stats.__dict__.pop("kernel_backend")
        with open(path, "wb") as handle:
            pickle.dump(payload, handle)

        with PrivacyEngine(cache_path=path) as warm:
            assert len(warm.cache) > 0
            second = solve_once(warm)
            assert second.stats.cache_hits > 0
            np.testing.assert_array_equal(second.p, first.p)
            for _, entry in warm.cache.items():
                assert entry.stats.kernel_backend == ""

    def test_unknown_cache_version_is_rejected(self, tmp_path):
        """A recognized-prefix, unknown-version snapshot must fail loudly
        instead of silently serving entries under a contract this build
        cannot vouch for."""
        path = tmp_path / "future.pkl"
        with PrivacyEngine(cache_path=path) as old:
            solve_once(old)
            old.save_cache()
        with open(path, "rb") as handle:
            payload = pickle.load(handle)
        payload["format"] = "privacy-maxent-solve-cache/99"
        with open(path, "wb") as handle:
            pickle.dump(payload, handle)

        with pytest.raises(ReproError, match="solve-result contract"):
            PrivacyEngine(cache_path=path)

    def test_disabled_cache_skips_persistence(self, tmp_path):
        path = tmp_path / "disabled.pkl"
        engine = PrivacyEngine(cache_size=0, cache_path=path)
        solve_once(engine)
        engine.close()
        assert not path.exists()

    def test_atomic_write_leaves_no_temp_files(self, tmp_path):
        path = tmp_path / "atomic.pkl"
        with PrivacyEngine(cache_path=path) as engine:
            solve_once(engine)
            engine.save_cache()
        leftovers = [p for p in tmp_path.iterdir() if p.name != "atomic.pkl"]
        assert leftovers == []


class TestAtexitPersistence:
    def test_shared_engine_saves_on_normal_exit(self, tmp_path):
        """A process using shared_engine persists its cache at exit."""
        path = tmp_path / "exit.pkl"
        src_dir = str(Path(__file__).resolve().parent.parent / "src")
        script = f"""
import sys
sys.path.insert(0, {src_dir!r})
from repro.core.privacy_maxent import PrivacyMaxEnt
from repro.data.paper_example import paper_published, S2
from repro.knowledge.statements import ConditionalProbability
from repro.maxent.config import MaxEntConfig

config = MaxEntConfig(cache_path={str(path)!r})
knowledge = [ConditionalProbability(given={{"gender": "male"}}, sa_value=S2, probability=0.3)]
PrivacyMaxEnt(paper_published(), knowledge=knowledge, config=config).solve()
"""
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 0, result.stderr
        assert path.exists()
        with PrivacyEngine(cache_path=path) as warm:
            assert len(warm.cache) > 0
