"""Unit tests for the solve_maxent façade and its configuration toggles."""

import numpy as np
import pytest

from repro.data.paper_example import paper_published
from repro.errors import InfeasibleKnowledgeError, ReproError
from repro.knowledge.compiler import compile_statements
from repro.knowledge.statements import ConditionalProbability, JointProbability
from repro.maxent.closed_form import closed_form_solution
from repro.maxent.constraints import data_constraints
from repro.maxent.indexing import GroupVariableSpace
from repro.maxent.solver import MaxEntConfig, drop_redundant_data_rows, solve_maxent


@pytest.fixture(scope="module")
def space():
    return GroupVariableSpace(paper_published())


def full_system(space, statements=()):
    system = data_constraints(space)
    if statements:
        system.extend(compile_statements(list(statements), space))
    return system


FLU_KNOWLEDGE = ConditionalProbability(
    given={"gender": "male"}, sa_value="Flu", probability=0.3
)


class TestConfig:
    def test_unknown_solver_rejected(self):
        with pytest.raises(ReproError):
            MaxEntConfig(solver="simplex")

    def test_bad_tol_rejected(self):
        with pytest.raises(ReproError):
            MaxEntConfig(tol=0)

    def test_bad_iterations_rejected(self):
        with pytest.raises(ReproError):
            MaxEntConfig(max_iterations=0)


class TestToggleEquivalence:
    """Every pipeline toggle must leave the solution unchanged."""

    @pytest.fixture(scope="class")
    def reference(self, space):
        system = full_system(space, [FLU_KNOWLEDGE])
        return solve_maxent(space, system, MaxEntConfig(tol=1e-9)).p

    @pytest.mark.parametrize(
        "config",
        [
            MaxEntConfig(decompose=False, tol=1e-9),
            MaxEntConfig(use_presolve=False, tol=1e-9),
            MaxEntConfig(use_closed_form=False, tol=1e-9),
            MaxEntConfig(drop_redundant=True, tol=1e-9),
            MaxEntConfig(solver="gis", tol=1e-9, max_iterations=50000),
            MaxEntConfig(solver="iis", tol=1e-9, max_iterations=50000),
            MaxEntConfig(solver="primal", tol=1e-7),
        ],
        ids=[
            "no-decompose",
            "no-presolve",
            "no-closed-form",
            "drop-redundant",
            "gis",
            "iis",
            "primal",
        ],
    )
    def test_same_solution(self, space, reference, config):
        system = full_system(space, [FLU_KNOWLEDGE])
        solution = solve_maxent(space, system, config)
        assert np.abs(solution.p - reference).max() < 2e-4

    def test_gis_without_presolve_unsupported_path(self, space):
        # GIS needs presolve to remove zero-target rows when zero-probability
        # knowledge is present; the façade surfaces a clear error.
        from repro.errors import NotSupportedError

        zero_rule = ConditionalProbability(
            given={"gender": "male"}, sa_value="Breast Cancer", probability=0.0
        )
        system = full_system(space, [zero_rule])
        with pytest.raises(NotSupportedError):
            solve_maxent(
                space,
                system,
                MaxEntConfig(solver="gis", use_presolve=False),
            )


class TestSolutionObject:
    def test_no_knowledge_equals_closed_form(self, space):
        solution = solve_maxent(space, full_system(space))
        assert np.allclose(solution.p, closed_form_solution(space))
        assert solution.stats.solver == "lbfgs"
        assert solution.stats.iterations == 0  # all closed-form components

    def test_joint_lookup(self, space):
        solution = solve_maxent(space, full_system(space))
        value = solution.joint(("male", "college"), "Flu", 0)
        assert value == pytest.approx(0.2 * 2 / 4)
        assert solution.joint(("male", "college"), "Flu", 2) == 0.0

    def test_joint_dict_covers_all_vars(self, space):
        solution = solve_maxent(space, full_system(space))
        assert len(solution.joint_dict()) == space.n_vars

    def test_total_mass(self, space):
        solution = solve_maxent(space, full_system(space, [FLU_KNOWLEDGE]))
        assert solution.total_mass() == pytest.approx(1.0, abs=1e-8)

    def test_component_records(self, space):
        solution = solve_maxent(space, full_system(space, [FLU_KNOWLEDGE]))
        buckets = sorted(b for r in solution.components for b in r.buckets)
        assert buckets == [0, 1, 2]

    def test_system_space_mismatch(self, space):
        from repro.maxent.constraints import ConstraintSystem

        with pytest.raises(ReproError):
            solve_maxent(space, ConstraintSystem(5))


class TestInfeasibility:
    def test_contradictory_knowledge_raises(self, space):
        statements = [
            JointProbability(
                given={"gender": "male"}, sa_value="Flu", probability=0.5
            ),
            JointProbability(
                given={"gender": "male"}, sa_value="Pneumonia", probability=0.4
            ),
        ]
        # Males have total mass 0.6 but these joints alone need 0.9.
        system = full_system(space, statements)
        with pytest.raises(InfeasibleKnowledgeError):
            solve_maxent(space, system)

    def test_raise_disabled_returns_unconverged(self, space):
        statements = [
            JointProbability(
                given={"gender": "male"}, sa_value="Flu", probability=0.5
            ),
            JointProbability(
                given={"gender": "male"}, sa_value="Pneumonia", probability=0.4
            ),
        ]
        system = full_system(space, statements)
        solution = solve_maxent(
            space, system, MaxEntConfig(raise_on_infeasible=False)
        )
        assert not solution.stats.converged


class TestDropRedundant:
    def test_removes_one_sa_row_per_bucket(self, space):
        system = full_system(space)
        filtered = drop_redundant_data_rows(space, system)
        assert (
            filtered.n_equalities
            == system.n_equalities - paper_published().n_buckets
        )

    def test_feasible_set_unchanged(self, space):
        system = full_system(space)
        filtered = drop_redundant_data_rows(space, system)
        p = closed_form_solution(space)
        assert filtered.residual(p) < 1e-12
