"""Executor backends and the PrivacyEngine facade.

The load-bearing property: serial, thread and process execution produce the
*same* MaxEntSolution — parallelism is pure wall-clock optimization.
"""

import numpy as np
import pytest

from repro.data.paper_example import paper_published
from repro.engine import (
    PrivacyEngine,
    build_plan,
    create_executor,
    shared_engine,
)
from repro.engine.executors import (
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
)
from repro.errors import ReproError
from repro.knowledge.compiler import compile_statements
from repro.knowledge.statements import ConditionalProbability
from repro.maxent.closed_form import closed_form_solution
from repro.maxent.config import MaxEntConfig
from repro.maxent.constraints import data_constraints
from repro.maxent.indexing import GroupVariableSpace
from tests.helpers import random_published

EXECUTORS = ("serial", "thread", "process")


def paper_instance():
    space = GroupVariableSpace(paper_published())
    system = data_constraints(space)
    system.extend(
        compile_statements(
            [
                ConditionalProbability(
                    given={"gender": "male"}, sa_value="Flu", probability=0.3
                )
            ],
            space,
        )
    )
    return space, system


def multi_component_instance():
    """A synthetic release whose knowledge touches several components.

    Statement probabilities are read off the closed-form joint, which is a
    feasible point of the data constraints — so the knowledge is feasible
    by construction while still forcing a numeric solve per touched
    component.
    """
    rng = np.random.default_rng(7)
    _, published, _ = random_published(
        rng, n_buckets=8, max_bucket_size=4, n_qi_values=4, n_sa_values=4
    )
    space = GroupVariableSpace(published)
    system = data_constraints(space)
    baseline = closed_form_solution(space)
    statements = []
    for q, s in (("q0", "s0"), ("q1", "s1"), ("q2", "s2")):
        matching = space.vars_matching({"q": q}, s)
        if matching.size == 0:
            continue
        probability = float(
            baseline[matching].sum() / space.qv_probability({"q": q})
        )
        statements.append(
            ConditionalProbability(
                given={"q": q}, sa_value=s, probability=probability
            )
        )
    assert len(statements) >= 2, "instance must couple several components"
    system.extend(compile_statements(statements, space))
    return space, system


class TestBackends:
    def test_map_preserves_order(self):
        for executor in (SerialExecutor(), ThreadExecutor(2)):
            with executor:
                assert executor.map(abs, [-3, 1, -2]) == [3, 1, 2]

    def test_process_map_preserves_order(self):
        with ProcessExecutor(2) as executor:
            assert executor.map(abs, [-3, 1, -2]) == [3, 1, 2]

    def test_single_item_skips_pool(self):
        executor = ThreadExecutor(2)
        assert executor.map(abs, [-5]) == [5]
        assert executor._pool is None  # lazy pool never created
        executor.close()

    def test_unknown_name_rejected(self):
        with pytest.raises(ReproError):
            create_executor("gpu")

    def test_bad_worker_count_rejected(self):
        with pytest.raises(ReproError):
            ThreadExecutor(0)

    def test_close_is_idempotent(self):
        executor = ThreadExecutor(2)
        executor.map(abs, [-1, -2])
        executor.close()
        executor.close()


class TestExecutorEquivalence:
    """All three backends must produce the same MaxEntSolution."""

    @pytest.mark.parametrize("instance", ["paper", "multi"])
    def test_same_solution(self, instance):
        space, system = (
            paper_instance() if instance == "paper" else multi_component_instance()
        )
        solutions = {}
        for name in EXECUTORS:
            with PrivacyEngine(executor=name, workers=2, cache_size=0) as eng:
                solutions[name] = eng.solve(
                    space, system, MaxEntConfig(raise_on_infeasible=False)
                )
        reference = solutions["serial"]
        for name in ("thread", "process"):
            other = solutions[name]
            assert np.abs(other.p - reference.p).max() < 1e-12
            assert other.stats.converged == reference.stats.converged
            assert other.stats.n_components == reference.stats.n_components
            assert [r.stats.converged for r in other.components] == [
                r.stats.converged for r in reference.components
            ]

    def test_parallel_timing_aggregates(self):
        space, system = multi_component_instance()
        with PrivacyEngine(executor="thread", workers=2, cache_size=0) as eng:
            solution = eng.solve(space, system)
        component_cpu = sum(
            r.stats.seconds
            for r in solution.components
            if r.stats.solver not in ("closed-form",)
        )
        assert solution.stats.cpu_seconds == pytest.approx(component_cpu)
        assert solution.stats.seconds > 0.0


class TestPlan:
    def test_classifies_closed_form_and_numeric(self):
        space, system = paper_instance()
        plan = build_plan(space, system, MaxEntConfig())
        assert plan.n_components == len(plan.closed_form) + len(plan.numeric)
        assert len(plan.numeric) >= 1  # the knowledge-coupled component
        assert len(plan.closed_form) >= 1  # untouched buckets
        assert "closed-form" in plan.describe()

    def test_closed_form_disabled_goes_numeric(self):
        space, system = paper_instance()
        plan = build_plan(
            space, system, MaxEntConfig(use_closed_form=False)
        )
        assert not plan.closed_form
        assert len(plan.numeric) == plan.n_components


class TestEngineFacade:
    def test_batched_closed_form_matches_eq9(self):
        space = GroupVariableSpace(paper_published())
        system = data_constraints(space)
        solution = PrivacyEngine().solve(space, system)
        assert np.allclose(solution.p, closed_form_solution(space))
        assert solution.stats.iterations == 0

    def test_from_config_reads_knobs(self):
        engine = PrivacyEngine.from_config(
            MaxEntConfig(executor="thread", workers=3, cache_size=5)
        )
        assert engine.executor_name == "thread"
        assert engine.cache.max_entries == 5
        engine.close()

    def test_shared_engine_reuses_instances(self):
        a = shared_engine(MaxEntConfig())
        b = shared_engine(MaxEntConfig())
        c = shared_engine(MaxEntConfig(cache_size=7))
        assert a is b
        assert a is not c

    def test_describe_mentions_counts(self):
        space, system = paper_instance()
        engine = PrivacyEngine(cache_size=4)
        engine.solve(space, system)
        text = engine.describe()
        assert "1 solve(s)" in text
        assert "cache hits" in text

    def test_count_lookup_outside_stored_buckets_is_zero(self):
        # Regression: querying only buckets below every stored pair must
        # return zeros, not crash on an empty lookup table.
        from repro.maxent.indexing import _gather_counts

        out = _gather_counts({(0, 5): 3}, np.array([0]), np.array([1]))
        assert out.tolist() == [0.0]

    def test_config_validates_engine_knobs(self):
        with pytest.raises(ReproError):
            MaxEntConfig(executor="gpu")
        with pytest.raises(ReproError):
            MaxEntConfig(workers=0)
        with pytest.raises(ReproError):
            MaxEntConfig(cache_size=-1)
