"""Unit tests for syntactic and semantic privacy metrics."""

import numpy as np
import pytest

from repro.anonymize.anatomy import anatomize
from repro.core.metrics import (
    alpha_k_anonymity,
    bayes_vulnerability,
    distinct_l_diversity,
    effective_l,
    entropy_l_diversity,
    expected_posterior_entropy,
    k_anonymity,
    max_disclosure,
    t_closeness,
    top_disclosures,
)
from repro.core.privacy_maxent import PrivacyMaxEnt
from repro.core.quantifier import PosteriorTable
from repro.data.paper_example import S1, paper_published, paper_table
from repro.knowledge.statements import ConditionalProbability


@pytest.fixture(scope="module")
def published():
    return paper_published()


@pytest.fixture(scope="module")
def baseline(published):
    return PrivacyMaxEnt(published).posterior()


class TestSyntacticMetrics:
    def test_k_anonymity_on_table(self):
        # The smallest QI group in Figure 1 is a singleton (e.g. q4).
        assert k_anonymity(paper_table()) == 1

    def test_distinct_l_diversity(self, published):
        assert distinct_l_diversity(published) == 2  # Flu repeats in bucket 1

    def test_entropy_l_diversity(self, published):
        value = entropy_l_diversity(published)
        # Bucket 1: distribution (1/4, 2/4, 1/4) -> H = 1.5 -> 2^1.5.
        assert value == pytest.approx(2 ** 1.5)

    def test_alpha_k(self, published):
        # Every bucket has >= 3 records and max SA frequency 2/4.
        assert alpha_k_anonymity(published, alpha=0.5, k=3)
        assert not alpha_k_anonymity(published, alpha=0.4, k=3)
        assert not alpha_k_anonymity(published, alpha=0.5, k=4)

    def test_t_closeness_bounds(self, published):
        value = t_closeness(published)
        assert 0.0 < value <= 1.0

    def test_t_closeness_single_bucket_is_zero(self):
        table = paper_table()
        published = anatomize(table, l=2, exempt="auto", seed=0)
        # A release with one bucket would have distance zero; instead check
        # monotonicity: the real release has positive distance.
        assert t_closeness(published) >= 0.0


class TestSemanticMetrics:
    def test_max_disclosure_baseline(self, baseline):
        # Grace's bucket gives P(s|q4) <= 1/3 without knowledge; the global
        # max over all (q, s) is 1/2 (e.g. Flu in bucket 1 for q3? check
        # bound only).
        assert 0 < max_disclosure(baseline) <= 1.0

    def test_knowledge_increases_disclosure(self, published, baseline):
        informed = PrivacyMaxEnt(
            published,
            knowledge=[
                ConditionalProbability(
                    given={"gender": "male"}, sa_value=S1, probability=0.0
                )
            ],
        ).posterior()
        assert max_disclosure(informed) > max_disclosure(baseline) - 1e-12
        assert max_disclosure(informed) == pytest.approx(1.0)  # Grace exposed

    def test_effective_l_inverse(self, baseline):
        assert effective_l(baseline) == pytest.approx(
            1.0 / max_disclosure(baseline)
        )

    def test_bayes_vulnerability_bounds(self, baseline):
        value = bayes_vulnerability(baseline)
        assert 1.0 / len(baseline.sa_domain) <= value <= 1.0

    def test_exclude_removes_value(self, baseline):
        full = max_disclosure(baseline)
        without_top = max_disclosure(
            baseline, exclude=frozenset({"Flu"})
        )
        assert without_top <= full

    def test_exclude_everything_rejected(self, baseline):
        with pytest.raises(ValueError):
            max_disclosure(baseline, exclude=frozenset(baseline.sa_domain))

    def test_expected_posterior_entropy(self, baseline):
        value = expected_posterior_entropy(baseline)
        assert 0 < value <= np.log2(len(baseline.sa_domain))

    def test_top_disclosures_sorted_and_bounded(self, baseline):
        entries = top_disclosures(baseline, n=5)
        assert len(entries) == 5
        probabilities = [p for _q, _s, p in entries]
        assert probabilities == sorted(probabilities, reverse=True)
        assert probabilities[0] == pytest.approx(max_disclosure(baseline))

    def test_top_disclosures_finds_grace(self, published):
        informed = PrivacyMaxEnt(
            published,
            knowledge=[
                ConditionalProbability(
                    given={"gender": "male"}, sa_value=S1, probability=0.0
                )
            ],
        ).posterior()
        (q, s, p), *_rest = top_disclosures(informed, n=1)
        assert q == ("female", "junior")
        assert s == S1
        assert p == pytest.approx(1.0)

    def test_top_disclosures_respects_exclude(self, baseline):
        entries = top_disclosures(baseline, n=3, exclude=frozenset({"Flu"}))
        assert all(s != "Flu" for _q, s, _p in entries)

    def test_entropy_drops_with_knowledge(self, published, baseline):
        informed = PrivacyMaxEnt(
            published,
            knowledge=[
                ConditionalProbability(
                    given={"gender": "male"}, sa_value=S1, probability=0.0
                )
            ],
        ).posterior()
        assert expected_posterior_entropy(informed) < expected_posterior_entropy(
            baseline
        )
