"""Tests for solution diagnostics rendering."""

import pytest

from repro.core.privacy_maxent import PrivacyMaxEnt
from repro.data.paper_example import paper_published
from repro.knowledge.statements import ConditionalProbability
from repro.maxent.diagnostics import component_table, convergence_summary


@pytest.fixture(scope="module")
def solution():
    engine = PrivacyMaxEnt(
        paper_published(),
        knowledge=[
            ConditionalProbability(
                given={"gender": "male"}, sa_value="Flu", probability=0.3
            )
        ],
    )
    return engine.solve()


class TestConvergenceSummary:
    def test_mentions_key_facts(self, solution):
        text = convergence_summary(solution)
        assert "lbfgs" in text
        assert "converged" in text
        assert "component" in text

    def test_flags_non_convergence(self, solution):
        from dataclasses import replace

        broken = type(solution)(
            solution.space,
            solution.p,
            replace(solution.stats, converged=False),
            solution.components,
        )
        assert "NOT CONVERGED" in convergence_summary(broken)


class TestComponentTable:
    def test_one_row_per_component(self, solution):
        text = component_table(solution, top=None)
        # Header + separator + title lines + one row per component.
        data_lines = [
            line
            for line in text.splitlines()
            if line and not set(line) <= {"-", " ", "="}
        ]
        # title + header + component rows
        assert len(data_lines) == 2 + len(solution.components)

    def test_truncation_adds_aggregate_row(self, solution):
        text = component_table(solution, top=1)
        assert "more" in text

    def test_hardest_component_listed_first(self, solution):
        text = component_table(solution, top=None)
        lines = text.splitlines()
        # Layout: title, ===, header, ---, then data rows.
        first_row = lines[4]
        # The merged (knowledge-coupled) component has the iterations; the
        # closed-form singleton has zero.
        assert "lbfgs" in first_row
