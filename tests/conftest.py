"""Shared fixtures: the paper's running example and small Adult workloads."""

from __future__ import annotations

import pytest

from repro.anonymize.anatomy import anatomize
from repro.data.adult import load_adult_synthetic
from repro.data.paper_example import paper_published, paper_schema, paper_table
from repro.knowledge.mining import MiningConfig, mine_association_rules


@pytest.fixture(scope="session")
def paper_table_fixture():
    """The original 10-record table of Figure 1(a)."""
    return paper_table()


@pytest.fixture(scope="session")
def paper_published_fixture():
    """The 3-bucket release of Figure 1(b)/(c)."""
    return paper_published()


@pytest.fixture(scope="session")
def paper_schema_fixture():
    """The (gender, degree | disease) schema of the running example."""
    return paper_schema()


@pytest.fixture(scope="session")
def adult_small():
    """A small Adult-shaped table shared across tests (expensive to build)."""
    return load_adult_synthetic(n_records=600, seed=11)


@pytest.fixture(scope="session")
def adult_small_published(adult_small):
    """The small Adult table bucketized at 5-diversity."""
    return anatomize(adult_small, l=5, exempt="auto", seed=11)


@pytest.fixture(scope="session")
def adult_small_rules(adult_small):
    """Rules mined from the small Adult table (antecedents up to size 2)."""
    return mine_association_rules(
        adult_small, MiningConfig(min_support_count=3, max_antecedent=2)
    )
