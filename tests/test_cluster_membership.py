"""Dynamic membership: identities, joins, heartbeats, liveness sweeps.

In-process coverage of the membership state machine (the live
subprocess paths — ``--join``, SIGKILL, identity respawn — are driven
end-to-end by ``test_cluster_chaos.py``).
"""

from __future__ import annotations

import time

import pytest

from repro.cluster import (
    ClusterCoordinator,
    ClusterError,
    MembershipConfig,
    WorkerHandle,
    load_or_create_identity,
    new_worker_id,
    parse_worker_address,
)
from repro.cluster.membership import HeartbeatSender


class TestIdentity:
    def test_new_worker_ids_are_unique_and_tagged(self):
        ids = {new_worker_id() for _ in range(32)}
        assert len(ids) == 32
        assert all(i.startswith("worker-") for i in ids)

    def test_identity_file_round_trips(self, tmp_path):
        path = tmp_path / "ids" / "worker.id"
        first = load_or_create_identity(path)
        assert path.read_text().strip() == first
        # The respawn case: the persisted identity is reused verbatim.
        assert load_or_create_identity(path) == first

    def test_explicit_identity_wins_and_writes_through(self, tmp_path):
        path = tmp_path / "worker.id"
        load_or_create_identity(path)
        assert load_or_create_identity(path, explicit="shard7") == "shard7"
        assert path.read_text().strip() == "shard7"
        # And it sticks for the next identity-file-only start.
        assert load_or_create_identity(path) == "shard7"

    def test_empty_identity_file_regenerates(self, tmp_path):
        path = tmp_path / "worker.id"
        path.write_text("\n")
        assert load_or_create_identity(path).startswith("worker-")


class TestParseWorkerAddress:
    def test_plain_address_identity_is_the_address(self):
        assert parse_worker_address("10.0.0.5:8731") == (
            "10.0.0.5:8731",
            "10.0.0.5",
            8731,
        )

    def test_id_prefix_decouples_identity_from_contact(self):
        assert parse_worker_address("shard0@10.0.0.5:8731") == (
            "shard0",
            "10.0.0.5",
            8731,
        )

    def test_bare_port_defaults_to_loopback(self):
        assert parse_worker_address("8731") == ("127.0.0.1:8731", "127.0.0.1", 8731)

    def test_junk_raises(self):
        with pytest.raises(ClusterError, match=r"\[id@\]host:port"):
            parse_worker_address("not-an-address")


class TestMembershipConfig:
    def test_defaults_are_consistent(self):
        config = MembershipConfig()
        assert config.liveness_timeout > config.heartbeat_interval
        assert config.replication >= 1

    def test_env_knobs(self, monkeypatch):
        monkeypatch.setenv("REPRO_CLUSTER_HEARTBEAT_INTERVAL", "0.5")
        monkeypatch.setenv("REPRO_CLUSTER_REPLICATION", "3")
        config = MembershipConfig.from_env()
        assert config.heartbeat_interval == 0.5
        # Liveness defaults to a multiple of the (env) interval.
        assert config.liveness_timeout == pytest.approx(1.5)
        assert config.replication == 3

    def test_overrides_beat_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CLUSTER_HEARTBEAT_INTERVAL", "9.0")
        config = MembershipConfig.from_env(heartbeat_interval=0.25)
        assert config.heartbeat_interval == 0.25

    def test_unknown_knob_raises(self):
        with pytest.raises(ClusterError, match="unknown membership knob"):
            MembershipConfig.from_env(heartbeats="yes")

    def test_validation(self):
        with pytest.raises(ClusterError, match="heartbeat interval"):
            MembershipConfig(heartbeat_interval=0)
        with pytest.raises(ClusterError, match="liveness timeout"):
            MembershipConfig(liveness_timeout=-1)
        with pytest.raises(ClusterError, match="replication factor"):
            MembershipConfig(replication=0)


class TestHeartbeatCadence:
    """Workers adopt the front-end's advertised heartbeat interval."""

    def _sender(self, interval=2.0):
        return HeartbeatSender(
            worker_id="w1",
            host="127.0.0.1",
            port=9001,
            targets=[("127.0.0.1", 8711)],
            interval=interval,
        )

    def test_tighter_advertisement_speeds_up(self):
        sender = self._sender(interval=2.0)
        sender.adapt_interval({"heartbeat_interval": 0.3})
        assert sender.interval == 0.3

    def test_slower_advertisement_is_ignored(self):
        # Only speeding up is safe when heartbeating multiple targets.
        sender = self._sender(interval=0.5)
        sender.adapt_interval({"heartbeat_interval": 5.0})
        assert sender.interval == 0.5

    @pytest.mark.parametrize(
        "junk",
        [{}, {"heartbeat_interval": "fast"}, {"heartbeat_interval": True},
         {"heartbeat_interval": 0}, {"heartbeat_interval": -1.0}],
    )
    def test_unusable_advertisements_keep_the_cadence(self, junk):
        sender = self._sender(interval=2.0)
        sender.adapt_interval(junk)
        assert sender.interval == 2.0


@pytest.fixture()
def coordinator():
    fleet = ClusterCoordinator([], allow_empty=True)
    yield fleet
    fleet.shutdown()


class TestCoordinatorMembership:
    def test_join_rejoin_refresh_lifecycle(self, coordinator):
        assert coordinator.add_worker("w1", "127.0.0.1", 9001) == "joined"
        assert "w1" in coordinator.router.worker_ids
        # An idempotent re-announce at the same address changes nothing.
        assert coordinator.add_worker("w1", "127.0.0.1", 9001) == "refreshed"
        # A respawn on a new port is a rejoin: same slot, fresh contact.
        assert coordinator.add_worker("w1", "127.0.0.1", 9002) == "rejoined"
        assert coordinator.worker("w1").port == 9002
        # Death and return: a rejoin again, with the revival counted.
        coordinator.mark_dead("w1")
        assert coordinator.add_worker("w1", "127.0.0.1", 9002) == "rejoined"
        assert coordinator.worker("w1").revivals == 1
        assert coordinator.alive_ids() == ["w1"]

    def test_heartbeat_is_the_whole_protocol(self, coordinator):
        # Unknown identity: a heartbeat is as good as a join.
        assert coordinator.heartbeat("w1", "127.0.0.1", 9001) == "joined"
        # Steady state: the cheap path.
        assert coordinator.heartbeat("w1", "127.0.0.1", 9001) == "ok"
        # Presumed dead, then heard from: revived, not ignored.
        coordinator.mark_dead("w1")
        assert coordinator.heartbeat("w1", "127.0.0.1", 9001) == "revived"
        assert coordinator.alive_ids() == ["w1"]

    def test_sweep_expires_only_silent_heartbeaters(self, coordinator):
        coordinator.add_worker("chatty", "127.0.0.1", 9001)
        coordinator.add_worker("silent", "127.0.0.1", 9002)
        # A statically attached worker never heartbeats and is never
        # swept — probe/request failure detection still owns it.
        static = WorkerHandle(worker_id="static", host="127.0.0.1", port=9003)
        coordinator.handles.append(static)
        coordinator._by_id["static"] = static
        coordinator.router.add("static")

        coordinator.worker("silent").last_heartbeat = time.time() - 60.0
        expired = coordinator.sweep_expired(5.0)
        assert expired == ["silent"]
        assert coordinator.dead_ids() == ["silent"]
        assert coordinator.alive_ids() == ["chatty", "static"]
        # The sweep is idempotent: already-dead workers stay dead quietly.
        assert coordinator.sweep_expired(5.0) == []

    def test_membership_events_are_recorded(self, coordinator):
        coordinator.add_worker("w1", "127.0.0.1", 9001)
        coordinator.mark_dead("w1")
        coordinator.heartbeat("w1", "127.0.0.1", 9001)
        coordinator.worker("w1").last_heartbeat = time.time() - 60.0
        coordinator.sweep_expired(1.0)
        counts = coordinator.events.counts()
        assert counts["joined"] == 1
        assert counts["presumed_dead"] == 1
        assert counts["rejoined"] == 1
        assert counts["expired"] == 1
        kinds = [event["kind"] for event in coordinator.events.recent()]
        assert kinds == ["joined", "presumed_dead", "rejoined", "expired"]

    def test_empty_fleet_needs_allow_empty(self):
        with pytest.raises(ClusterError, match="at least one"):
            ClusterCoordinator([])
        fleet = ClusterCoordinator([], allow_empty=True)
        assert fleet.n_workers == 0
        assert fleet.check_health() == []
        assert fleet.aggregate_telemetry()["workers"] == []
        fleet.shutdown()
