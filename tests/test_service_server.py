"""End-to-end tests of the serving subsystem over real sockets.

One module-scoped service (paper example registered once) backs the
read-path tests; flow-control tests (coalescing, backpressure) get
dedicated instances so their counters and queue limits are isolated.
"""

from __future__ import annotations

import http.client
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.core.privacy_maxent import PrivacyMaxEnt, assess
from repro.data.paper_example import (
    Q2,
    Q4,
    S1,
    S2,
    S3,
    paper_published,
    paper_table,
)
from repro.knowledge.bounds import TopKBound
from repro.knowledge.mining import MiningConfig
from repro.knowledge.statements import Comparison, ConditionalProbability
from repro.maxent.config import MaxEntConfig
from repro.service import (
    BackgroundService,
    PrivacyService,
    ServiceClient,
    ServiceConfig,
    ServiceError,
)

BREAST_CANCER_KNOWLEDGE = [
    ConditionalProbability(given={"gender": "male"}, sa_value=S1, probability=0.0)
]


@pytest.fixture(scope="module")
def service():
    instance = PrivacyService(ServiceConfig(port=0))
    with BackgroundService(instance) as background:
        yield background.service


@pytest.fixture(scope="module")
def client(service):
    with ServiceClient(port=service.port) as session:
        session.wait_until_healthy(timeout=10)
        yield session


@pytest.fixture(scope="module")
def release_id(client):
    return client.register(
        paper_published(), original=paper_table(), name="paper"
    )


class TestBasicEndpoints:
    def test_healthz(self, client):
        payload = client.healthz()
        assert payload["status"] == "ok"
        assert payload["uptime_seconds"] >= 0
        assert payload["queue"]["depth"] < payload["queue"]["capacity"]

    def test_healthz_degraded_when_queue_saturated(self, client, service):
        # Health is backpressure-aware: while the admission queue is full
        # (the state in which solves answer 429) the health endpoint must
        # answer 503/"degraded" so load balancers and cluster coordinators
        # stop routing new work here — liveness alone is not health.
        admission = service.admission
        before = admission._pending
        admission._pending = admission.capacity
        try:
            with pytest.raises(ServiceError) as excinfo:
                client.healthz()
            assert excinfo.value.status == 503
            assert "degraded" in str(excinfo.value)
        finally:
            admission._pending = before
        assert client.healthz()["status"] == "ok"

    def test_root_lists_endpoints(self, client):
        payload = client._request("GET", "/")
        assert payload["service"] == "privacy-maxent"
        assert "GET /v1/telemetry" in payload["endpoints"]

    def test_unknown_path_is_404(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client._request("GET", "/v2/everything")
        assert excinfo.value.status == 404

    def test_wrong_method_is_405(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client._request("POST", "/v1/healthz", {})
        assert excinfo.value.status == 405

    def test_unknown_release_is_404(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.posterior("rel-does-not-exist")
        assert excinfo.value.status == 404
        assert excinfo.value.code == "unknown_release"


class TestRegistration:
    def test_register_and_list(self, client, release_id):
        releases = client.releases()
        assert any(r["release_id"] == release_id for r in releases)
        summary = client.release(release_id)
        assert summary["n_buckets"] == 3
        assert summary["n_records"] == 10
        assert summary["has_original"] is True

    def test_registration_is_idempotent(self, client, release_id):
        before = len(client.releases())
        again = client.register(
            paper_published(), original=paper_table(), name="paper"
        )
        assert again == release_id
        assert len(client.releases()) == before

    def test_register_without_release_is_400(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client._request("POST", "/v1/releases", {"name": "empty"})
        assert excinfo.value.status == 400

    def test_unknown_body_field_is_400(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client._request("POST", "/v1/releases", {"surprise": 1})
        assert excinfo.value.status == 400


class TestPosterior:
    def test_no_knowledge_matches_library(self, client, release_id):
        result = client.posterior(release_id)
        library = PrivacyMaxEnt(paper_published()).posterior()
        assert result.posterior.prob(Q2, S1) == pytest.approx(0.125)
        np.testing.assert_allclose(
            result.posterior.aligned_to(library).matrix,
            library.matrix,
            atol=1e-12,
        )
        assert result.stats["solver"] == "closed-form"
        assert result.n_knowledge_rows == 0

    def test_knowledge_discloses_grace(self, client, release_id):
        result = client.posterior(release_id, BREAST_CANCER_KNOWLEDGE)
        assert result.posterior.prob(Q4, S1) == pytest.approx(1.0, abs=1e-6)
        library = PrivacyMaxEnt(
            paper_published(), knowledge=BREAST_CANCER_KNOWLEDGE
        ).posterior()
        np.testing.assert_allclose(
            result.posterior.aligned_to(library).matrix,
            library.matrix,
            atol=1e-9,
        )

    def test_repeat_is_served_from_cache_without_resolving(
        self, client, release_id
    ):
        statements = [
            ConditionalProbability(
                given={"gender": "male"}, sa_value=S2, probability=0.3
            )
        ]
        before = client.telemetry()["service"]["counters"]
        first = client.posterior(release_id, statements)
        second = client.posterior(release_id, statements)
        after = client.telemetry()["service"]["counters"]
        assert first.served_from == "solve"
        assert second.served_from in ("result-cache", "coalesced")
        assert after["solves_started"] - before.get("solves_started", 0) == 1
        np.testing.assert_allclose(
            second.posterior.matrix, first.posterior.matrix, atol=0
        )

    def test_statement_order_does_not_matter(self, client, release_id):
        a = ConditionalProbability(
            given={"gender": "male"}, sa_value=S2, probability=0.4
        )
        b = ConditionalProbability(
            given={"gender": "female"}, sa_value=S1, probability=0.45
        )
        first = client.posterior(release_id, [a, b])
        second = client.posterior(release_id, [b, a])
        assert second.served_from in ("result-cache", "coalesced")
        assert second.fingerprint == first.fingerprint

    def test_malformed_statement_is_400(self, client, release_id):
        with pytest.raises(ServiceError) as excinfo:
            client._request(
                "POST",
                f"/v1/releases/{release_id}/posterior",
                {"statements": [{"type": "telepathy"}]},
            )
        assert excinfo.value.status == 400

    def test_failure_policy_is_part_of_the_result_key(self, client, release_id):
        """A lenient client's cached non-converged result must not be
        served to a strict client asking the same (infeasible) question."""
        # A contradiction presolve cannot detect structurally (a cycle of
        # strict comparisons), so it surfaces only as numeric infeasibility.
        contradiction = [
            Comparison(
                given={"gender": "male"}, more_likely=S2, less_likely=S3,
                margin=0.3,
            ),
            Comparison(
                given={"gender": "male"}, more_likely=S3, less_likely=S2,
                margin=0.3,
            ),
        ]
        lenient = client.posterior(
            release_id,
            contradiction,
            config=MaxEntConfig(raise_on_infeasible=False),
        )
        assert lenient.stats["converged"] is False
        with pytest.raises(ServiceError) as excinfo:
            client.posterior(release_id, contradiction)
        assert excinfo.value.status == 409
        assert excinfo.value.code == "infeasible_knowledge"

    def test_unknown_config_knob_is_400(self, client, release_id):
        with pytest.raises(ServiceError) as excinfo:
            client._request(
                "POST",
                f"/v1/releases/{release_id}/posterior",
                {"config": {"warp": 9}},
            )
        assert excinfo.value.status == 400

    def test_bad_json_is_400(self, client, service, release_id):
        connection = http.client.HTTPConnection("127.0.0.1", service.port)
        try:
            connection.request(
                "POST",
                f"/v1/releases/{release_id}/posterior",
                body=b"{not json",
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            assert response.status == 400
            assert b"bad_json" in response.read()
        finally:
            connection.close()


class TestAssess:
    def test_matches_library_assess(self, client, release_id):
        mining = {"min_support_count": 1, "max_antecedent": 1}
        bounds = [TopKBound(0, 0), TopKBound(2, 2)]
        served = client.assess(release_id, bounds, mining=mining)
        library = assess(
            paper_table(),
            paper_published(),
            bounds,
            mining=MiningConfig(min_support_count=1, max_antecedent=1),
        )
        assert [row["bound"] for row in served] == [
            a.bound for a in library
        ]
        for row, expected in zip(served, library):
            assert row["estimation_accuracy"] == pytest.approx(
                expected.estimation_accuracy, abs=1e-9
            )
            assert row["max_disclosure"] == pytest.approx(
                expected.max_disclosure, abs=1e-9
            )
            assert row["n_constraints"] == expected.n_constraints

    def test_empty_bounds_is_400(self, client, release_id):
        with pytest.raises(ServiceError) as excinfo:
            client._request(
                "POST", f"/v1/releases/{release_id}/assess", {"bounds": []}
            )
        assert excinfo.value.status == 400

    def test_reregistration_reuses_the_original_carrying_record(
        self, client, release_id
    ):
        # The idempotency digest covers the release payload only, so a
        # bare re-registration of the same bucketization lands on the
        # existing record — which still has its ground truth.
        bare_id = client.register(paper_published(), name="no-truth")
        assert bare_id == release_id
        assessments = client.assess(
            bare_id,
            [TopKBound(1, 1)],
            mining={"min_support_count": 1, "max_antecedent": 1},
        )
        assert len(assessments) == 1

    def test_assess_without_original_is_409_until_reregistered(self, client):
        from repro.anonymize.buckets import BucketizedTable

        rebucketized = BucketizedTable.from_assignment(
            paper_table(), [0, 0, 0, 0, 0, 1, 1, 1, 1, 1]
        )
        bare_id = client.register(rebucketized, name="no-truth")
        with pytest.raises(ServiceError) as excinfo:
            client.assess(bare_id, [TopKBound(1, 1)])
        assert excinfo.value.status == 409
        assert excinfo.value.code == "no_original"
        # Following the error's advice must work: re-registering the
        # same release WITH the original attaches the ground truth.
        upgraded = client.register(rebucketized, original=paper_table())
        assert upgraded == bare_id
        assessments = client.assess(
            bare_id,
            [TopKBound(1, 1)],
            mining={"min_support_count": 1, "max_antecedent": 1},
        )
        assert len(assessments) == 1


class TestTelemetry:
    def test_snapshot_shape(self, client, release_id):
        client.posterior(release_id)
        telemetry = client.telemetry()
        assert telemetry["status"] == "ok"
        assert telemetry["engine"]["executor"] == "serial"
        assert telemetry["queue"]["capacity"] > 0
        assert telemetry["store"]["releases"] >= 1
        assert telemetry["service"]["counters"]["requests_total"] > 0
        endpoint = telemetry["service"]["endpoints"][
            "POST /v1/releases/{id}/posterior"
        ]
        assert endpoint["count"] >= 1
        assert endpoint["p95_seconds"] >= endpoint["p50_seconds"]
        assert telemetry["batching"]["batched_requests"] >= 1
        # PR6 surfaces: segment-kernel backend and shipping counters.
        assert telemetry["engine"]["kernel_backend"] in ("numpy", "numba")
        assert telemetry["engine"]["shipping"]["active_segments"] == 0

    def test_construction_phase_timers_exposed(self, client, release_id):
        statements = [
            ConditionalProbability(
                given={"gender": "male"}, sa_value=S2, probability=0.21
            )
        ]
        client.posterior(release_id, statements)
        engine = client.telemetry()["engine"]
        # Construction cost is observable: compile time recorded by the
        # store, decomposition and fingerprinting measured in-engine.
        assert engine["build_seconds"] > 0.0
        assert engine["decompose_seconds"] > 0.0
        assert engine["fingerprint_seconds"] >= 0.0


class TestCoalescing:
    def test_concurrent_identical_requests_solve_once(self):
        """N identical concurrent requests: exactly one solve happens.

        Every request either ran the solve (1), joined it in flight
        (coalesced) or read the finished result (result-cache) — the
        telemetry counters must add up exactly, whatever the timing.
        """
        instance = PrivacyService(ServiceConfig(port=0))
        statements = [
            ConditionalProbability(
                given={"gender": "male"}, sa_value=S2, probability=0.35
            )
        ]
        n_clients = 8
        with BackgroundService(instance) as background:
            seed = ServiceClient(port=background.port)
            seed.wait_until_healthy(timeout=10)
            release = seed.register(paper_published())

            def query(_index):
                with ServiceClient(port=background.port) as session:
                    return session.posterior(release, statements).served_from

            with ThreadPoolExecutor(max_workers=n_clients) as pool:
                served = list(pool.map(query, range(n_clients)))

            telemetry = seed.telemetry()
            counters = telemetry["service"]["counters"]
            assert counters["solves_started"] == 1
            assert served.count("solve") == 1
            coalesced = telemetry["coalescing"]["coalesced"]
            cache_hits = telemetry["store"]["result_cache"]["hits"]
            assert coalesced == served.count("coalesced")
            assert cache_hits == served.count("result-cache")
            assert 1 + coalesced + cache_hits == n_clients
            seed.close()


class TestBackpressure:
    def test_full_queue_gets_429(self):
        """With capacity 1 and a solve parked, the next solve gets 429."""
        instance = PrivacyService(
            ServiceConfig(port=0, max_concurrency=1, max_queue=0)
        )
        solve_started = threading.Event()
        release_solve = threading.Event()
        real_solve = instance.engine.solve

        def slow_solve(space, system, config, **kwargs):
            solve_started.set()
            assert release_solve.wait(30)
            return real_solve(space, system, config, **kwargs)

        instance.engine.solve = slow_solve
        blocked = [
            ConditionalProbability(
                given={"gender": "male"}, sa_value=S2, probability=0.31
            )
        ]
        rejected = [
            ConditionalProbability(
                given={"gender": "male"}, sa_value=S2, probability=0.32
            )
        ]
        with BackgroundService(instance) as background:
            client_a = ServiceClient(port=background.port)
            client_a.wait_until_healthy(timeout=10)
            release = client_a.register(paper_published())

            def occupy():
                return client_a.posterior(release, blocked)

            with ThreadPoolExecutor(max_workers=1) as pool:
                holder = pool.submit(occupy)
                assert solve_started.wait(10)
                # attempts=1: observe the raw 429 verdict instead of the
                # client's Retry-After absorption (which would re-reject
                # and inflate the rejected counter asserted below).
                from repro.cluster.retry import RetryPolicy

                no_retry = RetryPolicy(attempts=1)
                with ServiceClient(
                    port=background.port, retry=no_retry
                ) as client_b:
                    with pytest.raises(ServiceError) as excinfo:
                        client_b.posterior(release, rejected)
                assert excinfo.value.status == 429
                assert excinfo.value.code == "queue_full"
                # Closed-form (no-knowledge) reads bypass the solve
                # queue entirely: they stay answerable under saturation.
                with ServiceClient(port=background.port) as client_c:
                    uniform = client_c.posterior(release)
                assert uniform.stats["solver"] == "closed-form"
                release_solve.set()
                result = holder.result(timeout=30)
            assert result.served_from == "solve"
            telemetry = client_a.telemetry()
            assert telemetry["queue"]["rejected"] == 1
            # After backpressure clears, the rejected request succeeds.
            retry = client_a.posterior(release, rejected)
            assert retry.served_from == "solve"
            client_a.close()


class TestWarmRestart:
    def test_cache_path_restores_engine_cache(self, tmp_path):
        """A restarted service answers from the persisted solve cache."""
        cache_file = tmp_path / "serve-cache.pkl"
        config = ServiceConfig(
            port=0, engine=MaxEntConfig(cache_path=str(cache_file))
        )
        statements = [
            ConditionalProbability(
                given={"gender": "male"}, sa_value=S2, probability=0.37
            )
        ]

        with BackgroundService(PrivacyService(config)) as background:
            with ServiceClient(port=background.port) as session:
                session.wait_until_healthy(timeout=10)
                release = session.register(paper_published())
                first = session.posterior(release, statements)
                assert first.stats["cache_hits"] == 0
        assert cache_file.exists()

        with BackgroundService(PrivacyService(config)) as background:
            with ServiceClient(port=background.port) as session:
                session.wait_until_healthy(timeout=10)
                release = session.register(paper_published())
                warm = session.posterior(release, statements)
                assert warm.served_from == "solve"  # fresh result cache...
                assert warm.stats["cache_hits"] > 0  # ...but warm engine
                np.testing.assert_allclose(
                    warm.posterior.matrix, first.posterior.matrix, atol=0
                )
