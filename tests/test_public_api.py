"""Public-API surface tests: everything exported exists and is documented."""

import importlib

import pytest

import repro

SUBPACKAGES = [
    "repro.anonymize",
    "repro.baselines",
    "repro.core",
    "repro.data",
    "repro.experiments",
    "repro.knowledge",
    "repro.maxent",
    "repro.utils",
]


class TestTopLevel:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.{name} missing"

    def test_all_is_sorted(self):
        assert list(repro.__all__) == sorted(repro.__all__)

    def test_exports_are_documented(self):
        for name in repro.__all__:
            obj = getattr(repro, name)
            if callable(obj) or isinstance(obj, type):
                assert obj.__doc__, f"repro.{name} lacks a docstring"

    def test_version(self):
        assert repro.__version__ == "1.0.0"


class TestSubpackages:
    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_importable_with_resolving_all(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__, f"{module_name} lacks a module docstring"
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{module_name}.{name} missing"

    @pytest.mark.parametrize(
        "module_name",
        [
            "repro.anonymize.anatomy",
            "repro.anonymize.suppress",
            "repro.baselines.enumeration",
            "repro.core.invariants",
            "repro.core.utility",
            "repro.data.paper_example",
            "repro.knowledge.compiler",
            "repro.knowledge.skyline",
            "repro.maxent.diagnostics",
            "repro.maxent.dual",
            "repro.maxent.newton",
            "repro.experiments.figures",
            "repro.cli",
        ],
    )
    def test_leaf_modules_documented(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__ and len(module.__doc__) > 40, (
            f"{module_name} needs a real module docstring"
        )


class TestNoAccidentalHeavyImports:
    def test_import_is_fast_enough_for_cli(self):
        # The CLI should not drag in pytest/hypothesis at import time.
        import subprocess
        import sys

        code = (
            "import sys, repro; "
            "banned = {'pytest', 'hypothesis'}; "
            "loaded = banned & set(sys.modules); "
            "sys.exit(1 if loaded else 0)"
        )
        result = subprocess.run([sys.executable, "-c", code])
        assert result.returncode == 0
