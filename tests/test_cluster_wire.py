"""Wire forms and the shard protocol: exactness, strictness, versioning."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cluster.protocol import (
    SHARD_PROTOCOL,
    check_protocol,
    heartbeat_request_from_wire,
    heartbeat_request_to_wire,
    join_request_from_wire,
    join_request_to_wire,
    response_spans,
    solve_request_from_wire,
    solve_request_to_wire,
    solve_response_from_wire,
    solve_result_to_wire,
)
from repro.data.paper_example import paper_published
from repro.engine.component import ComponentSolve, solve_component
from repro.engine.fingerprint import component_fingerprint, fingerprint_system
from repro.errors import ReproError
from repro.maxent.config import MaxEntConfig
from repro.maxent.constraints import ConstraintSystem, data_constraints
from repro.maxent.decompose import decompose
from repro.maxent.indexing import GroupVariableSpace
from repro.maxent.wire import (
    component_from_wire,
    component_to_wire,
    decode_array,
    encode_array,
    system_from_wire,
    system_to_wire,
)


@pytest.fixture(scope="module")
def paper_components():
    space = GroupVariableSpace(paper_published())
    system = data_constraints(space)
    return space, decompose(space, system)


def _json_round_trip(payload):
    """Force the exact bytes a real HTTP hop would produce."""
    return json.loads(json.dumps(payload, separators=(",", ":")))


class TestArrayEncoding:
    def test_float_round_trip_is_bit_exact(self):
        values = np.array([0.1, 1e-300, -np.pi, 3.0, np.nextafter(1.0, 2.0)])
        decoded = decode_array(encode_array(values, "<f8"), "<f8")
        assert decoded.tobytes() == values.tobytes()

    def test_int_round_trip(self):
        values = np.arange(17, dtype=np.int64) * 11
        decoded = decode_array(encode_array(values, "<i8"), "<i8")
        assert np.array_equal(decoded, values)

    def test_decode_rejects_non_string(self):
        with pytest.raises(ReproError, match="base64 string"):
            decode_array([1.0, 2.0], "<f8")

    def test_decode_rejects_bad_base64(self):
        with pytest.raises(ReproError, match="undecodable"):
            decode_array("not base64!!", "<f8")

    def test_decode_rejects_misaligned_bytes(self):
        import base64

        payload = base64.b64encode(b"123").decode()
        with pytest.raises(ReproError, match="item size"):
            decode_array(payload, "<f8")


class TestSystemWire:
    def test_round_trip_preserves_fingerprint(self, paper_components):
        _, components = paper_components
        for component in components:
            wire = _json_round_trip(system_to_wire(component.system))
            back = system_from_wire(wire)
            assert fingerprint_system(back, 1.0) == fingerprint_system(
                component.system, 1.0
            )
            assert back.n_equalities == component.system.n_equalities
            assert back.n_inequalities == component.system.n_inequalities

    def test_round_trip_preserves_labels_and_kinds(self, paper_components):
        _, components = paper_components
        system = components[0].system
        back = system_from_wire(_json_round_trip(system_to_wire(system)))
        original = system.equality_arrays()
        rebuilt = back.equality_arrays()
        assert list(rebuilt.labels) == list(original.labels)
        assert rebuilt.kinds() == original.kinds()

    def test_unknown_field_rejected(self, paper_components):
        _, components = paper_components
        wire = system_to_wire(components[0].system)
        wire["surprise"] = 1
        with pytest.raises(ReproError, match="unknown field"):
            system_from_wire(wire)

    def test_malformed_rows_rejected(self, paper_components):
        """Re-validation on decode: a hostile peer cannot smuggle rows."""
        _, components = paper_components
        wire = system_to_wire(components[0].system)
        # Point a row at a variable outside the declared space.
        wire["n_vars"] = 1
        with pytest.raises(ReproError):
            system_from_wire(wire)


class TestComponentWire:
    def test_round_trip(self, paper_components):
        _, components = paper_components
        config = MaxEntConfig()
        for component in components:
            back = component_from_wire(
                _json_round_trip(component_to_wire(component))
            )
            assert back.buckets == component.buckets
            assert np.array_equal(back.var_indices, component.var_indices)
            assert back.mass == component.mass
            assert back.knowledge_rows == component.knowledge_rows
            assert back.is_irrelevant == component.is_irrelevant
            assert component_fingerprint(
                back.system, back.mass, config.solve_key()
            ) == component_fingerprint(
                component.system, component.mass, config.solve_key()
            )

    def test_solving_a_travelled_component_is_bit_identical(
        self, paper_components
    ):
        _, components = paper_components
        config = MaxEntConfig()
        for component in components:
            back = component_from_wire(
                _json_round_trip(component_to_wire(component))
            )
            local = solve_component(component, config)
            remote = solve_component(back, config)
            assert np.array_equal(local.p, remote.p)

    def test_unknown_field_rejected(self, paper_components):
        _, components = paper_components
        wire = component_to_wire(components[0])
        wire["extra"] = True
        with pytest.raises(ReproError, match="unknown field"):
            component_from_wire(wire)


class TestShardProtocol:
    def test_solve_request_round_trip(self, paper_components):
        _, components = paper_components
        config = MaxEntConfig(tol=1e-8, raise_on_infeasible=False)
        fingerprints = [
            component_fingerprint(c.system, c.mass, config.solve_key())
            for c in components
        ]
        warm = [None, np.array([0.5, -1.0]), None][: len(components)]
        payload = _json_round_trip(
            solve_request_to_wire(fingerprints, components, config, warm)
        )
        got_fps, got_components, got_config, got_warm, got_trace = (
            solve_request_from_wire(payload)
        )
        assert got_fps == fingerprints
        assert got_config == config
        assert len(got_components) == len(components)
        assert got_warm[0] is None
        assert np.array_equal(got_warm[1], warm[1])
        assert got_trace is None

    def test_version_mismatch_rejected(self, paper_components):
        _, components = paper_components
        config = MaxEntConfig()
        payload = solve_request_to_wire([], [], config, [])
        payload["protocol"] = "privacy-maxent-shard/0"
        with pytest.raises(ReproError, match="same version"):
            solve_request_from_wire(payload)
        with pytest.raises(ReproError, match="same version"):
            check_protocol({"protocol": None}, "message")

    def test_solve_response_round_trip(self, paper_components):
        _, components = paper_components
        config = MaxEntConfig()
        solves = [solve_component(c, config) for c in components]
        payload = _json_round_trip(
            {
                "protocol": SHARD_PROTOCOL,
                "results": [
                    solve_result_to_wire(f"fp-{i}", solve, cached=(i == 0))
                    for i, solve in enumerate(solves)
                ],
            }
        )
        decoded = solve_response_from_wire(payload)
        assert [fp for fp, _, _ in decoded] == [
            f"fp-{i}" for i in range(len(solves))
        ]
        assert [cached for _, _, cached in decoded] == [
            i == 0 for i in range(len(solves))
        ]
        for (_, got, _), sent in zip(decoded, solves):
            assert np.array_equal(got.p, sent.p)
            assert got.stats.converged == sent.stats.converged
            assert got.stats.residual == sent.stats.residual
            if sent.multipliers is None:
                assert got.multipliers is None
            else:
                assert np.array_equal(got.multipliers, sent.multipliers)

    def test_trace_context_round_trips(self, paper_components):
        _, components = paper_components
        config = MaxEntConfig()
        ctx = {"trace_id": "aa" * 8, "span_id": "bb" * 4}
        payload = _json_round_trip(
            solve_request_to_wire(
                ["fp"], components[:1], config, [None], trace_ctx=ctx
            )
        )
        *_, got_trace = solve_request_from_wire(payload)
        assert got_trace == ctx

    def test_trace_context_span_id_is_optional(self, paper_components):
        _, components = paper_components
        config = MaxEntConfig()
        payload = solve_request_to_wire(
            ["fp"], components[:1], config, [None],
            trace_ctx={"trace_id": "cc" * 8},
        )
        *_, got_trace = solve_request_from_wire(_json_round_trip(payload))
        assert got_trace == {"trace_id": "cc" * 8, "span_id": None}

    @pytest.mark.parametrize(
        "bad",
        [
            "not-a-dict",
            {"span_id": "orphan"},
            {"trace_id": ""},
            {"trace_id": 123},
            None,
        ],
    )
    def test_unusable_trace_context_decodes_to_none(
        self, paper_components, bad
    ):
        """Tracing must never fail a solve: junk decodes to None."""
        _, components = paper_components
        payload = solve_request_to_wire(["fp"], components[:1], MaxEntConfig(), [None])
        payload["trace"] = bad
        *_, got_trace = solve_request_from_wire(_json_round_trip(payload))
        assert got_trace is None

    def test_response_spans_are_tolerant_freight(self):
        span = {"trace_id": "t", "span_id": "s", "name": "shard.solve"}
        assert response_spans({"spans": [span, "junk", 7]}) == [span]
        assert response_spans({"spans": "junk"}) == []
        assert response_spans({}) == []

    def test_duplicate_warm_start_lengths_validated(self, paper_components):
        _, components = paper_components
        config = MaxEntConfig()
        payload = solve_request_to_wire(["fp"], components[:1], config, [None])
        payload["jobs"][0]["fingerprint"] = ""
        with pytest.raises(ReproError, match="fingerprint"):
            solve_request_from_wire(payload)


class TestMembershipWire:
    """The v5 additions: join/heartbeat announcements, same strictness."""

    @pytest.mark.parametrize(
        "to_wire,from_wire",
        [
            (join_request_to_wire, join_request_from_wire),
            (heartbeat_request_to_wire, heartbeat_request_from_wire),
        ],
    )
    def test_round_trip(self, to_wire, from_wire):
        payload = _json_round_trip(to_wire("shard0", "10.0.0.5", 8731))
        assert payload["protocol"] == SHARD_PROTOCOL
        assert from_wire(payload) == ("shard0", "10.0.0.5", 8731)

    @pytest.mark.parametrize(
        "from_wire", [join_request_from_wire, heartbeat_request_from_wire]
    )
    def test_version_mismatch_rejected(self, from_wire):
        payload = join_request_to_wire("shard0", "127.0.0.1", 9000)
        payload["protocol"] = "privacy-maxent-shard/4"
        with pytest.raises(ReproError, match="same version"):
            from_wire(payload)

    def test_unknown_field_rejected(self):
        payload = join_request_to_wire("shard0", "127.0.0.1", 9000)
        payload["surprise"] = 1
        with pytest.raises(ReproError, match="unknown field"):
            join_request_from_wire(payload)

    @pytest.mark.parametrize(
        "field,value,match",
        [
            ("worker_id", "", "worker_id"),
            ("worker_id", 7, "worker_id"),
            ("host", "", "host"),
            ("port", 0, "port"),
            ("port", 70000, "port"),
            ("port", True, "port"),
            ("port", "8731", "port"),
        ],
    )
    def test_malformed_membership_fields_rejected(self, field, value, match):
        payload = join_request_to_wire("shard0", "127.0.0.1", 9000)
        payload[field] = value
        with pytest.raises(ReproError, match=match):
            join_request_from_wire(payload)


class TestComponentSolveDefaults:
    def test_component_solve_is_plain_data(self):
        solve = ComponentSolve(
            p=np.zeros(2),
            stats=None,  # type: ignore[arg-type]
        )
        assert solve.multipliers is None
