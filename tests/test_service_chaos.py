"""Front-door fault injection: durable serving, proven under fire.

Every test here drives a *real* ``repro serve --state-dir`` subprocess
(:class:`~repro.cluster.chaos.ServerProcess`) through crash scenarios
the durability layer claims to survive:

- SIGKILL mid-chunked-upload, restart on the same state dir, resume the
  remaining chunks, finalize — and the digest (hence the release id)
  is bit-identical to a one-shot registration of the same payload, with
  zero duplicate store entries;
- SIGKILL after registration — the recovered store answers solves with
  the same posteriors;
- SIGTERM — graceful drain, final snapshot, clean exit code, and a
  restart that recovers from the snapshot alone;
- seeded connection faults (refused, reset mid-response, delayed) on
  the HTTP front door, absorbed entirely by the client's retry policy.
"""

from __future__ import annotations

import os

import pytest

from repro.cluster.chaos import ChaosProxy, FaultSchedule, ServerProcess
from repro.cluster.retry import RetryPolicy
from repro.core.privacy_maxent import PrivacyMaxEnt
from repro.core.serialize import published_to_dict
from repro.data.paper_example import Q4, S1, paper_published
from repro.knowledge.statements import ConditionalProbability
from repro.service import (
    BackgroundService,
    PrivacyService,
    ServiceClient,
    ServiceConfig,
)

#: One seed for the whole suite — date of the paper's conference run.
SEED = 20080612

KNOWLEDGE = [
    ConditionalProbability(given={"gender": "male"}, sa_value=S1, probability=0.0)
]


def wire() -> dict:
    return published_to_dict(paper_published())


def split(buckets: list, n: int) -> list[list]:
    return [buckets[i : i + n] for i in range(0, len(buckets), n)]


class TestCrashRecovery:
    def test_sigkill_mid_ingest_resumes_bit_identical(self, tmp_path):
        """The flagship: crash mid-upload, restart, resume, finalize."""
        payload = wire()
        chunks = split(payload["buckets"], 2)
        cut = len(chunks) // 2
        with ServerProcess(state_dir=str(tmp_path / "state")) as server:
            server.spawn()
            with server.client() as client:
                upload_id = client.begin_upload(
                    payload["schema"], name="durable"
                )
                for seq in range(cut):
                    ack = client.upload_chunk(upload_id, seq, chunks[seq])
                    assert ack["n_chunks"] == seq + 1

            server.kill()  # SIGKILL: no drain, no snapshot — journal only
            server.respawn()

            with server.client() as client:
                telemetry = client.telemetry()
                events = telemetry["events"]["counts"]
                assert events.get("journal_replayed", 0) >= 1
                assert events.get("ingest_resumed", 0) >= 1
                durable = telemetry["durability"]
                assert durable["replayed_records"] >= 1 + cut
                assert durable["resumed_uploads"] == 1

                status = client.upload_status(upload_id)
                assert status["n_chunks"] == cut
                for seq in range(cut, len(chunks)):
                    client.upload_chunk(upload_id, seq, chunks[seq])
                summary = client.finalize_upload(upload_id)

                # A one-shot registration of the same payload dedupes
                # against the resumed upload: digest bit-identical,
                # zero duplicate store entries.
                release_id = client.register(paper_published())
                assert release_id == summary["release_id"]
                assert len(client.releases()) == 1

                result = client.posterior(release_id, KNOWLEDGE)
                expected = PrivacyMaxEnt(
                    paper_published(), knowledge=KNOWLEDGE
                ).posterior()
                assert result.posterior.prob(Q4, S1) == pytest.approx(
                    expected.prob(Q4, S1), abs=1e-10
                )

    def test_sigkill_after_register_recovers_store(self, tmp_path):
        with ServerProcess(state_dir=str(tmp_path / "state")) as server:
            server.spawn()
            with server.client() as client:
                release_id = client.register(paper_published(), name="paper")
                baseline = client.posterior(release_id, KNOWLEDGE)

            server.kill()
            server.respawn()

            with server.client() as client:
                releases = client.releases()
                assert [r["release_id"] for r in releases] == [release_id]
                again = client.posterior(release_id, KNOWLEDGE)
                assert again.posterior.prob(Q4, S1) == pytest.approx(
                    baseline.posterior.prob(Q4, S1), abs=1e-10
                )

    def test_sigterm_drains_to_final_snapshot(self, tmp_path):
        state_dir = str(tmp_path / "state")
        with ServerProcess(state_dir=state_dir) as server:
            server.spawn()
            with server.client() as client:
                release_id = client.register(paper_published(), name="paper")

            assert server.terminate(timeout=30.0) == 0
            assert os.path.exists(os.path.join(state_dir, "snapshot.json"))

            server.respawn()
            with server.client() as client:
                telemetry = client.telemetry()
                assert telemetry["durability"]["snapshot_loaded"] is True
                assert [r["release_id"] for r in client.releases()] == [
                    release_id
                ]
                result = client.posterior(release_id, KNOWLEDGE)
                assert result.posterior.prob(Q4, S1) >= 0.0


class TestFrontDoorFaults:
    def test_seeded_faults_are_absorbed_by_client_retry(self):
        """Zero failed requests through a faulty front door."""
        schedule = FaultSchedule(
            SEED, refuse=0.15, reset=0.1, delay=0.1, delay_seconds=0.01
        )
        instance = PrivacyService(ServiceConfig(port=0))
        with BackgroundService(instance) as background:
            with ChaosProxy(
                "127.0.0.1", background.port, schedule
            ) as proxy:
                retry = RetryPolicy(
                    attempts=10, base_delay=0.01, max_delay=0.05
                )
                with ServiceClient(port=proxy.port, retry=retry) as client:
                    client.wait_until_healthy(timeout=15)
                    release_id = client.register_chunked(
                        paper_published(), chunk_buckets=2
                    )
                    for _n in range(10):
                        result = client.posterior(release_id, KNOWLEDGE)
                        assert result.posterior.prob(Q4, S1) >= 0.0
                        assert client.healthz()["status"] == "ok"
        # The schedule is auditable and deterministic: same seed, same
        # decisions — a run that passes passes every time.
        decisions = list(schedule.decisions)
        assert schedule.replay(len(decisions)) == decisions
        assert proxy.connections >= len(
            [d for d in decisions if d != "refuse"]
        )

    def test_faults_actually_fired(self):
        # Paranoia for the test above: the schedule must inject at the
        # configured rates, otherwise "zero failed requests" is vacuous.
        schedule = FaultSchedule(SEED, refuse=0.15, reset=0.1, delay=0.1)
        decisions = schedule.replay(40)
        assert "refuse" in decisions
        assert "reset" in decisions or "delay" in decisions
