"""End-to-end request deadlines: parsing, shedding, and the wire path."""

from __future__ import annotations

import time

import pytest

from repro.data.paper_example import Q4, S1, paper_published
from repro.errors import ReproError
from repro.knowledge.statements import ConditionalProbability
from repro.service import (
    BackgroundService,
    Deadline,
    DeadlineExceededError,
    PrivacyService,
    ServiceClient,
    ServiceConfig,
    ServiceError,
)

KNOWLEDGE = [
    ConditionalProbability(given={"gender": "male"}, sa_value=S1, probability=0.0)
]


class TestDeadlineParsing:
    def test_absent_header_means_no_deadline(self):
        assert Deadline.from_header(None) is None
        assert Deadline.from_header("   ") is None

    def test_positive_budget_parses(self):
        deadline = Deadline.from_header("2.5")
        assert deadline.budget == 2.5
        assert deadline.remaining() <= 2.5

    def test_junk_header_is_rejected(self):
        with pytest.raises(ReproError, match="number of seconds"):
            Deadline.from_header("soon-ish")

    def test_non_positive_budget_is_rejected(self):
        for raw in ("0", "-1"):
            with pytest.raises(ReproError, match="positive"):
                Deadline.from_header(raw)

    def test_check_raises_once_budget_is_gone(self):
        blown = Deadline(budget=0.01, started=time.monotonic() - 1.0)
        with pytest.raises(DeadlineExceededError) as exc:
            blown.check("solve")
        assert exc.value.phase == "solve"
        assert exc.value.budget == 0.01

    def test_header_value_clamps_to_positive_floor(self):
        blown = Deadline(budget=0.01, started=time.monotonic() - 1.0)
        forwarded = Deadline.from_header(blown.header_value())
        assert forwarded is not None
        assert forwarded.budget == pytest.approx(1e-3)


@pytest.fixture(scope="module")
def service():
    instance = PrivacyService(ServiceConfig(port=0))
    with BackgroundService(instance) as background:
        yield background.service


@pytest.fixture(scope="module")
def client(service):
    from repro.cluster.retry import RetryPolicy

    # No retries: these tests assert on the raw shed verdict, and a
    # deadline_exceeded 503 would otherwise be absorbed and re-sent.
    with ServiceClient(
        port=service.port, retry=RetryPolicy(attempts=1)
    ) as session:
        session.wait_until_healthy(timeout=10)
        yield session


@pytest.fixture(scope="module")
def release_id(client):
    return client.register(paper_published(), name="paper")


class TestServiceSheds:
    def test_blown_budget_is_shed_with_503(self, service, client, release_id):
        shed_before = service.telemetry.snapshot()["counters"].get(
            "deadline_shed", 0
        )
        with pytest.raises(ServiceError) as exc:
            client.posterior(release_id, KNOWLEDGE, deadline=1e-9)
        assert exc.value.status == 503
        assert exc.value.code == "deadline_exceeded"
        counters = service.telemetry.snapshot()["counters"]
        assert counters.get("deadline_shed", 0) == shed_before + 1
        assert service.events.counts().get("deadline_shed", 0) >= 1

    def test_shed_is_visible_on_telemetry_events(self, client, release_id):
        with pytest.raises(ServiceError):
            client.posterior(release_id, KNOWLEDGE, deadline=1e-9)
        telemetry = client.telemetry()
        assert telemetry["service"]["counters"].get("deadline_shed", 0) >= 1
        kinds = {e["kind"] for e in telemetry["events"]["recent"]}
        assert "deadline_shed" in kinds

    def test_generous_budget_is_served(self, client, release_id):
        result = client.posterior(release_id, KNOWLEDGE, deadline=60.0)
        assert result.posterior.prob(Q4, S1) >= 0.0

    def test_malformed_deadline_header_is_400(self, client, release_id):
        from repro.service.deadline import DEADLINE_HEADER

        with pytest.raises(ServiceError) as exc:
            client._request(
                "GET",
                "/v1/releases",
                extra_headers={DEADLINE_HEADER: "whenever"},
            )
        assert exc.value.status == 400

    def test_deadline_shed_lands_on_metrics(self, client, release_id):
        with pytest.raises(ServiceError):
            client.posterior(release_id, KNOWLEDGE, deadline=1e-9)
        metrics = client.metrics()
        assert (
            'repro_service_recovery_events_total{event="deadline_shed"}'
            in metrics
        )
