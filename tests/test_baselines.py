"""Tests for the assignment-enumeration baseline (Martin-et-al family)."""

import pytest

from repro.baselines.enumeration import (
    AssignmentOracle,
    enumeration_posterior,
    worst_case_disclosure,
)
from repro.core.privacy_maxent import PrivacyMaxEnt
from repro.data.paper_example import (
    Q1,
    Q2,
    Q4,
    S1,
    S2,
    S3,
    paper_published,
)
from repro.errors import InfeasibleKnowledgeError, NotSupportedError
from repro.knowledge.statements import (
    ConditionalInterval,
    ConditionalProbability,
)

MALE_NO_BC = ConditionalProbability(
    given={"gender": "male"}, sa_value=S1, probability=0.0
)


@pytest.fixture(scope="module")
def published():
    return paper_published()


class TestOracle:
    def test_counts_without_knowledge(self, published):
        oracle = AssignmentOracle(published)
        # Bucket 0 (q1,q1,q2,q3 | s1,s2,s2,s3): 12 orderings minus the q1/q1
        # symmetry collapses... the enumeration test suite already pins this
        # count; here we just check all buckets have > 1 assignment.
        assert all(
            oracle.consistent_count(b) >= 1
            for b in range(published.n_buckets)
        )

    def test_zero_rule_filters(self, published):
        free = AssignmentOracle(published)
        constrained = AssignmentOracle(published, [MALE_NO_BC])
        for b in range(published.n_buckets):
            assert constrained.consistent_count(b) <= free.consistent_count(b)
        # Bucket 1 (q1, q3, q4 | s1, s3, s4): males cannot take s1, so s1 is
        # pinned to q4 and only the s3/s4 split remains: 2 assignments.
        assert constrained.consistent_count(1) == 2

    def test_contradiction_detected(self, published):
        # Nobody may have Flu anywhere -> bucket 0 cannot be assigned.
        impossible = [
            ConditionalProbability(
                given={"gender": "male"}, sa_value=S2, probability=0.0
            ),
            ConditionalProbability(
                given={"gender": "female"}, sa_value=S2, probability=0.0
            ),
        ]
        with pytest.raises(InfeasibleKnowledgeError):
            AssignmentOracle(published, impossible)

    def test_probabilistic_rule_rejected(self, published):
        probabilistic = ConditionalProbability(
            given={"gender": "male"}, sa_value=S2, probability=0.3
        )
        with pytest.raises(NotSupportedError, match="probabilistic"):
            AssignmentOracle(published, [probabilistic])

    def test_non_conditional_statement_rejected(self, published):
        interval = ConditionalInterval(
            given={"gender": "male"}, sa_value=S2, low=0.1, high=0.5
        )
        with pytest.raises(NotSupportedError):
            AssignmentOracle(published, [interval])

    def test_one_rule_supported(self, published):
        # "Every (female, junior) has Breast Cancer" — true in the data.
        one_rule = ConditionalProbability(
            given={"gender": "female", "degree": "junior"},
            sa_value=S1,
            probability=1.0,
        )
        oracle = AssignmentOracle(published, [one_rule])
        assert oracle.bucket_conditional(Q4, S1, 1) == pytest.approx(1.0)


class TestEnumerationPosterior:
    def test_matches_eq9_without_knowledge(self, published):
        """Exchangeability: the combinatorial prior reproduces Eq. (9)."""
        combinatorial = enumeration_posterior(published)
        maxent = PrivacyMaxEnt(published).posterior()
        for q in maxent.qi_tuples:
            for s in maxent.sa_domain:
                assert combinatorial.prob(q, s) == pytest.approx(
                    maxent.prob(q, s), abs=1e-9
                )

    def test_breast_cancer_deduction(self, published):
        posterior = enumeration_posterior(published, [MALE_NO_BC])
        assert posterior.prob(Q4, S1) == pytest.approx(1.0)

    def test_agrees_with_maxent_on_symmetric_knowledge(self, published):
        """On the paper's bucket 0, barring males from s1 still leaves the
        remaining pattern symmetric enough that uniform-over-worlds and
        MaxEnt coincide: both give P(s3 | q1, b0) = 1/3."""
        oracle = AssignmentOracle(published, [MALE_NO_BC])
        combinatorial = oracle.bucket_conditional(Q1, S3, 0)
        assert combinatorial == pytest.approx(1 / 3)

        engine = PrivacyMaxEnt(published, knowledge=[MALE_NO_BC])
        solution = engine.solve()
        # P(s3 | q1, b0) = P(q1, s3, b0) / P(q1, b0) = joint / 0.2.
        maxent = solution.joint(Q1, S3, 0) / 0.2
        assert maxent == pytest.approx(1 / 3, abs=1e-6)

    def test_diverges_from_maxent_on_asymmetric_knowledge(self):
        """The frameworks genuinely differ on asymmetric zero patterns.

        Bucket (q0, q1, q2 | s0, s1, s2) with q1 barred from s2 and q2
        barred from s1.  Permutations respecting the pattern: (s0,s1,s2),
        (s1,s0,s2), (s2,s1,... invalid) ... exactly three worlds, giving
        P(s0 | q1, b) = 1/3.  MaxEnt's product-form solution instead gives
        the Sinkhorn value (sqrt-of-5 irrational), != 1/3.
        """
        from repro.data.schema import Attribute, Schema
        from repro.data.table import Table
        from repro.anonymize.buckets import BucketizedTable
        import numpy as np

        schema = Schema(
            attributes=(
                Attribute("q", ("q0", "q1", "q2")),
                Attribute("s", ("s0", "s1", "s2")),
            ),
            qi_attributes=("q",),
            sa_attribute="s",
        )
        table = Table.from_records(
            schema,
            [
                {"q": "q0", "s": "s0"},
                {"q": "q1", "s": "s1"},
                {"q": "q2", "s": "s2"},
            ],
        )
        published = BucketizedTable.from_assignment(
            table, np.zeros(3, dtype=np.int64)
        )
        knowledge = [
            ConditionalProbability(given={"q": "q1"}, sa_value="s2", probability=0.0),
            ConditionalProbability(given={"q": "q2"}, sa_value="s1", probability=0.0),
        ]
        oracle = AssignmentOracle(published, knowledge)
        assert oracle.world_count(0) == 3
        combinatorial = oracle.bucket_conditional(("q1",), "s0", 0)
        assert combinatorial == pytest.approx(1 / 3)

        engine = PrivacyMaxEnt(published, knowledge=knowledge)
        maxent = engine.solve().joint(("q1",), "s0", 0) * 3  # P(q1, b) = 1/3
        # Sinkhorn root of x^2 - x + 1/9 scaled: the smaller root ~ 0.38197.
        assert maxent == pytest.approx((3 - 5 ** 0.5) / 2, abs=1e-6)
        assert abs(combinatorial - maxent) > 0.04

    def test_rows_are_distributions(self, published):
        posterior = enumeration_posterior(published, [MALE_NO_BC])
        sums = posterior.matrix.sum(axis=1)
        assert all(abs(total - 1.0) < 1e-9 for total in sums)


class TestWorstCaseDisclosure:
    def test_no_knowledge_value(self, published):
        # Max bucket-level conditional without knowledge: 2/3? Check bound.
        value = worst_case_disclosure(published)
        assert 0 < value < 1.0

    def test_deterministic_deduction_scores_one(self, published):
        assert worst_case_disclosure(published, [MALE_NO_BC]) == pytest.approx(
            1.0
        )

    def test_monotone_in_knowledge(self, published):
        free = worst_case_disclosure(published)
        informed = worst_case_disclosure(published, [MALE_NO_BC])
        assert informed >= free - 1e-12
