"""Latency histograms: quantile edges, exact merging, summary round-trip."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service.telemetry import (
    LATENCY_BOUNDS,
    LatencyHistogram,
    ServiceTelemetry,
)

durations = st.floats(
    min_value=0.0, max_value=120.0, allow_nan=False, allow_infinity=False
)


def histogram_of(values) -> LatencyHistogram:
    histogram = LatencyHistogram()
    for value in values:
        histogram.observe(value)
    return histogram


class TestQuantileEdges:
    def test_empty_histogram_reads_zero(self):
        empty = LatencyHistogram()
        for q in (0.0, 0.5, 0.95, 1.0):
            assert empty.quantile(q) == 0.0
        summary = empty.summary()
        assert summary["count"] == 0
        assert summary["mean_seconds"] == 0.0
        assert summary["p99_seconds"] == 0.0

    def test_single_observation_is_every_quantile(self):
        histogram = histogram_of([0.003])
        for q in (0.01, 0.5, 0.99):
            assert histogram.quantile(q) == pytest.approx(0.003, abs=0.005)
        # Clamped to the real maximum, not the bucket's upper bound.
        assert histogram.quantile(0.99) <= histogram.max_seconds

    def test_value_on_a_bound_stays_in_that_bucket(self):
        histogram = histogram_of([LATENCY_BOUNDS[3]])
        assert histogram.counts[3] == 1

    def test_overflow_quantile_interpolates(self):
        """Ranks inside the overflow bucket spread toward the max
        instead of all pessimistically reporting the maximum."""
        top = LATENCY_BOUNDS[-1]
        histogram = histogram_of([top + 10.0] * 100)
        histogram.max_seconds = top + 40.0
        p50 = histogram.quantile(0.50)
        p99 = histogram.quantile(0.99)
        assert top < p50 < p99 <= histogram.max_seconds
        assert p50 == pytest.approx(top + 0.5 * 40.0)

    def test_quantiles_are_monotone(self):
        histogram = histogram_of([0.001, 0.02, 0.3, 4.0, 90.0])
        quantiles = [histogram.quantile(q) for q in (0.1, 0.5, 0.9, 0.99)]
        assert quantiles == sorted(quantiles)


class TestMerge:
    def test_merge_is_exact_bucket_addition(self):
        left = histogram_of([0.001, 0.5])
        right = histogram_of([0.002, 70.0])
        merged = histogram_of([0.001, 0.5, 0.002, 70.0])
        left.merge(right)
        assert left.counts == merged.counts
        assert left.count == merged.count
        assert left.max_seconds == merged.max_seconds

    @given(
        st.lists(durations, max_size=30),
        st.lists(durations, max_size=30),
        st.lists(durations, max_size=30),
    )
    @settings(max_examples=50, deadline=None)
    def test_merge_is_associative(self, a, b, c):
        left = histogram_of(a).merge(histogram_of(b).merge(histogram_of(c)))
        right = histogram_of(a).merge(histogram_of(b)).merge(histogram_of(c))
        assert left.counts == right.counts
        assert left.count == right.count
        assert left.max_seconds == right.max_seconds
        assert left.total_seconds == pytest.approx(right.total_seconds)

    @given(st.lists(durations, max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_merge_into_empty_is_identity(self, values):
        merged = LatencyHistogram().merge(histogram_of(values))
        assert merged.counts == histogram_of(values).counts
        assert merged.summary() == histogram_of(values).summary()


class TestSummaryRoundTrip:
    def test_from_summary_rebuilds_mergeable_state(self):
        original = histogram_of([0.004, 0.2, 3.0])
        rebuilt = LatencyHistogram.from_summary(original.summary())
        assert rebuilt.counts == original.counts
        assert rebuilt.count == original.count
        assert rebuilt.total_seconds == original.total_seconds
        assert rebuilt.max_seconds == original.max_seconds
        # The rebuilt histogram keeps merging exactly.
        rebuilt.merge(histogram_of([0.004]))
        assert rebuilt.count == 4

    def test_from_summary_rejects_missing_buckets(self):
        with pytest.raises(ValueError, match="bucket_counts"):
            LatencyHistogram.from_summary({"count": 3})

    def test_from_summary_rejects_foreign_bounds(self):
        with pytest.raises(ValueError, match="bucket_counts"):
            LatencyHistogram.from_summary({"bucket_counts": [1, 2, 3]})

    def test_summary_exposes_raw_buckets(self):
        summary = histogram_of([0.01]).summary()
        assert len(summary["bucket_counts"]) == len(LATENCY_BOUNDS) + 1
        assert sum(summary["bucket_counts"]) == 1


class TestServiceTelemetry:
    def test_observe_counts_and_buckets_by_endpoint(self):
        telemetry = ServiceTelemetry()
        telemetry.observe("GET /healthz", 200, 0.001)
        telemetry.observe("GET /healthz", 200, 0.002)
        telemetry.observe("POST /solve", 500, 1.5)
        snapshot = telemetry.snapshot()
        assert snapshot["counters"]["requests_total"] == 3
        assert snapshot["responses_by_status"] == {"200": 2, "500": 1}
        assert snapshot["endpoints"]["GET /healthz"]["count"] == 2
        assert snapshot["endpoints"]["POST /solve"]["count"] == 1

    def test_incr_names_are_free_form(self):
        telemetry = ServiceTelemetry()
        telemetry.incr("solves_started")
        telemetry.incr("solves_started", 2)
        assert telemetry.counters["solves_started"] == 3
