"""Unit tests for variable index spaces."""

import numpy as np
import pytest

from repro.data.paper_example import (
    Q1,
    Q2,
    Q3,
    Q4,
    S1,
    S2,
    S4,
    paper_published,
)
from repro.errors import KnowledgeError
from repro.knowledge.individuals import PseudonymTable
from repro.maxent.indexing import GroupVariableSpace, PersonVariableSpace


@pytest.fixture(scope="module")
def space():
    return GroupVariableSpace(paper_published())


@pytest.fixture(scope="module")
def person_space():
    return PersonVariableSpace(PseudonymTable(paper_published()))


class TestGroupSpace:
    def test_variable_count(self, space):
        # Bucket 0: 3 distinct q x 3 distinct s = 9; bucket 1: 3 x 3 = 9;
        # bucket 2: 3 x 3 = 9.
        assert space.n_vars == 27

    def test_zero_invariants_have_no_variable(self, space):
        # q1 does not occur in bucket 2 (0-based), s1 does not either.
        assert space.index_of(Q1, S2, 2) == -1
        assert space.index_of(Q2, S1, 2) == -1

    def test_valid_triples_indexed(self, space):
        assert space.index_of(Q1, S2, 0) >= 0
        assert space.index_of(Q4, S1, 1) >= 0

    def test_describe_var_roundtrip(self, space):
        for var in range(space.n_vars):
            q, s, b = space.describe_var(var)
            assert space.index_of(q, s, b) == var

    def test_counts_match_paper(self, space):
        qid = space.qi_id(Q1)
        assert space.qi_bucket_count(qid, 0) == 2  # q1 twice in bucket 1
        assert space.qi_bucket_count(qid, 1) == 1
        assert space.qi_bucket_count(qid, 2) == 0
        s2_id = space.sa_id_of[S2]
        assert space.sa_bucket_count(s2_id, 0) == 2  # two Flu in bucket 1

    def test_unknown_qi_raises(self, space):
        with pytest.raises(KnowledgeError):
            space.qi_id(("alien", "phd"))

    def test_vars_matching_partial(self, space):
        hits = space.vars_matching({"gender": "male"}, S2)
        triples = {space.describe_var(int(v)) for v in hits}
        assert triples == {(Q1, S2, 0), (Q3, S2, 0), (("male", "graduate"), S2, 2)}

    def test_vars_matching_unknown_sa_empty(self, space):
        assert space.vars_matching({"gender": "male"}, "Malaria").size == 0

    def test_qv_probability(self, space):
        assert space.qv_probability({"gender": "male"}) == pytest.approx(0.6)
        assert space.qv_probability(
            {"gender": "female", "degree": "college"}
        ) == pytest.approx(0.2)

    def test_empty_qv_rejected(self, space):
        with pytest.raises(KnowledgeError):
            space.qv_probability({})


class TestPersonSpace:
    def test_variable_count(self, person_space):
        # Per bucket: (sum of pseudonym-group sizes over distinct q in the
        # bucket) x distinct SA values.
        # Bucket 0: q1(3) + q2(2) + q3(2) = 7 people x 3 SA = 21
        # Bucket 1: q1(3) + q3(2) + q4(1) = 6 x 3 = 18
        # Bucket 2: q2(2) + q5(1) + q6(1) = 4 x 3 = 12
        assert person_space.n_vars == 51

    def test_index_of_structural_zero(self, person_space):
        # i9 is Charlie (q5), only in bucket 2.
        assert person_space.index_of("i9", S4, 0) == -1
        assert person_space.index_of("i9", S4, 2) >= 0

    def test_describe_var_roundtrip(self, person_space):
        for var in range(person_space.n_vars):
            name, s, b = person_space.describe_var(var)
            assert person_space.index_of(name, s, b) == var

    def test_vars_of_person(self, person_space):
        hits = person_space.vars_of_person("i1", S2)
        buckets = {person_space.describe_var(int(v))[2] for v in hits}
        assert buckets == {0}  # Flu is only available in bucket 0 for q1

    def test_vars_of_unknown_person(self, person_space):
        with pytest.raises(KnowledgeError):
            person_space.vars_of_person("i999", S2)

    def test_vars_matching_lifts_group_query(self, person_space):
        hits = person_space.vars_matching({"gender": "male"}, S2)
        people = {person_space.describe_var(int(v))[0] for v in hits}
        # Males: i1..i3 (q1), i6, i7 (q3), i10 (q6).
        assert people == {"i1", "i2", "i3", "i6", "i7", "i10"}

    def test_qv_probability_matches_group(self, person_space, space):
        assert person_space.qv_probability(
            {"gender": "male"}
        ) == space.qv_probability({"gender": "male"})


class TestGatherCounts:
    """Vectorized (a, b) -> count lookups, including range edge cases."""

    def test_basic_lookup(self):
        from repro.maxent.indexing import _gather_counts

        counts = {(0, 0): 3, (0, 2): 5, (1, 1): 7}
        out = _gather_counts(
            counts, np.array([0, 0, 1, 1]), np.array([0, 2, 1, 0])
        )
        assert out.tolist() == [3.0, 5.0, 7.0, 0.0]

    def test_stored_bucket_beyond_queried_range_reads_zero(self):
        from repro.maxent.indexing import _gather_counts

        # Stored buckets 5 and 9 lie beyond the queried bucket range
        # [0, 1]; they must read as zero without crashing or aliasing
        # onto a different (a, b) key through a too-small stride.
        counts = {(0, 5): 11, (1, 9): 13, (1, 0): 2}
        out = _gather_counts(
            counts, np.array([0, 1, 1]), np.array([0, 0, 1])
        )
        assert out.tolist() == [0.0, 2.0, 0.0]

    def test_all_stored_beyond_range(self):
        from repro.maxent.indexing import _gather_counts

        counts = {(0, 100): 1, (2, 50): 4}
        out = _gather_counts(counts, np.array([0, 2]), np.array([0, 1]))
        assert out.tolist() == [0.0, 0.0]

    def test_no_false_positive_from_stride_aliasing(self):
        from repro.maxent.indexing import _gather_counts

        # With a stride derived only from the *queried* b-range (the old
        # bug surface), key (1, 0) would alias stored (0, 5) when the
        # stride collapsed; the combined stride must keep them distinct.
        counts = {(0, 5): 42}
        out = _gather_counts(counts, np.array([1]), np.array([0]))
        assert out.tolist() == [0.0]

    def test_empty_inputs(self):
        from repro.maxent.indexing import _gather_counts

        assert _gather_counts({}, np.array([1]), np.array([1])).tolist() == [0.0]
        assert _gather_counts({(1, 1): 2}, np.array([]), np.array([])).size == 0

    def test_space_count_tables_match_scalar_lookups(self, space):
        pairs = space.qi_bucket_pairs()
        qids = np.array([q for q, _ in pairs])
        buckets = np.array([b for _, b in pairs])
        batch = space.qi_bucket_counts(qids, buckets)
        scalar = [space.qi_bucket_count(q, b) for q, b in pairs]
        assert batch.tolist() == scalar
        # Out-of-range bucket queries read zero.
        assert space.qi_bucket_counts(
            qids[:1], np.array([10_000])
        ).tolist() == [0.0]
