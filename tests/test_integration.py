"""End-to-end integration tests on the Adult-shaped pipeline."""

import numpy as np
import pytest

from repro.core.accuracy import estimation_accuracy
from repro.core.metrics import max_disclosure
from repro.core.privacy_maxent import PrivacyMaxEnt, assess
from repro.core.quantifier import PosteriorTable
from repro.knowledge.bounds import TopKBound
from repro.maxent.solver import MaxEntConfig


class TestAdultPipeline:
    """The paper's Section 7 pipeline at test scale, shared via fixtures."""

    def test_bucketization_is_exact_partition(
        self, adult_small, adult_small_published
    ):
        assert adult_small_published.n_records == adult_small.n_rows
        assert adult_small_published.n_buckets == adult_small.n_rows // 5

    def test_rule_universe_nontrivial(self, adult_small_rules):
        assert adult_small_rules.n_positive > 100
        assert adult_small_rules.n_negative > 100
        # Confidence-1 negative rules must exist (the Breast-Cancer kind).
        assert adult_small_rules.negative[0].confidence == 1.0

    def test_accuracy_decreases_monotonically_in_k(
        self, adult_small, adult_small_published, adult_small_rules
    ):
        truth = PosteriorTable.from_table(adult_small)
        accuracies = []
        for k in (0, 20, 80, 320):
            engine = PrivacyMaxEnt(
                adult_small_published,
                knowledge=TopKBound(k // 2, k - k // 2).statements(
                    adult_small_rules
                ),
                config=MaxEntConfig(raise_on_infeasible=False),
            )
            accuracies.append(estimation_accuracy(truth, engine.posterior()))
        assert all(np.isfinite(accuracies))
        for earlier, later in zip(accuracies, accuracies[1:]):
            assert later <= earlier + 1e-6, accuracies

    def test_mixed_bound_strictly_informative(
        self, adult_small, adult_small_published, adult_small_rules
    ):
        truth = PosteriorTable.from_table(adult_small)
        baseline = PrivacyMaxEnt(adult_small_published).posterior()
        informed = PrivacyMaxEnt(
            adult_small_published,
            knowledge=TopKBound(50, 50).statements(adult_small_rules),
            config=MaxEntConfig(raise_on_infeasible=False),
        ).posterior()
        assert estimation_accuracy(truth, informed) < estimation_accuracy(
            truth, baseline
        )

    def test_disclosure_never_decreases_with_knowledge(
        self, adult_small_published, adult_small_rules
    ):
        baseline = PrivacyMaxEnt(adult_small_published).posterior()
        informed = PrivacyMaxEnt(
            adult_small_published,
            knowledge=TopKBound(40, 40).statements(adult_small_rules),
            config=MaxEntConfig(raise_on_infeasible=False),
        ).posterior()
        # Not a theorem pointwise, but with confidence-1 rules in the mix
        # the max disclosure can only have grown here.
        assert max_disclosure(informed) >= max_disclosure(baseline) - 1e-9

    def test_constraints_satisfied_at_scale(
        self, adult_small_published, adult_small_rules
    ):
        engine = PrivacyMaxEnt(
            adult_small_published,
            knowledge=TopKBound(100, 100).statements(adult_small_rules),
            config=MaxEntConfig(raise_on_infeasible=False),
        )
        solution = engine.solve()
        residual = engine.system.residual(solution.p)
        assert residual < 1e-5
        assert solution.total_mass() == pytest.approx(1.0, abs=1e-6)

    def test_assess_workflow(self, adult_small, adult_small_published, adult_small_rules):
        assessments = assess(
            adult_small,
            adult_small_published,
            [TopKBound(0, 0), TopKBound(30, 30)],
            rules=adult_small_rules,
            config=MaxEntConfig(raise_on_infeasible=False),
        )
        assert len(assessments) == 2
        assert (
            assessments[1].estimation_accuracy
            <= assessments[0].estimation_accuracy
        )
        assert assessments[1].n_constraints > 0


class TestCrossSubstrateIntegration:
    def test_mondrian_release_quantified(self, adult_small):
        from repro.anonymize.mondrian import mondrian_anonymize

        published = mondrian_anonymize(adult_small, k=60).to_buckets()
        engine = PrivacyMaxEnt(published)
        posterior = engine.posterior()
        assert np.allclose(posterior.matrix.sum(axis=1), 1.0, atol=1e-7)

    def test_randomized_release_reconstruction(self, adult_small):
        from repro.anonymize.randomize import (
            randomized_response,
            reconstruct_distribution,
        )

        noisy = randomized_response(adult_small, 0.5, seed=1)
        estimate = reconstruct_distribution(noisy, 0.5)
        assert estimate.sum() == pytest.approx(1.0)
