"""Unit tests for repro.data.schema."""

import pytest

from repro.data.schema import Attribute, Schema
from repro.errors import DomainError, SchemaError


def make_schema(**overrides):
    kwargs = dict(
        attributes=(
            Attribute("name", ("a", "b")),
            Attribute("gender", ("male", "female")),
            Attribute("disease", ("flu", "hiv")),
        ),
        qi_attributes=("gender",),
        sa_attribute="disease",
        id_attributes=("name",),
    )
    kwargs.update(overrides)
    return Schema(**kwargs)


class TestAttribute:
    def test_code_label_roundtrip(self):
        attr = Attribute("color", ("red", "green", "blue"))
        for code, label in enumerate(attr.domain):
            assert attr.code_of(label) == code
            assert attr.label_of(code) == label

    def test_size(self):
        assert Attribute("x", ("a", "b", "c")).size == 3

    def test_unknown_label_rejected(self):
        with pytest.raises(DomainError):
            Attribute("x", ("a",)).code_of("zzz")

    def test_out_of_range_code_rejected(self):
        with pytest.raises(DomainError):
            Attribute("x", ("a",)).label_of(5)

    def test_duplicate_domain_rejected(self):
        with pytest.raises(SchemaError):
            Attribute("x", ("a", "a"))

    def test_empty_domain_rejected(self):
        with pytest.raises(SchemaError):
            Attribute("x", ())

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Attribute("", ("a",))


class TestSchema:
    def test_roles_resolved(self):
        schema = make_schema()
        assert schema.sa.name == "disease"
        assert [a.name for a in schema.qi] == ["gender"]
        assert schema.is_qi("gender")
        assert not schema.is_qi("disease")

    def test_qi_index(self):
        schema = make_schema()
        assert schema.qi_index("gender") == 0
        with pytest.raises(SchemaError):
            schema.qi_index("disease")

    def test_attribute_lookup_unknown(self):
        with pytest.raises(SchemaError):
            make_schema().attribute("nope")

    def test_duplicate_attribute_names_rejected(self):
        with pytest.raises(SchemaError):
            make_schema(
                attributes=(
                    Attribute("gender", ("male", "female")),
                    Attribute("gender", ("m", "f")),
                    Attribute("disease", ("flu", "hiv")),
                )
            )

    def test_unknown_qi_rejected(self):
        with pytest.raises(SchemaError):
            make_schema(qi_attributes=("zip",))

    def test_unknown_sa_rejected(self):
        with pytest.raises(SchemaError):
            make_schema(sa_attribute="zip")

    def test_role_overlap_rejected(self):
        with pytest.raises(SchemaError):
            make_schema(qi_attributes=("gender", "disease"))

    def test_needs_qi(self):
        with pytest.raises(SchemaError):
            make_schema(qi_attributes=())

    def test_without_ids(self):
        schema = make_schema()
        stripped = schema.without_ids()
        assert stripped.id_attributes == ()
        assert "name" not in stripped.attribute_names
        assert stripped.sa_attribute == "disease"

    def test_without_ids_noop_when_no_ids(self):
        schema = make_schema(
            attributes=(
                Attribute("gender", ("male", "female")),
                Attribute("disease", ("flu", "hiv")),
            ),
            id_attributes=(),
        )
        assert schema.without_ids() is schema

    def test_qi_domain_sizes(self):
        assert make_schema().qi_domain_sizes() == (2,)
