"""Unit tests for bucket-graph decomposition (Section 5.5)."""

import numpy as np
import pytest

from repro.data.paper_example import paper_published
from repro.errors import ReproError
from repro.knowledge.compiler import compile_statements
from repro.knowledge.statements import ConditionalProbability
from repro.maxent.constraints import ConstraintSystem, data_constraints
from repro.maxent.decompose import decompose
from repro.maxent.indexing import GroupVariableSpace


@pytest.fixture(scope="module")
def space():
    return GroupVariableSpace(paper_published())


def with_knowledge(space, statements):
    system = data_constraints(space)
    system.extend(compile_statements(statements, space))
    return system


class TestNoKnowledge:
    def test_one_component_per_bucket(self, space):
        components = decompose(space, data_constraints(space))
        assert len(components) == 3
        assert all(len(c.buckets) == 1 for c in components)
        assert all(c.is_irrelevant for c in components)

    def test_masses_sum_to_one(self, space):
        components = decompose(space, data_constraints(space))
        assert sum(c.mass for c in components) == pytest.approx(1.0)

    def test_variables_partitioned(self, space):
        components = decompose(space, data_constraints(space))
        all_vars = np.concatenate([c.var_indices for c in components])
        assert sorted(all_vars.tolist()) == list(range(space.n_vars))

    def test_disabled_gives_single_component(self, space):
        components = decompose(
            space, data_constraints(space), enabled=False
        )
        assert len(components) == 1
        assert components[0].buckets == (0, 1, 2)
        assert components[0].mass == pytest.approx(1.0)


class TestWithKnowledge:
    def test_knowledge_links_buckets(self, space):
        # P(s3 | q3): q3 occurs in buckets 0 and 1 -> they merge
        # (the paper's Section 5.5 example).
        system = with_knowledge(
            space,
            [
                ConditionalProbability(
                    given={"gender": "male", "degree": "high school"},
                    sa_value="Pneumonia",
                    probability=0.5,
                )
            ],
        )
        components = decompose(space, system)
        assert len(components) == 2
        merged = next(c for c in components if len(c.buckets) == 2)
        assert merged.buckets == (0, 1)
        assert merged.knowledge_rows == 1
        assert not merged.is_irrelevant
        single = next(c for c in components if len(c.buckets) == 1)
        assert single.is_irrelevant  # bucket 2 untouched (Def. 5.6)

    def test_single_bucket_knowledge_stays_local(self, space):
        # Knowledge about q4 (only in bucket 1) must not merge anything.
        system = with_knowledge(
            space,
            [
                ConditionalProbability(
                    given={"degree": "junior"},
                    sa_value="Breast Cancer",
                    probability=1.0,
                )
            ],
        )
        components = decompose(space, system)
        assert len(components) == 3
        touched = next(c for c in components if c.knowledge_rows)
        assert touched.buckets == (1,)

    def test_rows_land_in_their_component(self, space):
        system = with_knowledge(
            space,
            [
                ConditionalProbability(
                    given={"gender": "male"}, sa_value="Flu", probability=0.3
                )
            ],
        )
        components = decompose(space, system)
        for component in components:
            for row in component.system.equalities:
                assert row.indices.max() < component.n_vars

    def test_component_system_self_consistent(self, space):
        system = with_knowledge(
            space,
            [
                ConditionalProbability(
                    given={"gender": "male"}, sa_value="Flu", probability=0.3
                )
            ],
        )
        for component in decompose(space, system):
            total_qi_rhs = sum(
                r.rhs for r in component.system.rows_of_kind("qi")
            )
            assert total_qi_rhs == pytest.approx(component.mass)


class TestErrors:
    def test_missing_partition_rows_rejected(self, space):
        bare = ConstraintSystem(space.n_vars)
        bare.add_equality([0, 1], [1.0, 1.0], 0.2, kind="bk")
        with pytest.raises(ReproError, match="data rows"):
            decompose(space, bare)
