"""Tests for the exception hierarchy and assessment reports."""

import pytest

from repro.core.report import PrivacyAssessment, render_assessments
from repro.errors import (
    AnonymizationError,
    CompilationError,
    DiversityError,
    DomainError,
    InfeasibleKnowledgeError,
    KnowledgeError,
    NotSupportedError,
    ReproError,
    SchemaError,
    SolverError,
)
from repro.maxent.solution import SolverStats


class TestHierarchy:
    """One catch-all: every library error derives from ReproError."""

    @pytest.mark.parametrize(
        "exc_type",
        [
            SchemaError,
            DomainError,
            AnonymizationError,
            DiversityError,
            KnowledgeError,
            CompilationError,
            InfeasibleKnowledgeError,
            SolverError,
            NotSupportedError,
        ],
    )
    def test_subclass_of_repro_error(self, exc_type):
        assert issubclass(exc_type, ReproError)

    def test_diversity_is_anonymization(self):
        assert issubclass(DiversityError, AnonymizationError)

    def test_compilation_is_knowledge(self):
        assert issubclass(CompilationError, KnowledgeError)

    def test_infeasible_carries_residual(self):
        error = InfeasibleKnowledgeError("bad", residual=0.25)
        assert error.residual == 0.25
        assert InfeasibleKnowledgeError("bad").residual is None

    def test_solver_error_metadata(self):
        error = SolverError("slow", solver="gis", iterations=99)
        assert error.solver == "gis"
        assert error.iterations == 99


def make_assessment(**overrides):
    base = dict(
        bound="Top-(5+, 5-)",
        n_constraints=10,
        estimation_accuracy=1.23,
        max_disclosure=0.5,
        bayes_vulnerability=0.4,
        effective_l=2.0,
        expected_entropy_bits=1.8,
        stats=SolverStats(
            solver="lbfgs",
            iterations=42,
            seconds=0.1,
            n_vars=100,
            n_equalities=50,
            n_inequalities=0,
            eq_residual=1e-9,
            ineq_residual=0.0,
            converged=True,
        ),
    )
    base.update(overrides)
    return PrivacyAssessment(**base)


class TestPrivacyAssessment:
    def test_row_matches_headers(self):
        assessment = make_assessment()
        assert len(assessment.row()) == len(PrivacyAssessment.headers())

    def test_row_contents(self):
        row = make_assessment().row()
        assert row[0] == "Top-(5+, 5-)"
        assert row[1] == 10
        assert row[-2] == 42  # iterations

    def test_render_multiple(self):
        text = render_assessments(
            [make_assessment(), make_assessment(bound="Top-(9+, 0-)")],
            title="Report",
        )
        assert "Report" in text
        assert "Top-(5+, 5-)" in text
        assert "Top-(9+, 0-)" in text
        assert text.count("\n") >= 4
