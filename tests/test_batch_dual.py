"""The batched block-diagonal dual solver (repro.maxent.batch_dual).

Equivalence discipline: every batched solve must agree with the
per-component :func:`solve_dual_lbfgs` results within the solver
tolerance — the batched path changes the trajectory, never the optimum.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.maxent.batch_dual import (
    DualBlock,
    block_from_dual,
    segment_max,
    solve_batch_dual,
)
from repro.maxent.constraints import ConstraintSystem
from repro.maxent.dual import build_dual
from repro.maxent.lbfgs import solve_dual_lbfgs

TOL = 1e-6


def simple_block(
    n_vars: int = 6, pair_value: float = 0.45, mass: float = 1.0
):
    """A tiny well-behaved dual: mass row + one two-variable row."""
    system = ConstraintSystem(n_vars)
    system.add_equality(
        list(range(n_vars)), [1.0] * n_vars, mass, kind="qi", label="mass"
    )
    system.add_equality(
        [0, 1], [1.0, 1.0], pair_value * mass, kind="stmt", label="pair"
    )
    return build_dual(system, mass)


def straggler_block(n_vars: int = 24, with_inequality: bool = False):
    """Near-collinear nested prefix rows: many L-BFGS iterations."""
    system = ConstraintSystem(n_vars)
    system.add_equality(
        list(range(n_vars)), [1.0] * n_vars, 1.0, kind="qi", label="mass"
    )
    total = 1.0
    for k in range(n_vars - 1, 1, -2):
        total *= 0.55
        system.add_equality(
            list(range(k)), [1.0] * k, total, kind="stmt", label=f"prefix{k}"
        )
    if with_inequality:
        system.add_inequality(
            [0, 1], [1.0, 1.0], 0.02, kind="vague", label="cap"
        )
    return build_dual(system, 1.0)


class TestSegmentMax:
    def test_plain_segments(self):
        values = np.array([3.0, 1.0, 5.0, 2.0, 4.0])
        indptr = np.array([0, 2, 5])
        assert segment_max(values, indptr).tolist() == [3.0, 5.0]

    def test_empty_segments_contribute_zero(self):
        values = np.array([3.0, 1.0, 5.0])
        indptr = np.array([0, 0, 2, 2, 3, 3])
        assert segment_max(values, indptr).tolist() == [
            0.0,
            3.0,
            0.0,
            5.0,
            0.0,
        ]

    def test_all_empty(self):
        out = segment_max(np.empty(0), np.array([0, 0, 0]))
        assert out.tolist() == [0.0, 0.0]


class TestDualBlock:
    def test_from_system_matches_build_dual(self):
        system = ConstraintSystem(5)
        system.add_equality(
            [0, 1, 2, 3, 4], [1.0] * 5, 1.0, kind="qi", label="mass"
        )
        system.add_equality([0, 2], [1.0, -0.5], 0.1, kind="stmt")
        system.add_inequality([1, 3], [1.0, 1.0], 0.4, kind="vague")
        dual = build_dual(system, 1.0)
        block = DualBlock.from_system(system, 1.0)
        assert block.n_params == dual.n_params
        assert block.n_vars == dual.n_vars
        assert block.n_equalities == dual.n_equalities
        assert block.n_inequalities == dual.n_inequalities
        rebuilt = block.to_dual()
        assert np.array_equal(
            rebuilt.matrix.toarray(), dual.matrix.toarray()
        )
        assert np.array_equal(rebuilt.rhs, dual.rhs)
        assert block.residual_scale() == dual.residual_scale()

    def test_block_from_dual_round_trips(self):
        dual = simple_block()
        block = block_from_dual(dual)
        assert np.array_equal(
            block.to_dual().matrix.toarray(), dual.matrix.toarray()
        )


class TestBatchEquivalence:
    def test_empty_batch(self):
        result = solve_batch_dual([])
        assert result.results == []
        assert result.rounds == 0

    def test_single_block(self):
        dual = simple_block()
        solo = solve_dual_lbfgs(dual, tol=TOL)
        batch = solve_batch_dual([dual], tol=TOL)
        assert batch.results[0].converged
        assert np.abs(batch.results[0].p - solo.p).max() <= 10 * TOL

    def test_many_blocks_match_per_component(self):
        blocks = [
            simple_block(n, 0.2 + 0.05 * i, mass=0.5 + 0.1 * i)
            for i, n in enumerate([4, 6, 8, 5, 7, 9, 6, 4])
        ]
        solos = [solve_dual_lbfgs(d, tol=TOL) for d in blocks]
        batch = solve_batch_dual(blocks, tol=TOL)
        assert all(r.converged for r in batch.results)
        for solo, result in zip(solos, batch.results):
            assert np.abs(solo.p - result.p).max() <= 10 * TOL
            assert result.eq_residual <= TOL * result.scale

    def test_mixed_equality_and_inequality_blocks(self):
        blocks = [
            simple_block(6),
            straggler_block(12, with_inequality=True),
            simple_block(5, 0.3),
        ]
        solos = [solve_dual_lbfgs(d, tol=TOL) for d in blocks]
        batch = solve_batch_dual(blocks, tol=TOL)
        assert all(r.converged for r in batch.results)
        for solo, result in zip(solos, batch.results):
            assert np.abs(solo.p - result.p).max() <= 100 * TOL

    def test_zero_row_block_solves_uniform(self):
        # Presolve can reduce a component to free variables with no rows:
        # the exact solution is the uniform spread of the mass.
        system = ConstraintSystem(4)
        empty = DualBlock.from_system(system, 0.8)
        batch = solve_batch_dual([empty, simple_block(6)], tol=TOL)
        assert batch.results[0].converged
        assert np.allclose(batch.results[0].p, 0.2)
        assert batch.results[0].iterations == 0

    def test_multipliers_are_warm_startable(self):
        blocks = [simple_block(6, 0.4), simple_block(8, 0.25)]
        first = solve_batch_dual(blocks, tol=TOL)
        assert all(r.multipliers is not None for r in first.results)
        again = solve_batch_dual(
            blocks,
            tol=TOL,
            x0s=[r.multipliers for r in first.results],
        )
        # Already-optimal starts freeze before any optimizer work: the
        # per-component convergence mask runs at the round-1 boundary.
        assert all(r.iterations == 0 for r in again.results)
        assert all(r.converged for r in again.results)

    def test_partial_warm_start_freezes_only_optimal_blocks(self):
        # 0.35 on 8 variables is off-uniform, so the cold-started block
        # genuinely has to iterate while the warm one freezes.
        blocks = [simple_block(6, 0.4), simple_block(8, 0.35)]
        first = solve_batch_dual(blocks, tol=TOL)
        again = solve_batch_dual(
            blocks,
            tol=TOL,
            x0s=[first.results[0].multipliers, None],
        )
        assert again.results[0].iterations == 0
        assert again.results[1].iterations > 0
        assert all(r.converged for r in again.results)

    def test_bogus_warm_start_shapes_are_ignored(self):
        blocks = [simple_block(6)]
        batch = solve_batch_dual(
            blocks, tol=TOL, x0s=[np.ones(99)]
        )
        assert batch.results[0].converged


class TestStraggler:
    def test_one_block_needs_10x_the_iterations(self):
        easies = [simple_block(6, 0.2 + 0.02 * i) for i in range(8)]
        strag = straggler_block(24)
        solo_easy = [solve_dual_lbfgs(d, tol=TOL) for d in easies]
        solo_strag = solve_dual_lbfgs(strag, tol=TOL)
        assert solo_strag.iterations >= 10 * max(
            r.iterations for r in solo_easy
        )

        blocks = easies[:4] + [strag] + easies[4:]
        solos = solo_easy[:4] + [solo_strag] + solo_easy[4:]
        batch = solve_batch_dual(blocks, tol=TOL)
        assert all(r.converged for r in batch.results)
        for solo, result in zip(solos, batch.results):
            assert np.abs(solo.p - result.p).max() <= 1e-4

    def test_tight_budget_runs_rounds_and_falls_back(self):
        # An inequality on the straggler disables the stacked Newton
        # polish, so a tiny per-leg budget forces the round loop (and,
        # past max_rounds, the per-component fallback) to do its job.
        easies = [simple_block(6, 0.2 + 0.02 * i) for i in range(8)]
        strag = straggler_block(24, with_inequality=True)
        blocks = easies[:4] + [strag] + easies[4:]
        batch = solve_batch_dual(blocks, tol=TOL, max_iterations=25)
        assert batch.rounds > 1
        assert all(r.converged for r in batch.results)
        # The straggler fell off the batched path but still converged.
        assert batch.batched[4] is False
        solo = solve_dual_lbfgs(strag, tol=TOL)
        assert np.abs(solo.p - batch.results[4].p).max() <= 1e-4

    def test_iterations_accumulate_across_rounds(self):
        easies = [simple_block(6, 0.2 + 0.02 * i) for i in range(4)]
        strag = straggler_block(24, with_inequality=True)
        batch = solve_batch_dual(
            easies + [strag], tol=TOL, max_iterations=10
        )
        assert batch.results[4].iterations >= batch.rounds * 1


@st.composite
def random_blocks(draw):
    """A random mix of component sizes and masses (plus a rare ineq)."""
    n_blocks = draw(st.integers(min_value=1, max_value=7))
    blocks = []
    for index in range(n_blocks):
        n_vars = draw(st.integers(min_value=2, max_value=10))
        mass = draw(
            st.floats(min_value=0.05, max_value=1.0, allow_nan=False)
        )
        share = draw(st.floats(min_value=0.1, max_value=0.9))
        system = ConstraintSystem(n_vars)
        system.add_equality(
            list(range(n_vars)),
            [1.0] * n_vars,
            mass,
            kind="qi",
            label=f"mass{index}",
        )
        if n_vars >= 3:
            split = draw(st.integers(min_value=1, max_value=n_vars - 1))
            system.add_equality(
                list(range(split)),
                [1.0] * split,
                share * mass * split / n_vars,
                kind="stmt",
                label=f"stmt{index}",
            )
        if draw(st.booleans()) and n_vars >= 4:
            system.add_inequality(
                [0, n_vars - 1],
                [1.0, 1.0],
                mass * 0.9,
                kind="vague",
                label=f"cap{index}",
            )
        blocks.append(build_dual(system, mass))
    return blocks


class TestBatchProperty:
    @settings(max_examples=40, deadline=None)
    @given(random_blocks())
    def test_random_size_mixes_match_per_component(self, blocks):
        solos = [solve_dual_lbfgs(d, tol=TOL) for d in blocks]
        batch = solve_batch_dual(blocks, tol=TOL)
        assert len(batch.results) == len(blocks)
        for solo, result in zip(solos, batch.results):
            # The batched path must never be less robust than
            # per-component dispatch (its fallback cold-retries), though
            # it may converge blocks a cold solo solve stalls on.
            if solo.converged:
                assert result.converged
                scale = max(solo.scale, 1.0)
                assert (
                    np.abs(solo.p - result.p).max() <= 100 * TOL * scale
                )
