"""Property-based tests for Mondrian generalization."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.anonymize.mondrian import mondrian_anonymize

from tests.test_properties_anonymize import tables

COMMON = dict(
    deadline=None, suppress_health_check=[HealthCheck.too_slow], max_examples=30
)


class TestMondrianProperties:
    @given(table=tables(), k=st.integers(2, 6))
    @settings(**COMMON)
    def test_k_anonymity_always_holds(self, table, k):
        assume(table.n_rows >= k)
        generalized = mondrian_anonymize(table, k)
        assert generalized.k_anonymity() >= k

    @given(table=tables(), k=st.integers(2, 6))
    @settings(**COMMON)
    def test_classes_partition_rows(self, table, k):
        assume(table.n_rows >= k)
        generalized = mondrian_anonymize(table, k)
        covered = sorted(
            i for cls in generalized.classes for i in cls.row_indices
        )
        assert covered == list(range(table.n_rows))

    @given(table=tables(), k=st.integers(2, 4))
    @settings(**COMMON)
    def test_value_sets_cover_member_values(self, table, k):
        """Every record's actual QI value must appear in its class's
        published value set — the correctness core of generalization."""
        assume(table.n_rows >= k)
        generalized = mondrian_anonymize(table, k)
        qi = table.qi_tuples()
        for cls in generalized.classes:
            for row in cls.row_indices:
                for dim, value in enumerate(qi[row]):
                    assert value in cls.qi_value_sets[dim]

    @given(table=tables(), k=st.integers(2, 4))
    @settings(**COMMON)
    def test_bucket_view_preserves_sa_multiset(self, table, k):
        assume(table.n_rows >= k)
        from collections import Counter

        generalized = mondrian_anonymize(table, k)
        published = generalized.to_buckets()
        total: Counter = Counter()
        for bucket in published.buckets:
            total.update(bucket.sa_counts())
        assert total == Counter(table.sa_labels())
