"""Direct unit tests for rule objects (repro.knowledge.rules)."""

import pytest

from repro.errors import KnowledgeError
from repro.knowledge.rules import NegativeRule, PositiveRule
from repro.knowledge.statements import ConditionalProbability


def positive(**overrides):
    base = dict(
        antecedent={"sex": "Male"},
        sa_value="HS-grad",
        support=0.2,
        confidence=0.4,
        antecedent_count=100,
    )
    base.update(overrides)
    return PositiveRule(**base)


def negative(**overrides):
    base = dict(
        antecedent={"sex": "Male"},
        sa_value="Preschool",
        support=0.6,
        confidence=1.0,
        antecedent_count=100,
    )
    base.update(overrides)
    return NegativeRule(**base)


class TestValidation:
    def test_empty_antecedent_rejected(self):
        with pytest.raises(KnowledgeError):
            positive(antecedent={})

    def test_support_range(self):
        with pytest.raises(KnowledgeError):
            positive(support=1.5)

    def test_confidence_range(self):
        with pytest.raises(KnowledgeError):
            positive(confidence=-0.1)

    def test_negative_count_rejected(self):
        with pytest.raises(KnowledgeError):
            positive(antecedent_count=-1)


class TestConversion:
    def test_positive_statement(self):
        statement = positive().to_statement()
        assert isinstance(statement, ConditionalProbability)
        assert statement.probability == pytest.approx(0.4)
        assert statement.sa_value == "HS-grad"

    def test_negative_statement_complements(self):
        statement = negative(confidence=0.9).to_statement()
        assert statement.probability == pytest.approx(0.1)

    def test_confidence_one_negative_is_zero_rule(self):
        statement = negative(confidence=1.0).to_statement()
        assert statement.probability == 0.0


class TestOrderingAndDisplay:
    def test_sort_key_orders_by_confidence_then_support(self):
        strong = positive(confidence=0.9, support=0.1)
        weak = positive(confidence=0.5, support=0.9)
        assert strong.sort_key() < weak.sort_key()
        high_support = positive(confidence=0.5, support=0.3)
        low_support = positive(confidence=0.5, support=0.1)
        assert high_support.sort_key() < low_support.sort_key()

    def test_sort_key_deterministic_tiebreak(self):
        a = positive(antecedent={"sex": "Male"})
        b = positive(antecedent={"race": "White"})
        assert (a.sort_key() < b.sort_key()) != (b.sort_key() < a.sort_key())

    def test_size(self):
        rule = positive(antecedent={"sex": "Male", "race": "White"})
        assert rule.size == 2

    def test_describe_positive(self):
        assert "=>" in positive().describe()
        assert "NOT" not in positive().describe()

    def test_describe_negative(self):
        assert "NOT Preschool" in negative().describe()
