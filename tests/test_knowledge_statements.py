"""Unit tests for background-knowledge statement types."""

import pytest

from repro.errors import KnowledgeError
from repro.knowledge.statements import (
    Comparison,
    ConditionalInterval,
    ConditionalProbability,
    JointProbability,
)


class TestConditionalProbability:
    def test_valid(self):
        stmt = ConditionalProbability(
            given={"gender": "male"}, sa_value="Flu", probability=0.3
        )
        assert stmt.is_equality
        assert "P(Flu | gender=male) = 0.3" == stmt.describe()

    def test_empty_antecedent_rejected(self):
        with pytest.raises(KnowledgeError):
            ConditionalProbability(given={}, sa_value="Flu", probability=0.3)

    def test_probability_out_of_range(self):
        with pytest.raises(KnowledgeError):
            ConditionalProbability(
                given={"gender": "male"}, sa_value="Flu", probability=1.2
            )

    def test_non_string_antecedent_rejected(self):
        with pytest.raises(KnowledgeError):
            ConditionalProbability(
                given={"gender": 5}, sa_value="Flu", probability=0.3
            )

    def test_with_vagueness_clamps(self):
        stmt = ConditionalProbability(
            given={"gender": "male"}, sa_value="Flu", probability=0.05
        )
        interval = stmt.with_vagueness(0.1)
        assert interval.low == 0.0
        assert interval.high == pytest.approx(0.15)

    def test_with_negative_vagueness_rejected(self):
        stmt = ConditionalProbability(
            given={"gender": "male"}, sa_value="Flu", probability=0.5
        )
        with pytest.raises(KnowledgeError):
            stmt.with_vagueness(-0.1)


class TestJointProbability:
    def test_describe(self):
        stmt = JointProbability(
            given={"gender": "male"}, sa_value="Flu", probability=0.18
        )
        assert "gender=male" in stmt.describe()
        assert stmt.is_equality


class TestConditionalInterval:
    def test_valid(self):
        stmt = ConditionalInterval(
            given={"gender": "male"}, sa_value="Flu", low=0.2, high=0.4
        )
        assert not stmt.is_equality
        assert "0.2" in stmt.describe() and "0.4" in stmt.describe()

    def test_empty_interval_rejected(self):
        with pytest.raises(KnowledgeError):
            ConditionalInterval(
                given={"gender": "male"}, sa_value="Flu", low=0.5, high=0.4
            )

    def test_degenerate_interval_allowed(self):
        ConditionalInterval(
            given={"gender": "male"}, sa_value="Flu", low=0.3, high=0.3
        )


class TestComparison:
    def test_valid(self):
        stmt = Comparison(
            given={"gender": "male"},
            more_likely="Flu",
            less_likely="HIV",
            margin=0.1,
        )
        assert not stmt.is_equality
        assert ">=" in stmt.describe()

    def test_same_values_rejected(self):
        with pytest.raises(KnowledgeError):
            Comparison(
                given={"gender": "male"}, more_likely="Flu", less_likely="Flu"
            )

    def test_bad_margin_rejected(self):
        with pytest.raises(KnowledgeError):
            Comparison(
                given={"gender": "male"},
                more_likely="Flu",
                less_likely="HIV",
                margin=2.0,
            )
