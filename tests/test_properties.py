"""Property-based tests (hypothesis) over randomized bucketized datasets.

Strategy: generate a random microdata table and bucketization, then check
the theory holds on *every* instance:

- soundness: the empirical joint of the original assignment satisfies all
  data constraints and all mined knowledge,
- consistency: the solver equals the closed form without knowledge,
- invariance of the solution under presolve/decomposition toggles,
- conciseness: per-bucket rank is g + h - 1,
- the Pythagorean property: adding true constraints moves the MaxEnt
  estimate closer (in joint KL) to the truth,
- posterior rows are distributions; entropy never increases with knowledge.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.accuracy import joint_kl
from repro.core.invariants import bucket_constraint_matrix
from repro.core.quantifier import PosteriorTable
from repro.data.schema import Attribute, Schema
from repro.data.table import Table
from repro.anonymize.buckets import BucketizedTable
from repro.knowledge.compiler import compile_statements
from repro.knowledge.statements import ConditionalProbability, JointProbability
from repro.maxent.closed_form import closed_form_solution
from repro.maxent.constraints import data_constraints
from repro.maxent.indexing import GroupVariableSpace
from repro.maxent.solver import MaxEntConfig, solve_maxent
from repro.utils.probability import entropy

from tests.helpers import empirical_joint


@st.composite
def bucketized_instances(draw):
    """A random (table, published, bucket_of_row) triple.

    Sizes are kept small so each hypothesis example solves in milliseconds.
    """
    n_qi = draw(st.integers(min_value=2, max_value=4))
    n_sa = draw(st.integers(min_value=2, max_value=5))
    n_buckets = draw(st.integers(min_value=1, max_value=3))
    schema = Schema(
        attributes=(
            Attribute("q", tuple(f"q{i}" for i in range(n_qi))),
            Attribute("s", tuple(f"s{i}" for i in range(n_sa))),
        ),
        qi_attributes=("q",),
        sa_attribute="s",
    )
    rows = []
    bucket_ids = []
    for bucket in range(n_buckets):
        size = draw(st.integers(min_value=1, max_value=4))
        for _ in range(size):
            rows.append(
                {
                    "q": f"q{draw(st.integers(0, n_qi - 1))}",
                    "s": f"s{draw(st.integers(0, n_sa - 1))}",
                }
            )
            bucket_ids.append(bucket)
    table = Table.from_records(schema, rows)
    bucket_of_row = np.array(bucket_ids, dtype=np.int64)
    published = BucketizedTable.from_assignment(table, bucket_of_row)
    return table, published, bucket_of_row


def truth_statements(table, limit=3):
    """True conditional-probability statements read off the original data."""
    truth = PosteriorTable.from_table(table)
    statements = []
    for q in truth.qi_tuples:
        for s in truth.sa_domain:
            statements.append(
                ConditionalProbability(
                    given={"q": q[0]}, sa_value=s, probability=truth.prob(q, s)
                )
            )
            if len(statements) >= limit:
                return statements
    return statements


COMMON = dict(
    deadline=None, suppress_health_check=[HealthCheck.too_slow], max_examples=40
)


class TestSoundness:
    @given(instance=bucketized_instances())
    @settings(**COMMON)
    def test_original_assignment_feasible(self, instance):
        table, published, bucket_of_row = instance
        space = GroupVariableSpace(published)
        system = data_constraints(space)
        system.extend(
            compile_statements(truth_statements(table), space)
        )
        joint = empirical_joint(table, bucket_of_row)
        p = np.zeros(space.n_vars)
        for (q, s, b), value in joint.items():
            p[space.index_of(q, s, b)] = value
        assert system.residual(p) < 1e-9


class TestConsistency:
    @given(instance=bucketized_instances())
    @settings(**COMMON)
    def test_solver_matches_closed_form_without_knowledge(self, instance):
        _table, published, _ids = instance
        space = GroupVariableSpace(published)
        system = data_constraints(space)
        numeric = solve_maxent(
            space, system, MaxEntConfig(use_closed_form=False, tol=1e-8)
        )
        assert np.abs(numeric.p - closed_form_solution(space)).max() < 1e-5


class TestPipelineInvariance:
    @given(instance=bucketized_instances())
    @settings(**COMMON)
    def test_decompose_and_presolve_do_not_change_solution(self, instance):
        table, published, _ids = instance
        space = GroupVariableSpace(published)
        system = data_constraints(space)
        system.extend(compile_statements(truth_statements(table, limit=2), space))
        reference = solve_maxent(space, system, MaxEntConfig(tol=1e-9))
        for config in (
            MaxEntConfig(decompose=False, tol=1e-9),
            MaxEntConfig(use_presolve=False, tol=1e-9),
        ):
            other = solve_maxent(space, system, config)
            assert np.abs(other.p - reference.p).max() < 1e-5


class TestConciseness:
    @given(instance=bucketized_instances())
    @settings(**COMMON)
    def test_rank_is_g_plus_h_minus_one(self, instance):
        _table, published, _ids = instance
        for bucket in published.buckets:
            matrix, _terms = bucket_constraint_matrix(bucket)
            g = len(bucket.distinct_qi())
            h = len(bucket.distinct_sa())
            assert np.linalg.matrix_rank(matrix) == g + h - 1


class TestInformationOrdering:
    @given(instance=bucketized_instances())
    @settings(**COMMON)
    def test_knowledge_never_increases_entropy(self, instance):
        table, published, _ids = instance
        space = GroupVariableSpace(published)
        free_system = data_constraints(space)
        free = solve_maxent(space, free_system, MaxEntConfig(tol=1e-9))
        informed_system = data_constraints(space)
        informed_system.extend(
            compile_statements(truth_statements(table, limit=2), space)
        )
        informed = solve_maxent(space, informed_system, MaxEntConfig(tol=1e-9))
        assert entropy(informed.p) <= entropy(free.p) + 1e-7

    @given(instance=bucketized_instances())
    @settings(**COMMON)
    def test_pythagorean_property(self, instance):
        """With nested true-constraint sets C0 (data only) and C1 (data +
        knowledge), KL(truth || M1) <= KL(truth || M0)."""
        table, published, bucket_of_row = instance
        space = GroupVariableSpace(published)
        truth_joint = empirical_joint(table, bucket_of_row)

        def solve_with(statements):
            system = data_constraints(space)
            system.extend(compile_statements(statements, space))
            solution = solve_maxent(space, system, MaxEntConfig(tol=1e-9))
            return {
                space.describe_var(i): float(solution.p[i])
                for i in range(space.n_vars)
            }

        base = solve_with([])
        informed = solve_with(truth_statements(table, limit=2))
        assert (
            joint_kl(truth_joint, informed)
            <= joint_kl(truth_joint, base) + 1e-6
        )


class TestPosteriorShape:
    @given(instance=bucketized_instances())
    @settings(**COMMON)
    def test_posterior_rows_are_distributions(self, instance):
        _table, published, _ids = instance
        from repro.core.privacy_maxent import PrivacyMaxEnt

        posterior = PrivacyMaxEnt(published).posterior()
        sums = posterior.matrix.sum(axis=1)
        assert np.allclose(sums, 1.0, atol=1e-7)
        assert posterior.matrix.min() >= -1e-12


class TestMassConservation:
    @given(instance=bucketized_instances())
    @settings(**COMMON)
    def test_total_mass_one(self, instance):
        table, published, _ids = instance
        space = GroupVariableSpace(published)
        system = data_constraints(space)
        system.extend(compile_statements(truth_statements(table, limit=1), space))
        solution = solve_maxent(space, system, MaxEntConfig(tol=1e-9))
        assert solution.total_mass() == pytest.approx(1.0, abs=1e-7)
