"""Solver tests: closed form, LBFGS, GIS, IIS, primal — and their agreement.

The four solvers approach the same convex program from different angles
(dual quasi-Newton, two scaling algorithms, direct primal optimization);
agreement across them on nontrivial instances corroborates both the
exponential-family theory and each implementation.
"""

import numpy as np
import pytest

from repro.data.paper_example import paper_published
from repro.errors import NotSupportedError
from repro.knowledge.compiler import compile_statements
from repro.knowledge.statements import ConditionalProbability
from repro.maxent.closed_form import closed_form_solution
from repro.maxent.constraints import data_constraints
from repro.maxent.decompose import decompose
from repro.maxent.dual import build_dual
from repro.maxent.gis import solve_gis
from repro.maxent.iis import solve_iis
from repro.maxent.indexing import GroupVariableSpace
from repro.maxent.lbfgs import solve_dual_lbfgs
from repro.maxent.presolve import presolve
from repro.maxent.primal import solve_primal
from repro.utils.probability import entropy


@pytest.fixture(scope="module")
def space():
    return GroupVariableSpace(paper_published())


@pytest.fixture(scope="module")
def data_system(space):
    return data_constraints(space)


def knowledge_system(space, probability=0.3):
    system = data_constraints(space)
    system.extend(
        compile_statements(
            [
                ConditionalProbability(
                    given={"gender": "male"}, sa_value="Flu",
                    probability=probability,
                )
            ],
            space,
        )
    )
    return system


class TestClosedForm:
    def test_matches_eq9(self, space):
        """P(S | Q, b) = (# of S in b) / N_b for every variable."""
        p = closed_form_solution(space)
        published = space.published
        for var in range(space.n_vars):
            q, s, b = space.describe_var(var)
            bucket = published.bucket(b)
            n_qb = bucket.qi_counts()[q]
            expected = (n_qb / 10) * bucket.sa_counts()[s] / bucket.size
            assert p[var] == pytest.approx(expected)

    def test_satisfies_data_constraints(self, space, data_system):
        p = closed_form_solution(space)
        assert data_system.residual(p) < 1e-12

    def test_total_mass_one(self, space):
        assert closed_form_solution(space).sum() == pytest.approx(1.0)


class TestLBFGS:
    def test_no_knowledge_matches_closed_form(self, space, data_system):
        """Theorem 5 (Consistency), numerically."""
        dual = build_dual(data_system, mass=1.0)
        result = solve_dual_lbfgs(dual, tol=1e-8)
        assert result.converged
        assert np.abs(result.p - closed_form_solution(space)).max() < 1e-6

    def test_with_knowledge_satisfies_all_rows(self, space):
        system = knowledge_system(space)
        dual = build_dual(system, mass=1.0)
        result = solve_dual_lbfgs(dual, tol=1e-8)
        assert result.converged
        assert system.residual(result.p) < 1e-7

    def test_knowledge_reduces_entropy(self, space, data_system):
        free = solve_dual_lbfgs(build_dual(data_system, mass=1.0))
        constrained = solve_dual_lbfgs(
            build_dual(knowledge_system(space), mass=1.0)
        )
        assert entropy(constrained.p) <= entropy(free.p) + 1e-9


class TestScalingSolvers:
    """GIS and IIS must match LBFGS on presolved equality systems."""

    @pytest.fixture(scope="class")
    def reduced(self, space):
        result = presolve(knowledge_system(space))
        mass = 1.0 - result.mass_removed
        return result, mass

    def test_gis_agrees_with_lbfgs(self, reduced):
        result, mass = reduced
        lbfgs = solve_dual_lbfgs(build_dual(result.system, mass), tol=1e-9)
        gis = solve_gis(result.system, mass, tol=1e-9, max_iterations=20000)
        assert gis.converged
        assert np.abs(gis.p - lbfgs.p).max() < 1e-5

    def test_iis_agrees_with_lbfgs(self, reduced):
        result, mass = reduced
        lbfgs = solve_dual_lbfgs(build_dual(result.system, mass), tol=1e-9)
        iis = solve_iis(result.system, mass, tol=1e-9, max_iterations=20000)
        assert iis.converged
        assert np.abs(iis.p - lbfgs.p).max() < 1e-5

    def test_scaling_solvers_comparable_iterations(self, reduced):
        """IIS's advantage over GIS shows on systems with very uneven
        feature sums; on this near-uniform instance the two should land in
        the same ballpark (and both far above LBFGS's count — the Malouf
        ordering the paper cites)."""
        result, mass = reduced
        gis = solve_gis(result.system, mass, tol=1e-8, max_iterations=50000)
        iis = solve_iis(result.system, mass, tol=1e-8, max_iterations=50000)
        lbfgs = solve_dual_lbfgs(build_dual(result.system, mass), tol=1e-8)
        assert gis.converged and iis.converged
        ratio = iis.iterations / gis.iterations
        assert 1 / 3 <= ratio <= 3
        assert lbfgs.iterations < min(gis.iterations, iis.iterations)

    def test_gis_rejects_negative_coefficients(self):
        from repro.maxent.constraints import ConstraintSystem

        system = ConstraintSystem(2)
        system.add_equality([0, 1], [1.0, -1.0], 0.0, kind="bk")
        with pytest.raises(NotSupportedError):
            solve_gis(system, 1.0)

    def test_gis_rejects_inequalities(self):
        from repro.maxent.constraints import ConstraintSystem

        system = ConstraintSystem(2)
        system.add_equality([0, 1], [1.0, 1.0], 1.0, kind="qi")
        system.add_inequality([0], [1.0], 0.5, kind="bk")
        with pytest.raises(NotSupportedError):
            solve_gis(system, 1.0)

    def test_gis_rejects_zero_targets(self):
        from repro.maxent.constraints import ConstraintSystem

        system = ConstraintSystem(2)
        system.add_equality([0, 1], [1.0, 1.0], 0.0, kind="bk")
        with pytest.raises(NotSupportedError):
            solve_gis(system, 1.0)


class TestPrimal:
    def test_agrees_with_lbfgs(self, space):
        system = knowledge_system(space)
        lbfgs = solve_dual_lbfgs(build_dual(system, 1.0), tol=1e-9)
        primal = solve_primal(system, 1.0)
        assert primal.converged
        assert np.abs(primal.p - lbfgs.p).max() < 1e-4

    def test_rejects_huge_problems(self):
        from repro.maxent.constraints import ConstraintSystem

        system = ConstraintSystem(100000)
        with pytest.raises(NotSupportedError):
            solve_primal(system, 1.0)


class TestEntropyOptimality:
    """The returned point must beat every feasible perturbation."""

    def test_perturbations_reduce_entropy(self, space, data_system):
        rng = np.random.default_rng(0)
        dual = build_dual(data_system, 1.0)
        solution = solve_dual_lbfgs(dual, tol=1e-10).p
        base_entropy = entropy(solution)
        a_matrix, _c = data_system.equality_matrix()
        dense = a_matrix.toarray()
        # Build feasible directions: null-space vectors of A.
        _u, s, vt = np.linalg.svd(dense)
        null = vt[(s > 1e-10).sum():]
        for _ in range(20):
            direction = null.T @ rng.standard_normal(null.shape[0])
            scale = 1e-3 / max(np.abs(direction).max(), 1e-12)
            candidate = solution + scale * direction
            if candidate.min() < 0:
                continue
            assert entropy(candidate) <= base_entropy + 1e-9
