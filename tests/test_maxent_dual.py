"""Direct unit tests for the dual machinery (repro.maxent.dual)."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.maxent.constraints import ConstraintSystem
from repro.maxent.dual import build_dual


def simple_system():
    """Two variables, one constraint: p0 + p1 = 1 with p0 = 0.3 target."""
    system = ConstraintSystem(2)
    system.add_equality([0, 1], [1.0, 1.0], 1.0, kind="qi")
    system.add_equality([0], [1.0], 0.3, kind="bk")
    return system


class TestBuildDual:
    def test_shapes(self):
        dual = build_dual(simple_system(), 1.0)
        assert dual.n_params == 2
        assert dual.n_vars == 2
        assert dual.n_equalities == 2
        assert dual.n_inequalities == 0

    def test_rejects_non_positive_mass(self):
        with pytest.raises(ReproError):
            build_dual(simple_system(), 0.0)

    def test_bounds_for_inequalities(self):
        system = simple_system()
        system.add_inequality([1], [1.0], 0.8, kind="bk")
        dual = build_dual(system, 1.0)
        bounds = dual.bounds()
        assert bounds[:2] == [(None, None), (None, None)]
        assert bounds[2] == (0.0, None)


class TestEvaluation:
    def test_primal_at_zero_is_uniform(self):
        dual = build_dual(simple_system(), 1.0)
        p = dual.primal(np.zeros(2))
        assert np.allclose(p, [0.5, 0.5])

    def test_primal_mass_preserved_at_any_multiplier(self):
        dual = build_dual(simple_system(), 0.7)
        rng = np.random.default_rng(0)
        for _ in range(5):
            p = dual.primal(rng.standard_normal(2) * 3)
            assert p.sum() == pytest.approx(0.7)
            assert p.min() >= 0

    def test_gradient_is_negated_residual(self):
        dual = build_dual(simple_system(), 1.0)
        x = np.array([0.4, -0.2])
        _value, grad = dual.value_and_grad(x)
        p = dual.primal(x)
        expected = dual.rhs - dual.matrix @ p
        assert np.allclose(grad, expected)

    def test_gradient_matches_finite_differences(self):
        dual = build_dual(simple_system(), 1.0)
        x = np.array([0.1, 0.5])
        value, grad = dual.value_and_grad(x)
        eps = 1e-7
        for i in range(2):
            shifted = x.copy()
            shifted[i] += eps
            value_plus, _ = dual.value_and_grad(shifted)
            assert (value_plus - value) / eps == pytest.approx(
                grad[i], abs=1e-4
            )

    def test_convexity_along_random_segments(self):
        dual = build_dual(simple_system(), 1.0)
        rng = np.random.default_rng(1)
        for _ in range(10):
            a = rng.standard_normal(2)
            b = rng.standard_normal(2)
            fa, _ = dual.value_and_grad(a)
            fb, _ = dual.value_and_grad(b)
            mid, _ = dual.value_and_grad((a + b) / 2)
            assert mid <= (fa + fb) / 2 + 1e-10

    def test_overflow_safe(self):
        dual = build_dual(simple_system(), 1.0)
        value, grad = dual.value_and_grad(np.array([1e4, -1e4]))
        assert np.isfinite(value)
        assert np.all(np.isfinite(grad))


class TestResiduals:
    def test_residuals_at_feasible_point(self):
        dual = build_dual(simple_system(), 1.0)
        p = np.array([0.3, 0.7])
        eq_res, ineq_res = dual.residuals(p)
        assert eq_res == pytest.approx(0.0)
        assert ineq_res == 0.0

    def test_inequality_residual_only_counts_excess(self):
        system = simple_system()
        system.add_inequality([1], [1.0], 0.8, kind="bk")
        dual = build_dual(system, 1.0)
        ok = np.array([0.3, 0.7])
        _eq, ineq = dual.residuals(ok)
        assert ineq == 0.0  # 0.7 <= 0.8: satisfied, no penalty
        bad = np.array([0.1, 0.9])
        _eq, ineq = dual.residuals(bad)
        assert ineq == pytest.approx(0.1)

    def test_residual_scale_positive(self):
        dual = build_dual(simple_system(), 1.0)
        assert dual.residual_scale() > 0
