"""Tests for the privacy-skyline (l, k, m) bound bridge."""

import pytest

from repro.core.privacy_maxent import PrivacyMaxEnt
from repro.data.paper_example import paper_published, paper_table
from repro.errors import KnowledgeError
from repro.knowledge.individuals import (
    GroupCountAtLeast,
    IndividualProbability,
    PseudonymTable,
)
from repro.knowledge.skyline import SkylineBound
from repro.maxent.solver import MaxEntConfig


@pytest.fixture(scope="module")
def setting():
    published = paper_published()
    return paper_table(), published, PseudonymTable(published)


class TestValidation:
    def test_negative_parameters_rejected(self):
        with pytest.raises(Exception):
            SkylineBound(-1, 0, 0)

    def test_describe_uses_chen_notation(self):
        assert SkylineBound(2, 1, 1).describe() == "skyline(2, 1, 2)"

    def test_target_row_bounds(self, setting):
        table, _published, pseudonyms = setting
        with pytest.raises(KnowledgeError):
            SkylineBound(0, 0, 0).instantiate(
                table, pseudonyms, target_row=99
            )


class TestInstantiation:
    def test_statement_families(self, setting):
        table, _published, pseudonyms = setting
        target, statements = SkylineBound(2, 1, 1).instantiate(
            table, pseudonyms, target_row=0, seed=1
        )
        negations = [
            s
            for s in statements
            if isinstance(s, IndividualProbability) and s.probability == 0.0
        ]
        certainties = [
            s
            for s in statements
            if isinstance(s, IndividualProbability) and s.probability == 1.0
        ]
        groups = [s for s in statements if isinstance(s, GroupCountAtLeast)]
        assert len(negations) == 1
        assert all(s.person == target for s in negations)
        assert len(certainties) == 2
        assert all(s.person != target for s in certainties)
        assert len(groups) == 1
        assert target in groups[0].persons

    def test_statements_are_true_of_the_data(self, setting):
        """Skyline facts mined from D must always be jointly feasible."""
        table, published, pseudonyms = setting
        _target, statements = SkylineBound(3, 2, 1).instantiate(
            table, pseudonyms, target_row=2, seed=5
        )
        engine = PrivacyMaxEnt(
            published, knowledge=statements, config=MaxEntConfig(tol=1e-8)
        )
        solution = engine.solve()
        assert solution.stats.converged

    def test_infeasible_bounds_detected(self, setting):
        table, _published, pseudonyms = setting
        # Allen (row 0, Flu): only two other Flu carriers exist.
        with pytest.raises(KnowledgeError, match="peers"):
            SkylineBound(0, 0, 5).instantiate(
                table, pseudonyms, target_row=0, seed=0
            )
        # Denying more values than the buckets offer.
        with pytest.raises(KnowledgeError, match="deny"):
            SkylineBound(0, 10, 0).instantiate(
                table, pseudonyms, target_row=0, seed=0
            )

    def test_deterministic_per_seed(self, setting):
        table, _published, pseudonyms = setting
        _t1, first = SkylineBound(2, 1, 0).instantiate(
            table, pseudonyms, target_row=1, seed=9
        )
        _t2, second = SkylineBound(2, 1, 0).instantiate(
            table, pseudonyms, target_row=1, seed=9
        )
        assert [s.describe() for s in first] == [s.describe() for s in second]


class TestDisclosureEffect:
    def test_stronger_skyline_tightens_target_posterior(self, setting):
        """Growing (l, k, m) must sharpen the target's inferred value."""
        table, published, pseudonyms = setting
        target_row = 2  # Cathy (female college, Breast Cancer)
        truth = table.sa_labels()[target_row]

        def target_confidence(bound: SkylineBound) -> float:
            pseudo = PseudonymTable(published)  # fresh naming each run
            target, statements = bound.instantiate(
                table, pseudo, target_row=target_row, seed=3
            )
            engine = PrivacyMaxEnt(
                published,
                knowledge=statements,
                individuals=True,  # (0,0,0) yields no statements
                config=MaxEntConfig(raise_on_infeasible=False),
            )
            return engine.person_posterior()[target.name].get(truth, 0.0)

        weak = target_confidence(SkylineBound(0, 0, 0))
        negged = target_confidence(SkylineBound(0, 2, 0))
        assert negged >= weak - 1e-9
