"""Tests for the inequality group-count statements (end of Section 6)."""

import pytest

from repro.core.privacy_maxent import PrivacyMaxEnt
from repro.data.paper_example import Q1, Q2, Q5, S4, paper_published
from repro.errors import KnowledgeError
from repro.knowledge.compiler import compile_statements
from repro.knowledge.individuals import (
    GroupCount,
    GroupCountAtLeast,
    GroupCountAtMost,
    PseudonymTable,
)
from repro.maxent.indexing import PersonVariableSpace


@pytest.fixture(scope="module")
def pseudonyms():
    return PseudonymTable(paper_published())


@pytest.fixture(scope="module")
def trio(pseudonyms):
    return (
        pseudonyms.assign(Q1),  # Alice
        pseudonyms.assign(Q2),  # Bob
        pseudonyms.assign(Q5),  # Charlie
    )


class TestValidation:
    def test_at_least_validates_like_exact(self, trio):
        with pytest.raises(KnowledgeError):
            GroupCountAtLeast(persons=trio, sa_value=S4, count=4)
        with pytest.raises(KnowledgeError):
            GroupCountAtLeast(persons=(), sa_value=S4, count=1)

    def test_at_most_allows_zero(self, trio):
        statement = GroupCountAtMost(persons=trio, sa_value=S4, count=0)
        assert "at most 0" in statement.describe()

    def test_at_most_rejects_negative(self, trio):
        with pytest.raises(KnowledgeError):
            GroupCountAtMost(persons=trio, sa_value=S4, count=-1)


class TestCompilation:
    def test_at_least_compiles_to_negated_inequality(self, pseudonyms, trio):
        space = PersonVariableSpace(pseudonyms)
        system = compile_statements(
            [GroupCountAtLeast(persons=trio, sa_value=S4, count=2)], space
        )
        assert system.n_equalities == 0
        assert system.n_inequalities == 1
        row = system.inequalities[0]
        assert row.rhs == pytest.approx(-0.2)
        assert all(c == -1.0 for c in row.coefficients)

    def test_at_most_compiles_to_plain_inequality(self, pseudonyms, trio):
        space = PersonVariableSpace(pseudonyms)
        system = compile_statements(
            [GroupCountAtMost(persons=trio, sa_value=S4, count=1)], space
        )
        assert system.n_inequalities == 1
        assert system.inequalities[0].rhs == pytest.approx(0.1)


class TestSolving:
    def probabilities(self, engine, trio):
        posterior = engine.person_posterior()
        return [posterior[person.name].get(S4, 0.0) for person in trio]

    def test_at_least_two_binds(self, trio):
        """Unconstrained, the trio's expected HIV count is < 2; 'at least
        two' must therefore bind and push the sum to exactly 2/N."""
        baseline = PrivacyMaxEnt(paper_published(), individuals=True)
        base_total = sum(self.probabilities(baseline, trio))
        assert base_total < 2.0

        engine = PrivacyMaxEnt(
            paper_published(),
            knowledge=[GroupCountAtLeast(persons=trio, sa_value=S4, count=2)],
        )
        total = sum(self.probabilities(engine, trio))
        assert total == pytest.approx(2.0, abs=1e-5)

    def test_at_most_slack_when_not_binding(self, trio):
        """'At most two' is weaker than the unconstrained expectation, so
        the solution must match the baseline."""
        baseline = PrivacyMaxEnt(paper_published(), individuals=True)
        base = self.probabilities(baseline, trio)

        engine = PrivacyMaxEnt(
            paper_published(),
            knowledge=[GroupCountAtMost(persons=trio, sa_value=S4, count=2)],
        )
        constrained = self.probabilities(engine, trio)
        for a, b in zip(base, constrained):
            assert a == pytest.approx(b, abs=1e-5)

    def test_at_most_zero_forbids(self, trio):
        engine = PrivacyMaxEnt(
            paper_published(),
            knowledge=[GroupCountAtMost(persons=trio, sa_value=S4, count=0)],
        )
        for value in self.probabilities(engine, trio):
            assert value == pytest.approx(0.0, abs=1e-8)

    def test_sandwich_matches_exact(self, trio):
        """At-least-k plus at-most-k must reproduce the exact GroupCount."""
        exact = PrivacyMaxEnt(
            paper_published(),
            knowledge=[GroupCount(persons=trio, sa_value=S4, count=2)],
        )
        sandwich = PrivacyMaxEnt(
            paper_published(),
            knowledge=[
                GroupCountAtLeast(persons=trio, sa_value=S4, count=2),
                GroupCountAtMost(persons=trio, sa_value=S4, count=2),
            ],
        )
        for a, b in zip(
            self.probabilities(exact, trio), self.probabilities(sandwich, trio)
        ):
            assert a == pytest.approx(b, abs=1e-5)
