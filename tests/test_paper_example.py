"""Golden tests: every worked derivation in the paper, verified end to end.

Each test quotes the paper's claim and checks our pipeline reproduces it on
the Figure 1 data.
"""

import pytest

from repro.core.privacy_maxent import PrivacyMaxEnt
from repro.core.quantifier import PosteriorTable
from repro.data.paper_example import (
    Q1,
    Q2,
    Q3,
    Q4,
    S1,
    S2,
    S3,
    paper_published,
    paper_table,
)
from repro.knowledge.statements import ConditionalProbability
from repro.maxent.solver import MaxEntConfig


@pytest.fixture(scope="module")
def published():
    return paper_published()


class TestFigure1:
    def test_bucket_contents_match_figure(self, published):
        """Figure 1(c): buckets {q1,q1,q2,q3 | s1,s2,s2,s3},
        {q1,q3,q4 | s1,s3,s4}, {q2,q5,q6 | s2,s4,s5}."""
        b0 = published.bucket(0)
        assert sorted(b0.qi_tuples) == sorted([Q1, Q1, Q2, Q3])
        assert sorted(b0.sa_values) == sorted(
            ["Breast Cancer", "Flu", "Flu", "Pneumonia"]
        )
        b1 = published.bucket(1)
        assert sorted(b1.sa_values) == sorted(["Breast Cancer", "Pneumonia", "HIV"])
        b2 = published.bucket(2)
        assert sorted(b2.sa_values) == sorted(["Flu", "HIV", "Lung Cancer"])

    def test_q1_appears_three_times(self, published):
        """Section 3.1: 'q1 represents {male, college}, and it appears
        three times in the data.'"""
        assert published.qi_marginal()[Q1] == 3


class TestSection1Deduction:
    """'We immediately know that both females in Bucket 1 and Bucket 2
    have Breast Cancer, because they are the only females in their
    respective buckets.'"""

    @pytest.fixture(scope="class")
    def informed(self, published):
        return PrivacyMaxEnt(
            published,
            knowledge=[
                ConditionalProbability(
                    given={"gender": "male"}, sa_value=S1, probability=0.0
                )
            ],
        )

    def test_grace_fully_disclosed(self, informed):
        posterior = informed.posterior()
        assert posterior.prob(Q4, S1) == pytest.approx(1.0)

    def test_cathy_disclosed_within_bucket(self, informed):
        # Cathy (q2) is in buckets 1 and 3; s1 only occurs in bucket 1, so
        # P(q2, s1, b=1) = P(q2, b=1): within bucket 1 the link is certain.
        solution = informed.solve()
        assert solution.joint(Q2, S1, 0) == pytest.approx(0.1)

    def test_males_cleared(self, informed):
        posterior = informed.posterior()
        for q in (Q1, Q3):
            assert posterior.prob(q, S1) == pytest.approx(0.0, abs=1e-9)


class TestSection31Deduction:
    """'If the adversaries know that P(s1|q2) = 0 and P(s1 or s2|q3) = 0
    [...] in the first bucket, q3 can only be mapped to s3, q2 can only be
    mapped to s2, and one of the q1 maps to s1 and the other maps to s2.'"""

    @pytest.fixture(scope="class")
    def solution(self, published):
        knowledge = [
            ConditionalProbability(
                given={"gender": "female", "degree": "college"},
                sa_value=S1,
                probability=0.0,
            ),
            ConditionalProbability(
                given={"gender": "male", "degree": "high school"},
                sa_value=S1,
                probability=0.0,
            ),
            ConditionalProbability(
                given={"gender": "male", "degree": "high school"},
                sa_value=S2,
                probability=0.0,
            ),
        ]
        return PrivacyMaxEnt(published, knowledge=knowledge).solve()

    def test_q3_maps_to_s3(self, solution):
        assert solution.joint(Q3, S3, 0) == pytest.approx(0.1)

    def test_q2_maps_to_s2(self, solution):
        assert solution.joint(Q2, S2, 0) == pytest.approx(0.1)

    def test_q1_splits_s1_and_s2(self, solution):
        # Two q1 records share {s1, s2}: one each.
        assert solution.joint(Q1, S1, 0) == pytest.approx(0.1)
        assert solution.joint(Q1, S2, 0) == pytest.approx(0.1)
        assert solution.joint(Q1, S3, 0) == pytest.approx(0.0, abs=1e-9)


class TestSection55Example:
    """'P(s3 | q3) = 0.5, so P(q3, s3) = 0.1 [...] if we change the value
    of P(q3, s3, 1), the value of P(q3, s3, 2) has to be changed
    accordingly.'"""

    def test_cross_bucket_constraint_satisfied(self, published):
        engine = PrivacyMaxEnt(
            published,
            knowledge=[
                ConditionalProbability(
                    given={"gender": "male", "degree": "high school"},
                    sa_value=S3,
                    probability=0.5,
                )
            ],
        )
        solution = engine.solve()
        total = solution.joint(Q3, S3, 0) + solution.joint(Q3, S3, 1)
        assert total == pytest.approx(0.1)

    def test_buckets_become_coupled(self, published):
        engine = PrivacyMaxEnt(
            published,
            knowledge=[
                ConditionalProbability(
                    given={"gender": "male", "degree": "high school"},
                    sa_value=S3,
                    probability=0.5,
                )
            ],
        )
        solution = engine.solve()
        merged = [r for r in solution.components if len(r.buckets) > 1]
        assert len(merged) == 1
        assert merged[0].buckets == (0, 1)


class TestConsistencyWithPriorWork:
    """Theorem 5: without knowledge, P(S | Q, b) = (# of S in b) / N_b."""

    def test_posterior_matches_frequency_formula(self, published):
        posterior = PrivacyMaxEnt(published).posterior()
        # P*(s2 | q1): bucket 1 share 0.2 * (2/4), bucket 2 share 0.1 * 0.
        assert posterior.prob(Q1, S2) == pytest.approx((0.2 * 0.5) / 0.3)
        # P*(s4 | q4) = 1/3 (bucket 2 only).
        assert posterior.prob(Q4, "HIV") == pytest.approx(1 / 3)

    def test_solver_agrees_with_formula_when_forced_numeric(self, published):
        numeric = PrivacyMaxEnt(
            published, config=MaxEntConfig(use_closed_form=False)
        ).posterior()
        closed = PrivacyMaxEnt(published).posterior()
        for q in closed.qi_tuples:
            for s in closed.sa_domain:
                assert numeric.prob(q, s) == pytest.approx(
                    closed.prob(q, s), abs=1e-7
                )


class TestGroundTruthFeasibility:
    """The original data is one of the assignments, so the true posterior
    must be reachable: the MaxEnt estimate with *all* deterministic
    knowledge pins down the truth exactly."""

    def test_full_knowledge_recovers_truth(self, published):
        truth = PosteriorTable.from_table(paper_table())
        # Tell the adversary every P(s | q) of the original data.
        knowledge = []
        for q in truth.qi_tuples:
            given = {"gender": q[0], "degree": q[1]}
            for s in truth.sa_domain:
                knowledge.append(
                    ConditionalProbability(
                        given=given, sa_value=s, probability=truth.prob(q, s)
                    )
                )
        engine = PrivacyMaxEnt(published, knowledge=knowledge)
        posterior = engine.posterior()
        for q in truth.qi_tuples:
            for s in truth.sa_domain:
                assert posterior.prob(q, s) == pytest.approx(
                    truth.prob(q, s), abs=1e-6
                )
