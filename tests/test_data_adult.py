"""Unit tests for the synthetic Adult generator."""

import numpy as np
import pytest

from repro.data.adult import (
    AGE_GROUPS,
    EDUCATIONS,
    adult_schema,
    load_adult_synthetic,
)
from repro.errors import ReproError


class TestSchema:
    def test_paper_shape(self):
        schema = adult_schema()
        assert len(schema.qi_attributes) == 8
        assert schema.sa_attribute == "education"
        assert schema.sa.size == 16

    def test_all_adult_education_levels_present(self):
        for level in ("HS-grad", "Bachelors", "Doctorate", "Preschool"):
            assert level in EDUCATIONS


class TestGeneration:
    def test_deterministic_per_seed(self):
        a = load_adult_synthetic(n_records=300, seed=5)
        b = load_adult_synthetic(n_records=300, seed=5)
        for name in a.schema.attribute_names:
            assert np.array_equal(a.column(name), b.column(name))

    def test_different_seeds_differ(self):
        a = load_adult_synthetic(n_records=300, seed=5)
        b = load_adult_synthetic(n_records=300, seed=6)
        assert any(
            not np.array_equal(a.column(n), b.column(n))
            for n in a.schema.attribute_names
        )

    def test_requested_size(self):
        assert load_adult_synthetic(n_records=123, seed=0).n_rows == 123

    def test_rejects_non_positive(self):
        with pytest.raises(ReproError):
            load_adult_synthetic(n_records=0)

    def test_every_domain_value_reachable_at_scale(self):
        table = load_adult_synthetic(n_records=8000, seed=1)
        counts = table.value_counts("education")
        # All 16 education levels should occur in a large sample.
        assert len(counts) == 16


class TestRealism:
    """The experiments need Adult-like marginals and real correlations."""

    @pytest.fixture(scope="class")
    def table(self):
        return load_adult_synthetic(n_records=8000, seed=2)

    def test_hs_grad_is_most_frequent(self, table):
        counts = table.value_counts("education")
        assert counts.most_common(1)[0][0] == "HS-grad"

    def test_males_majority(self, table):
        counts = table.value_counts("sex")
        assert counts["Male"] > counts["Female"]

    def test_young_cohort_lacks_doctorates(self, table):
        # The age->education tilt: 17-21 year olds essentially never hold a
        # doctorate, which is what makes negative rules with confidence 1
        # minable.
        young = AGE_GROUPS[0]
        ages = table.labels("age")
        educations = table.labels("education")
        young_doctorates = sum(
            1
            for a, e in zip(ages, educations)
            if a == young and e == "Doctorate"
        )
        assert young_doctorates == 0

    def test_education_occupation_correlation(self, table):
        # P(Prof-specialty | Doctorate) should far exceed the base rate.
        educations = table.labels("education")
        occupations = table.labels("occupation")
        doctors = [
            o for e, o in zip(educations, occupations) if e == "Doctorate"
        ]
        base_rate = occupations.count("Prof-specialty") / len(occupations)
        prof_rate = doctors.count("Prof-specialty") / max(len(doctors), 1)
        assert prof_rate > 2 * base_rate

    def test_five_diversity_feasible_with_auto_exemption(self, table):
        from repro.anonymize.diversity import auto_exempt, check_eligibility

        counts = table.value_counts("education")
        exempt = auto_exempt(counts, 5)
        check_eligibility(counts, 5, exempt=exempt)  # must not raise
        # The paper exempts "the most frequent values"; auto should need at
        # most the top two.
        assert len(exempt) <= 2
