"""The segment-kernel backend seam (repro.maxent.kernels).

Two properties carry the whole design: the guarded reductions are exact
on every segment shape (including the empty segments a naive ``reduceat``
silently corrupts), and every registered backend is tolerance-equivalent
to the numpy reference on real solver workloads.  The numba half of the
equivalence suite skips cleanly where numba is not installed — the
optional-extras CI job runs it.
"""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.maxent.batch_dual import solve_batch_dual
from repro.maxent.constraints import ConstraintSystem
from repro.maxent.dual import build_dual
from repro.maxent.kernels import (
    KERNEL_NAMES,
    NUMPY_KERNEL,
    available_backends,
    get_kernel,
    segment_max,
    segment_min,
    segment_sum,
)

HAS_NUMBA = "numba" in available_backends()

needs_numba = pytest.mark.skipif(
    not HAS_NUMBA, reason="numba not installed (pip install repro[numba])"
)


def random_csr(rng, n_segments, empty_fraction=0.3):
    """Random segment lengths with a controllable share of empties."""
    lengths = rng.integers(1, 7, size=n_segments)
    empty = rng.random(n_segments) < empty_fraction
    lengths[empty] = 0
    indptr = np.concatenate([[0], np.cumsum(lengths)])
    values = rng.standard_normal(int(indptr[-1]))
    return values, indptr.astype(np.int64), lengths


class TestGuardedReductions:
    """The shared empty-segment guard (consolidated from batch_dual and
    presolve, which used to carry duplicate copies)."""

    def test_matches_python_loop(self):
        rng = np.random.default_rng(0)
        values, indptr, lengths = random_csr(rng, 40)
        got_max = segment_max(values, indptr)
        got_min = segment_min(values, indptr)
        got_sum = segment_sum(values, indptr)
        for k in range(40):
            seg = values[indptr[k] : indptr[k + 1]]
            if lengths[k] == 0:
                assert got_max[k] == got_min[k] == got_sum[k] == 0.0
            else:
                assert got_max[k] == seg.max()
                assert got_min[k] == seg.min()
                assert got_sum[k] == pytest.approx(seg.sum())

    def test_empty_segments_take_fill(self):
        values = np.array([2.0, -3.0])
        indptr = np.array([0, 0, 2, 2])
        assert segment_max(values, indptr, fill=-np.inf).tolist() == [
            -np.inf, 2.0, -np.inf,
        ]
        assert segment_min(values, indptr, fill=7.5).tolist() == [
            7.5, -3.0, 7.5,
        ]
        assert segment_sum(values, indptr).tolist() == [0.0, -1.0, 0.0]

    def test_all_segments_empty(self):
        values = np.empty(0)
        indptr = np.zeros(4, dtype=np.int64)
        assert segment_max(values, indptr, fill=1.0).tolist() == [1.0] * 3
        assert segment_sum(values, indptr).tolist() == [0.0] * 3

    def test_no_segments(self):
        out = segment_sum(np.empty(0), np.zeros(1, dtype=np.int64))
        assert out.shape == (0,)

    def test_trailing_empty_segment(self):
        # The classic reduceat trap: a start index == len(values).
        values = np.array([1.0, 4.0])
        indptr = np.array([0, 2, 2])
        assert segment_max(values, indptr).tolist() == [4.0, 0.0]


class TestSoftmaxParts:
    def test_matches_naive_softmax(self):
        rng = np.random.default_rng(1)
        counts = np.array([3, 1, 5])
        indptr = np.concatenate([[0], np.cumsum(counts)])
        theta = rng.standard_normal(int(indptr[-1])) * 10
        masses = np.array([0.5, 1.0, 0.25])
        p, lse = NUMPY_KERNEL.softmax_parts(theta, indptr, counts, masses)
        for k in range(3):
            seg = theta[indptr[k] : indptr[k + 1]]
            expected = masses[k] * np.exp(seg) / np.exp(seg).sum()
            np.testing.assert_allclose(
                p[indptr[k] : indptr[k + 1]], expected, rtol=1e-12
            )
            assert lse[k] == pytest.approx(
                np.log(np.exp(seg).sum()), rel=1e-12
            )

    def test_shift_stability_at_extreme_theta(self):
        theta = np.array([1000.0, 999.0, -1000.0, -1001.0])
        indptr = np.array([0, 2, 4])
        counts = np.array([2, 2])
        masses = np.ones(2)
        p, lse = NUMPY_KERNEL.softmax_parts(theta, indptr, counts, masses)
        assert np.isfinite(p).all() and np.isfinite(lse).all()
        assert p[:2].sum() == pytest.approx(1.0)
        assert p[2:].sum() == pytest.approx(1.0)


class TestRegistry:
    def test_numpy_always_available(self):
        assert available_backends()[0] == "numpy"
        assert get_kernel("numpy").name == "numpy"

    def test_auto_resolves_to_an_available_backend(self):
        kernel = get_kernel("auto")
        assert kernel.name in available_backends()
        if HAS_NUMBA:
            assert kernel.name == "numba"
        else:
            assert kernel.name == "numpy"

    def test_backend_object_passes_through(self):
        assert get_kernel(NUMPY_KERNEL) is NUMPY_KERNEL

    def test_unknown_name_rejected(self):
        with pytest.raises(ReproError, match="unknown kernel"):
            get_kernel("fortran")
        assert set(KERNEL_NAMES) == {"auto", "numpy", "numba"}

    @pytest.mark.skipif(HAS_NUMBA, reason="only meaningful without numba")
    def test_missing_numba_fails_loudly(self):
        with pytest.raises(ReproError, match="numba"):
            get_kernel("numba")


def stacked_blocks(rng, n_blocks=24):
    """Small feasible dual blocks shaped like decomposed components."""
    blocks = []
    for _ in range(n_blocks):
        n_vars = int(rng.integers(3, 9))
        mass = 0.5 + float(rng.random())
        system = ConstraintSystem(n_vars)
        system.add_equality(
            list(range(n_vars)), [1.0] * n_vars, mass, kind="qi",
            label="mass",
        )
        pair = 0.1 + 0.5 * float(rng.random())
        system.add_equality(
            [0, 1], [1.0, 1.0], pair * mass, kind="stmt", label="pair"
        )
        blocks.append(build_dual(system, mass))
    return blocks


@needs_numba
class TestNumbaEquivalence:
    """numba backend vs the numpy reference, primitive by primitive and
    through whole batched solves."""

    def test_primitives_match(self):
        numba_kernel = get_kernel("numba")
        rng = np.random.default_rng(2)
        for trial in range(5):
            values, indptr, _ = random_csr(rng, 60)
            for op in ("segment_max", "segment_min", "segment_sum"):
                ref = getattr(NUMPY_KERNEL, op)(values, indptr, fill=-1.5)
                got = getattr(numba_kernel, op)(values, indptr, fill=-1.5)
                np.testing.assert_allclose(got, ref, rtol=1e-13, atol=1e-13)

    def test_softmax_parts_match(self):
        numba_kernel = get_kernel("numba")
        rng = np.random.default_rng(3)
        counts = rng.integers(1, 8, size=50)
        indptr = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
        theta = rng.standard_normal(int(indptr[-1])) * 30
        masses = rng.random(50) + 0.1
        p_ref, lse_ref = NUMPY_KERNEL.softmax_parts(
            theta, indptr, counts, masses
        )
        p_got, lse_got = numba_kernel.softmax_parts(
            theta, indptr, counts, masses
        )
        np.testing.assert_allclose(p_got, p_ref, rtol=1e-12, atol=1e-15)
        np.testing.assert_allclose(lse_got, lse_ref, rtol=1e-12)

    def test_batched_solves_agree_within_tolerance(self):
        rng = np.random.default_rng(4)
        blocks = stacked_blocks(rng)
        tol = 1e-8
        ref = solve_batch_dual(blocks, tol=tol, kernel="numpy")
        got = solve_batch_dual(blocks, tol=tol, kernel="numba")
        assert len(ref.results) == len(got.results)
        for r, g in zip(ref.results, got.results):
            assert r.converged == g.converged
            np.testing.assert_allclose(g.p, r.p, atol=100 * tol)


class TestSolverOnKernelSeam:
    """The batched solver accepts names and backend objects alike."""

    def test_solve_accepts_kernel_name_and_object(self):
        rng = np.random.default_rng(5)
        blocks = stacked_blocks(rng, n_blocks=8)
        by_name = solve_batch_dual(blocks, tol=1e-8, kernel="numpy")
        by_object = solve_batch_dual(blocks, tol=1e-8, kernel=NUMPY_KERNEL)
        for r, g in zip(by_name.results, by_object.results):
            np.testing.assert_array_equal(g.p, r.p)
