"""Unit tests for Mondrian k-anonymity generalization."""

import pytest

from repro.anonymize.mondrian import mondrian_anonymize
from repro.data.adult import load_adult_synthetic
from repro.data.paper_example import paper_table
from repro.errors import AnonymizationError


class TestMondrian:
    def test_every_class_at_least_k(self):
        table = load_adult_synthetic(n_records=400, seed=1)
        generalized = mondrian_anonymize(table, k=10)
        assert generalized.k_anonymity() >= 10

    def test_partition_is_exact(self):
        table = load_adult_synthetic(n_records=300, seed=2)
        generalized = mondrian_anonymize(table, k=20)
        covered = sorted(
            i for cls in generalized.classes for i in cls.row_indices
        )
        assert covered == list(range(table.n_rows))

    def test_splits_happen(self):
        table = load_adult_synthetic(n_records=400, seed=3)
        generalized = mondrian_anonymize(table, k=10)
        assert len(generalized.classes) > 1

    def test_small_k_gives_finer_partition(self):
        table = load_adult_synthetic(n_records=400, seed=4)
        coarse = mondrian_anonymize(table, k=100)
        fine = mondrian_anonymize(table, k=10)
        assert len(fine.classes) >= len(coarse.classes)

    def test_table_smaller_than_k(self):
        with pytest.raises(AnonymizationError):
            mondrian_anonymize(paper_table(), k=11)

    def test_generalized_tuple_rendering(self):
        table = paper_table()
        generalized = mondrian_anonymize(table, k=5)
        for cls in generalized.classes:
            rendered = cls.generalized_tuple()
            assert len(rendered) == 2  # (gender, degree)
            for piece in rendered:
                assert piece  # non-empty

    def test_to_buckets_preserves_counts(self):
        table = load_adult_synthetic(n_records=200, seed=5)
        generalized = mondrian_anonymize(table, k=25)
        published = generalized.to_buckets()
        assert published.n_records == 200
        assert published.n_buckets == len(generalized.classes)
        assert sum(published.sa_marginal().values()) == 200

    def test_buckets_usable_by_privacy_maxent(self):
        """The generalization substrate plugs into the core engine."""
        from repro.core.privacy_maxent import PrivacyMaxEnt

        table = load_adult_synthetic(n_records=150, seed=6)
        published = mondrian_anonymize(table, k=30).to_buckets()
        engine = PrivacyMaxEnt(published)
        posterior = engine.posterior()
        # Every generalized tuple's posterior is a distribution.
        for q in posterior.qi_tuples:
            total = sum(posterior.distribution(q).values())
            assert total == pytest.approx(1.0, abs=1e-6)
