"""Unit tests for the PrivacyMaxEnt engine and the assess() workflow."""

import pytest

from repro.core.privacy_maxent import PrivacyMaxEnt, assess, baseline_posterior
from repro.core.report import PrivacyAssessment, render_assessments
from repro.data.paper_example import Q1, S1, S2, paper_published, paper_table
from repro.errors import ReproError
from repro.knowledge.bounds import TopKBound
from repro.knowledge.individuals import IndividualProbability, PseudonymTable
from repro.knowledge.mining import MiningConfig
from repro.knowledge.statements import ConditionalProbability
from repro.maxent.indexing import GroupVariableSpace, PersonVariableSpace
from repro.maxent.solver import MaxEntConfig


class TestEngineConstruction:
    def test_group_space_by_default(self):
        engine = PrivacyMaxEnt(paper_published())
        assert isinstance(engine.space, GroupVariableSpace)
        assert engine.pseudonyms is None

    def test_individuals_flag(self):
        engine = PrivacyMaxEnt(paper_published(), individuals=True)
        assert isinstance(engine.space, PersonVariableSpace)
        assert engine.pseudonyms is not None

    def test_individual_statement_auto_switches(self):
        pseudonyms = PseudonymTable(paper_published())
        alice = pseudonyms.assign(Q1)
        engine = PrivacyMaxEnt(
            paper_published(),
            knowledge=[
                IndividualProbability(person=alice, sa_value=S1, probability=0.2)
            ],
        )
        assert isinstance(engine.space, PersonVariableSpace)

    def test_n_knowledge_rows(self):
        engine = PrivacyMaxEnt(
            paper_published(),
            knowledge=[
                ConditionalProbability(
                    given={"gender": "male"}, sa_value=S2, probability=0.3
                )
            ],
        )
        assert engine.n_knowledge_rows == 1

    def test_solution_cached(self):
        engine = PrivacyMaxEnt(paper_published())
        first = engine.solve()
        assert engine.solve() is first
        assert engine.solve(force=True) is not first

    def test_person_engine_rejects_group_posterior(self):
        engine = PrivacyMaxEnt(paper_published(), individuals=True)
        with pytest.raises(ReproError):
            engine.posterior()

    def test_group_engine_rejects_person_posterior(self):
        engine = PrivacyMaxEnt(paper_published())
        with pytest.raises(ReproError):
            engine.person_posterior()


class TestBaselinePosterior:
    def test_matches_engine(self):
        direct = baseline_posterior(paper_published())
        engine = PrivacyMaxEnt(paper_published()).posterior()
        for q in engine.qi_tuples:
            for s in engine.sa_domain:
                assert direct.prob(q, s) == pytest.approx(engine.prob(q, s))


class TestAssess:
    def test_full_workflow(self):
        table = paper_table()
        published = paper_published()
        bounds = [TopKBound(0, 0), TopKBound(3, 3), TopKBound(10, 10)]
        assessments = assess(
            table,
            published,
            bounds,
            mining=MiningConfig(min_support_count=1, max_antecedent=2),
        )
        assert len(assessments) == 3
        assert all(isinstance(a, PrivacyAssessment) for a in assessments)
        # Accuracy must not increase as the bound grows (more knowledge).
        accuracies = [a.estimation_accuracy for a in assessments]
        assert accuracies[0] >= accuracies[1] - 1e-9
        assert accuracies[1] >= accuracies[2] - 1e-9

    def test_zero_bound_has_no_constraints(self):
        assessments = assess(
            paper_table(),
            paper_published(),
            [TopKBound(0, 0)],
            mining=MiningConfig(min_support_count=1, max_antecedent=1),
        )
        assert assessments[0].n_constraints == 0
        assert assessments[0].stats.iterations == 0  # pure closed form

    def test_render(self):
        assessments = assess(
            paper_table(),
            paper_published(),
            [TopKBound(2, 2)],
            mining=MiningConfig(min_support_count=1, max_antecedent=1),
        )
        text = render_assessments(assessments, title="T")
        assert "est_accuracy" in text
        assert "Top-(2+, 2-)" in text

    def test_custom_solver_config(self):
        assessments = assess(
            paper_table(),
            paper_published(),
            [TopKBound(2, 2)],
            mining=MiningConfig(min_support_count=1, max_antecedent=1),
            config=MaxEntConfig(decompose=False),
        )
        assert assessments[0].stats.n_components == 1

    def test_exclude_sa(self):
        with_exclusion = assess(
            paper_table(),
            paper_published(),
            [TopKBound(0, 0)],
            mining=MiningConfig(min_support_count=1, max_antecedent=1),
            exclude_sa=frozenset({"Flu"}),
        )
        without = assess(
            paper_table(),
            paper_published(),
            [TopKBound(0, 0)],
            mining=MiningConfig(min_support_count=1, max_antecedent=1),
        )
        assert (
            with_exclusion[0].max_disclosure <= without[0].max_disclosure
        )
