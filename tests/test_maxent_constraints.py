"""Unit tests for constraint systems and the data invariant rows."""

import numpy as np
import pytest

from repro.data.paper_example import paper_published, paper_table, RECORDS
from repro.errors import ReproError
from repro.knowledge.individuals import PseudonymTable
from repro.maxent.constraints import ConstraintSystem, data_constraints
from repro.maxent.indexing import GroupVariableSpace, PersonVariableSpace

from tests.helpers import empirical_joint


@pytest.fixture(scope="module")
def space():
    return GroupVariableSpace(paper_published())


class TestConstraintSystem:
    def test_add_and_assemble(self):
        system = ConstraintSystem(4)
        system.add_equality([0, 2], [1.0, 2.0], 0.5, kind="bk")
        system.add_inequality([1], [1.0], 0.2, kind="bk")
        a_matrix, c = system.equality_matrix()
        g_matrix, d = system.inequality_matrix()
        assert a_matrix.shape == (1, 4)
        assert a_matrix[0, 2] == 2.0
        assert c[0] == 0.5
        assert g_matrix.shape == (1, 4)
        assert d[0] == 0.2

    def test_out_of_range_rejected(self):
        system = ConstraintSystem(2)
        with pytest.raises(ReproError):
            system.add_equality([5], [1.0], 0.1, kind="bk")

    def test_duplicate_index_in_row_rejected(self):
        system = ConstraintSystem(3)
        with pytest.raises(ReproError):
            system.add_equality([1, 1], [1.0, 1.0], 0.1, kind="bk")

    def test_extend_merges(self):
        a = ConstraintSystem(3)
        a.add_equality([0], [1.0], 0.1, kind="qi")
        b = ConstraintSystem(3)
        b.add_inequality([1], [1.0], 0.2, kind="bk")
        a.extend(b)
        assert a.n_equalities == 1
        assert a.n_inequalities == 1

    def test_extend_size_mismatch(self):
        a = ConstraintSystem(3)
        b = ConstraintSystem(4)
        with pytest.raises(ReproError):
            a.extend(b)

    def test_rows_of_kind(self):
        system = ConstraintSystem(3)
        system.add_equality([0], [1.0], 0.1, kind="qi")
        system.add_equality([1], [1.0], 0.1, kind="sa")
        assert len(system.rows_of_kind("qi")) == 1

    def test_residual(self):
        system = ConstraintSystem(2)
        system.add_equality([0, 1], [1.0, 1.0], 1.0, kind="bk")
        assert system.residual(np.array([0.5, 0.5])) == pytest.approx(0.0)
        assert system.residual(np.array([0.2, 0.2])) == pytest.approx(0.6)

    def test_empty_matrices(self):
        system = ConstraintSystem(3)
        a_matrix, c = system.equality_matrix()
        assert a_matrix.shape == (0, 3)
        assert c.size == 0


class TestGroupDataConstraints:
    def test_row_counts(self, space):
        system = data_constraints(space)
        # 3 distinct q per bucket x 3 buckets = 9 QI rows; same for SA.
        assert len(system.rows_of_kind("qi")) == 9
        assert len(system.rows_of_kind("sa")) == 9
        assert system.n_inequalities == 0

    def test_rhs_sums(self, space):
        system = data_constraints(space)
        qi_total = sum(r.rhs for r in system.rows_of_kind("qi"))
        sa_total = sum(r.rhs for r in system.rows_of_kind("sa"))
        assert qi_total == pytest.approx(1.0)
        assert sa_total == pytest.approx(1.0)

    def test_original_assignment_is_feasible(self, space):
        """Soundness end-to-end: the true joint satisfies every data row."""
        table = paper_table()
        bucket_of_row = [bucket for *_r, bucket in RECORDS]
        joint = empirical_joint(table, bucket_of_row)
        p = np.zeros(space.n_vars)
        for (q, s, b), value in joint.items():
            p[space.index_of(q, s, b)] = value
        system = data_constraints(space)
        assert system.residual(p) < 1e-12


class TestPersonDataConstraints:
    def test_row_counts(self):
        space = PersonVariableSpace(PseudonymTable(paper_published()))
        system = data_constraints(space)
        assert len(system.rows_of_kind("person")) == 10
        assert len(system.rows_of_kind("slot")) == 9
        assert len(system.rows_of_kind("sa")) == 9

    def test_person_rows_partition_mass(self):
        space = PersonVariableSpace(PseudonymTable(paper_published()))
        system = data_constraints(space)
        total = sum(r.rhs for r in system.rows_of_kind("person"))
        assert total == pytest.approx(1.0)

    def test_slot_rows_match_qi_rows(self):
        space = PersonVariableSpace(PseudonymTable(paper_published()))
        system = data_constraints(space)
        slot_total = sum(r.rhs for r in system.rows_of_kind("slot"))
        assert slot_total == pytest.approx(1.0)
