"""Chunked (streaming) release registration: the ingest protocol."""

from __future__ import annotations

import pytest

from repro.core.serialize import published_to_dict, schema_to_dict
from repro.data.paper_example import paper_published
from repro.errors import IngestError
from repro.service import (
    BackgroundService,
    PrivacyService,
    ServiceClient,
    ServiceConfig,
    ServiceError,
)
from repro.service.ingest import IngestManager, IngestSession, chunk_digest
from repro.service.store import SessionStore, release_digest


@pytest.fixture(scope="module")
def service():
    instance = PrivacyService(ServiceConfig(port=0))
    with BackgroundService(instance) as background:
        yield background.service


@pytest.fixture(scope="module")
def client(service):
    with ServiceClient(port=service.port) as session:
        session.wait_until_healthy(timeout=10)
        yield session


def wire() -> dict:
    return published_to_dict(paper_published())


def split(buckets: list, n: int) -> list[list]:
    return [buckets[i : i + n] for i in range(0, len(buckets), n)]


class TestIngestSession:
    def test_incremental_digest_matches_one_shot(self):
        payload = wire()
        session = IngestSession("up-1", payload["schema"])
        for seq, chunk in enumerate(split(payload["buckets"], 2)):
            session.add_chunk(seq, chunk, chunk_digest(chunk))
        digest, published = session.build(None)
        assert digest == release_digest(payload)
        assert published.n_buckets == len(payload["buckets"])

    def test_digest_is_chunking_invariant(self):
        payload = wire()
        digests = set()
        for size in (1, 2, 3, 100):
            session = IngestSession("up-x", payload["schema"])
            for seq, chunk in enumerate(split(payload["buckets"], size)):
                session.add_chunk(seq, chunk, chunk_digest(chunk))
            digests.add(session.peek_digest())
        assert len(digests) == 1

    def test_duplicate_chunk_is_acknowledged_not_applied(self):
        payload = wire()
        session = IngestSession("up-2", payload["schema"])
        chunk = payload["buckets"][:2]
        first = session.add_chunk(0, chunk, chunk_digest(chunk))
        again = session.add_chunk(0, chunk, chunk_digest(chunk))
        assert first["duplicate"] is False
        assert again["duplicate"] is True
        assert again["n_chunks"] == 1

    def test_same_seq_different_content_conflicts(self):
        payload = wire()
        session = IngestSession("up-3", payload["schema"])
        a, b = payload["buckets"][:1], payload["buckets"][1:2]
        session.add_chunk(0, a, chunk_digest(a))
        with pytest.raises(IngestError):
            session.add_chunk(0, b, chunk_digest(b))

    def test_sequence_gap_conflicts(self):
        payload = wire()
        session = IngestSession("up-4", payload["schema"])
        chunk = payload["buckets"][:1]
        with pytest.raises(IngestError, match="before"):
            session.add_chunk(3, chunk, chunk_digest(chunk))

    def test_digest_mismatch_conflicts(self):
        payload = wire()
        session = IngestSession("up-5", payload["schema"])
        with pytest.raises(IngestError, match="digest"):
            session.add_chunk(0, payload["buckets"][:1], "0" * 64)

    def test_finalize_digest_claim_is_verified(self):
        payload = wire()
        session = IngestSession("up-6", payload["schema"])
        for seq, chunk in enumerate(split(payload["buckets"], 2)):
            session.add_chunk(seq, chunk, chunk_digest(chunk))
        with pytest.raises(IngestError, match="digest"):
            session.build("f" * 64)
        digest, _published = session.build(release_digest(payload))
        assert digest == release_digest(payload)

    def test_empty_upload_cannot_finalize(self):
        session = IngestSession("up-7", wire()["schema"])
        with pytest.raises(IngestError):
            session.build(None)


class TestIngestManager:
    def test_session_cap_backpressures(self):
        from repro.service.admission import QueueFullError

        manager = IngestManager(max_sessions=2, ttl_seconds=600)
        schema = wire()["schema"]
        manager.begin(schema)
        manager.begin(schema)
        with pytest.raises(QueueFullError):
            manager.begin(schema)

    def test_expired_sessions_are_swept(self):
        manager = IngestManager(max_sessions=1, ttl_seconds=0.0)
        schema = wire()["schema"]
        manager.begin(schema)
        # TTL zero: the first session is already expired, so the cap
        # does not block the next begin.
        manager.begin(schema)
        assert manager.snapshot()["expired"] >= 1

    def test_abort_frees_a_slot(self):
        manager = IngestManager(max_sessions=1, ttl_seconds=600)
        schema = wire()["schema"]
        upload_id = manager.begin(schema).upload_id
        manager.abort(upload_id)
        manager.begin(schema)
        with pytest.raises(LookupError):
            manager.get(upload_id)


class TestChunkedUploadEndToEnd:
    def test_chunked_equals_one_shot_registration(self, client):
        # The acceptance bar: a release streamed in chunks dedups onto
        # the identical one-shot registration — byte-identical digests.
        published = paper_published()
        one_shot = client.register(published, name="one-shot")
        upload_id = client.begin_upload(
            schema_to_dict(published.schema), name="chunked"
        )
        payload = wire()
        for seq, chunk in enumerate(split(payload["buckets"], 2)):
            client.upload_chunk(upload_id, seq, chunk)
        summary = client.finalize_upload(
            upload_id, digest=release_digest(payload)
        )
        assert summary["release_id"] == one_shot
        assert summary["created"] is False
        assert summary["digest"] == release_digest(payload)

    def test_posteriors_match_between_paths(self, client):
        # Same release id ⇒ same posterior; spelled out so the privacy
        # equivalence (not just digest equality) is pinned by a test.
        payload = wire()
        upload_id = client.begin_upload(payload["schema"])
        for seq, chunk in enumerate(split(payload["buckets"], 3)):
            client.upload_chunk(upload_id, seq, chunk)
        summary = client.finalize_upload(upload_id)
        chunked = client.posterior(summary["release_id"])
        one_shot = client.posterior(client.register(paper_published()))
        assert chunked.posterior.matrix == pytest.approx(
            one_shot.posterior.matrix
        )

    def test_chunk_resend_is_idempotent(self, client):
        payload = wire()
        upload_id = client.begin_upload(payload["schema"])
        chunk = payload["buckets"][:2]
        first = client.upload_chunk(upload_id, 0, chunk)
        again = client.upload_chunk(upload_id, 0, chunk)
        assert first["duplicate"] is False
        assert again["duplicate"] is True
        client.abort_upload(upload_id)

    def test_finalize_is_idempotent(self, client):
        payload = wire()
        upload_id = client.begin_upload(payload["schema"])
        for seq, chunk in enumerate(split(payload["buckets"], 2)):
            client.upload_chunk(upload_id, seq, chunk)
        first = client.finalize_upload(upload_id)
        again = client.finalize_upload(upload_id)
        assert again["release_id"] == first["release_id"]
        assert again["digest"] == first["digest"]
        assert again["created"] is False

    def test_gap_is_409(self, client):
        payload = wire()
        upload_id = client.begin_upload(payload["schema"])
        chunk = payload["buckets"][:1]
        with pytest.raises(ServiceError) as excinfo:
            client.upload_chunk(upload_id, 5, chunk)
        assert excinfo.value.status == 409
        assert excinfo.value.code == "ingest_conflict"
        client.abort_upload(upload_id)

    def test_unknown_upload_is_404(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.upload_chunk("up-nope", 0, wire()["buckets"][:1])
        assert excinfo.value.status == 404

    def test_status_and_listing(self, client):
        payload = wire()
        upload_id = client.begin_upload(payload["schema"], name="status-me")
        chunk = payload["buckets"][:2]
        client.upload_chunk(upload_id, 0, chunk)
        status = client.upload_status(upload_id)
        assert status["n_chunks"] == 1
        assert status["n_buckets"] == 2
        listing = client._request("GET", "/v1/releases/uploads", None)
        assert any(u["upload_id"] == upload_id for u in listing["uploads"])
        client.abort_upload(upload_id)

    def test_telemetry_counts_ingest(self, client):
        telemetry = client.telemetry()
        assert "ingest" in telemetry
        assert telemetry["ingest"]["started"] >= 1
        assert telemetry["service"]["counters"].get("ingest_chunks", 0) >= 1


class TestRegisterSizeGuard:
    def test_oversized_one_shot_is_413_pointing_at_chunks(self):
        config = ServiceConfig(port=0, register_max_bytes=512)
        with BackgroundService(PrivacyService(config)) as background:
            with ServiceClient(port=background.service.port) as client:
                client.wait_until_healthy(timeout=10)
                with pytest.raises(ServiceError) as excinfo:
                    client.register(paper_published())
                assert excinfo.value.status == 413
                assert "chunked" in str(excinfo.value)
                # The chunked path works under the same tight cap.
                payload = wire()
                upload_id = client.begin_upload(payload["schema"])
                for seq, chunk in enumerate(split(payload["buckets"], 1)):
                    client.upload_chunk(upload_id, seq, chunk)
                summary = client.finalize_upload(upload_id)
                assert summary["digest"] == release_digest(payload)

    def test_session_cap_is_429(self):
        from repro.cluster.retry import RetryPolicy

        config = ServiceConfig(port=0, max_ingest_sessions=1)
        with BackgroundService(PrivacyService(config)) as background:
            # attempts=1: see the raw 429 instead of sleeping through
            # the client's Retry-After absorption.
            with ServiceClient(
                port=background.service.port, retry=RetryPolicy(attempts=1)
            ) as client:
                client.wait_until_healthy(timeout=10)
                schema = wire()["schema"]
                client.begin_upload(schema)
                with pytest.raises(ServiceError) as excinfo:
                    client.begin_upload(schema)
                assert excinfo.value.status == 429
                assert excinfo.value.code == "queue_full"


class TestStoreDigestRegistration:
    def test_register_digest_shares_the_digest_keyspace(self):
        store = SessionStore()
        payload = wire()
        record, created = store.register(payload, paper_published())
        assert created
        again, created_again = store.register_digest(
            release_digest(payload), paper_published()
        )
        assert again.release_id == record.release_id
        assert created_again is False


class TestSampledOutRequestsStillServe:
    def test_rate_zero_service_keeps_answering(self, client):
        # REPRO_TRACE_SAMPLE=0 drops every request trace; the requests
        # themselves must be entirely unaffected.
        from repro.obs.trace import get_tracer

        tracer = get_tracer()
        previous = tracer.sample_rate
        tracer.set_sample_rate(0.0)
        try:
            assert client.healthz()["status"] in ("ok", "degraded")
            payload = wire()
            upload_id = client.begin_upload(payload["schema"])
            ack = client.upload_chunk(upload_id, 0, payload["buckets"][:1])
            assert ack["n_buckets"] == 1
            client.abort_upload(upload_id)
            traces = client.traces()
            assert traces["sample_rate"] == 0.0
        finally:
            tracer.set_sample_rate(previous)
