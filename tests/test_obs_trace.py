"""Span tracing: nesting, explicit context hand-off, bounded retention."""

from __future__ import annotations

import threading

from repro.obs.trace import NOOP_SPAN, Tracer, format_trace


def tracer(**kwargs) -> Tracer:
    kwargs.setdefault("enabled", True)
    kwargs.setdefault("slow_seconds", 9999.0)
    return Tracer(**kwargs)


def only_trace(t: Tracer) -> dict:
    traces = t.traces()
    assert len(traces) == 1
    return traces[0]


class TestNesting:
    def test_root_span_has_no_parent(self):
        t = tracer()
        with t.span("root") as root:
            assert root.parent_id is None
            assert root.trace_id

    def test_same_thread_child_nests_implicitly(self):
        t = tracer()
        with t.span("root") as root:
            with t.span("child") as child:
                assert child.trace_id == root.trace_id
                assert child.parent_id == root.span_id

    def test_ctx_parents_when_no_local_span(self):
        t = tracer()
        ctx = {"trace_id": "t" * 16, "span_id": "abcd1234"}
        with t.span("remote-child", ctx=ctx) as span:
            assert span.trace_id == ctx["trace_id"]
            assert span.parent_id == ctx["span_id"]

    def test_local_parent_wins_over_ctx(self):
        t = tracer()
        with t.span("root") as root:
            with t.span("child", ctx={"trace_id": "x", "span_id": "y"}) as c:
                assert c.trace_id == root.trace_id
                assert c.parent_id == root.span_id

    def test_sibling_after_child_closes_parents_on_root(self):
        t = tracer()
        with t.span("root") as root:
            with t.span("first"):
                pass
            with t.span("second") as second:
                assert second.parent_id == root.span_id

    def test_context_reflects_active_span(self):
        t = tracer()
        assert t.context() is None
        with t.span("root") as root:
            assert t.context() == {
                "trace_id": root.trace_id,
                "span_id": root.span_id,
            }
        assert t.context() is None


class TestRetention:
    def test_finishing_root_finalizes_the_trace(self):
        t = tracer()
        with t.span("root"):
            with t.span("child"):
                pass
            assert t.traces() == []  # not finished yet
        trace = only_trace(t)
        assert trace["root"] == "root"
        assert trace["n_spans"] == 2
        assert {s["name"] for s in trace["spans"]} == {"root", "child"}

    def test_recent_ring_is_bounded(self):
        t = tracer(recent=3)
        for index in range(5):
            with t.span(f"run-{index}"):
                pass
        names = [trace["root"] for trace in t.traces()]
        assert names == ["run-4", "run-3", "run-2"]

    def test_slow_ring_survives_fast_churn(self):
        t = tracer(recent=2, slow_seconds=0.0)  # everything is "slow"
        with t.span("outlier"):
            pass
        t.slow_seconds = 9999.0  # subsequent traces are fast
        for index in range(4):
            with t.span(f"fast-{index}"):
                pass
        roots = {trace["root"] for trace in t.traces()}
        assert "outlier" in roots  # evicted from recent, kept in slow
        assert {trace["root"] for trace in t.traces(slow_only=True)} == {
            "outlier"
        }

    def test_traces_dedups_and_limits(self):
        t = tracer(slow_seconds=0.0)
        for index in range(3):
            with t.span(f"run-{index}"):
                pass
        traces = t.traces(limit=2)
        assert len(traces) == 2
        assert len({trace["trace_id"] for trace in t.traces()}) == 3

    def test_exception_records_error_attribute(self):
        t = tracer()
        try:
            with t.span("boom"):
                raise ValueError("nope")
        except ValueError:
            pass
        trace = only_trace(t)
        assert trace["spans"][0]["attributes"]["error"] == "ValueError: nope"

    def test_reset_drops_everything(self):
        t = tracer()
        with t.span("root"):
            pass
        t.reset()
        assert t.traces() == []


class TestDisabled:
    def test_disabled_span_is_the_shared_noop(self):
        t = tracer(enabled=False)
        with t.span("anything", key="value") as span:
            assert span is NOOP_SPAN
            assert span.set(more=1) is NOOP_SPAN
        assert t.traces() == []
        assert t.context() is None

    def test_toggle_at_runtime(self):
        t = tracer(enabled=False)
        t.set_enabled(True)
        with t.span("now-recorded"):
            pass
        assert only_trace(t)["root"] == "now-recorded"


class TestCaptureAndImport:
    def test_capture_diverts_spans_from_the_rings(self):
        t = tracer()
        with t.capture() as capture:
            with t.span("worker-side"):
                pass
        assert [s["name"] for s in capture.spans] == ["worker-side"]
        assert t.traces() == []

    def test_record_imported_stitches_into_pending_trace(self):
        t = tracer()
        with t.span("root") as root:
            shipped = [
                {
                    "trace_id": root.trace_id,
                    "span_id": "remote01",
                    "parent_id": root.span_id,
                    "name": "remote.work",
                    "started_at": root.started_at,
                    "duration_seconds": 0.001,
                    "attributes": {},
                }
            ]
            t.record_imported(shipped)
        trace = only_trace(t)
        assert {s["name"] for s in trace["spans"]} == {"root", "remote.work"}

    def test_imports_for_unknown_traces_are_dropped(self):
        t = tracer()
        t.record_imported(
            [{"trace_id": "never-started", "span_id": "x", "name": "orphan"}]
        )
        with t.span("root"):
            pass
        assert only_trace(t)["n_spans"] == 1

    def test_import_inside_capture_chains_outward(self):
        """A worker forwarding deeper workers' spans to its own caller."""
        t = tracer()
        deeper = [{"trace_id": "t1", "span_id": "d1", "name": "deep"}]
        with t.capture() as capture:
            t.record_imported(deeper)
        assert capture.spans == deeper
        assert t.traces() == []

    def test_cross_thread_child_via_explicit_ctx(self):
        """The executor pattern: ctx handed over, bracket in the task."""
        t = tracer()
        with t.span("root") as root:
            ctx = t.context()

            def task():
                with t.span("thread-child", ctx=ctx):
                    pass

            worker = threading.Thread(target=task)
            worker.start()
            worker.join()
        trace = only_trace(t)
        child = next(
            s for s in trace["spans"] if s["name"] == "thread-child"
        )
        assert child["trace_id"] == root.trace_id
        assert child["parent_id"] == root.span_id


class TestFormatTrace:
    def test_renders_indented_tree(self):
        t = tracer()
        with t.span("root", answer=42):
            with t.span("child"):
                pass
        rendered = format_trace(only_trace(t))
        lines = rendered.splitlines()
        assert lines[0].startswith("trace ")
        assert "root" in lines[1] and "answer=42" in lines[1]
        assert lines[2].startswith("    - child")

    def test_remote_parent_renders_at_top_level(self):
        trace = {
            "trace_id": "t",
            "duration_seconds": 0.0,
            "spans": [
                {
                    "span_id": "a",
                    "parent_id": "not-shipped",
                    "name": "stranded",
                    "started_at": 0.0,
                    "duration_seconds": 0.0,
                    "attributes": {},
                }
            ],
        }
        assert "stranded" in format_trace(trace)


class TestHeadSampling:
    def test_rate_zero_drops_fresh_roots(self):
        t = tracer()
        t.set_sample_rate(0.0)
        with t.span("root") as root:
            assert root.to_dict() == {}
        assert t.traces() == []
        assert t.sampled_out == 1

    def test_descendants_of_a_sampled_out_root_are_suppressed(self):
        # A sampled-out root must take its whole subtree with it — a
        # child opening under it must not coin-flip a fresh root.
        t = tracer()
        t.set_sample_rate(0.0)
        with t.span("root"):
            t.set_sample_rate(1.0)  # children still must not record
            with t.span("child") as child:
                assert child.to_dict() == {}
        assert t.traces() == []

    def test_suppression_ends_with_the_root(self):
        t = tracer()
        t.set_sample_rate(0.0)
        with t.span("dropped"):
            pass
        t.set_sample_rate(1.0)
        with t.span("kept"):
            pass
        assert [tr["root"] for tr in t.traces()] == ["kept"]

    def test_ctx_spans_are_never_sampled_away(self):
        # The keep decision is made at the root; a handed-over context
        # means some other process already kept this trace.
        t = tracer()
        t.set_sample_rate(0.0)
        ctx = {"trace_id": "t" * 16, "span_id": "abcd1234"}
        with t.span("remote-child", ctx=ctx) as span:
            assert span.trace_id == ctx["trace_id"]

    def test_rate_is_clamped(self):
        t = tracer()
        t.set_sample_rate(7.0)
        assert t.sample_rate == 1.0
        t.set_sample_rate(-3.0)
        assert t.sample_rate == 0.0

    def test_env_knob_is_read_at_construction(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_SAMPLE", "0.25")
        assert tracer().sample_rate == 0.25
        monkeypatch.setenv("REPRO_TRACE_SAMPLE", "junk")
        assert tracer().sample_rate == 1.0

    def test_rate_one_keeps_everything(self):
        t = tracer()
        t.set_sample_rate(1.0)
        for i in range(5):
            with t.span(f"r{i}"):
                pass
        assert len(t.traces()) == 5
        assert t.sampled_out == 0

    def test_sampled_out_requests_still_serve(self):
        # The service must keep answering when its spans are dropped:
        # the no-op span still context-manages and still sets attributes.
        t = tracer()
        t.set_sample_rate(0.0)
        with t.span("request") as span:
            span.set(status=200)
            result = 1 + 1
        assert result == 2
