"""Engine integration of the batched dual path (plan, cache, cluster seam).

The acceptance discipline: batched and per-component engine solves agree
within the solver tolerance on every workload, and the *bookkeeping* —
per-component fingerprints, cache entries, warm-start records — is
identical in structure whichever path produced it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.paper_example import S1, paper_published
from repro.engine import PrivacyEngine, bin_batch_groups, component_fingerprint
from repro.engine.component import (
    solve_component,
    solve_component_group_task,
)
from repro.engine.plan import build_plan
from repro.errors import ReproError
from repro.experiments.workloads import (
    build_adult_workload,
    build_synthetic_release,
    per_bucket_statements,
)
from repro.knowledge.bounds import TopKBound
from repro.knowledge.compiler import compile_statements
from repro.knowledge.statements import ConditionalProbability
from repro.maxent.config import MaxEntConfig
from repro.maxent.constraints import ConstraintSystem, data_constraints
from repro.maxent.decompose import decompose
from repro.maxent.indexing import GroupVariableSpace

TOL = 1e-6


def _system_with(space, statements):
    system = ConstraintSystem(space.n_vars)
    system.extend(data_constraints(space))
    if statements:
        system.extend(compile_statements(list(statements), space))
    return system


def _paper_workload():
    space = GroupVariableSpace(paper_published())
    statements = [
        ConditionalProbability(
            given={"gender": "male"}, sa_value=S1, probability=0.2
        )
    ]
    return space, _system_with(space, statements)


def _adult_workload():
    workload = build_adult_workload(n_records=600, max_antecedent=2)
    space = GroupVariableSpace(workload.published)
    statements = TopKBound(5, 5).statements(workload.rules)
    return space, _system_with(space, statements)


def _synthetic_workload(n_records=480):
    published = build_synthetic_release(
        n_records, qi_domain_sizes=(40, 30, 20, 10), n_sa_values=6, l=5
    )
    space = GroupVariableSpace(published)
    return space, _system_with(space, per_bucket_statements(published))


WORKLOADS = {
    "paper": _paper_workload,
    "adult": _adult_workload,
    "synthetic": _synthetic_workload,
}

# batch_components pinned to 0 so a REPRO_BATCH_COMPONENTS in the test
# environment cannot silently batch the per-component baseline.
PLAIN = MaxEntConfig(raise_on_infeasible=False, batch_components=0)
BATCHED = MaxEntConfig(
    raise_on_infeasible=False, batch_components=512, batch_max_vars=512
)


class TestConfigKnobs:
    def test_defaults_are_on(self):
        config = MaxEntConfig()
        assert config.batch_components == 1024
        assert config.replay == "tolerance"
        assert config.kernel == "auto"
        assert config.batching_enabled

    def test_bitwise_replay_disables_batching(self):
        config = MaxEntConfig(replay="bitwise", batch_components=512)
        assert not config.batching_enabled

    def test_replay_and_kernel_validated(self):
        with pytest.raises(ReproError, match="replay"):
            MaxEntConfig(replay="exact")
        with pytest.raises(ReproError, match="kernel"):
            MaxEntConfig(kernel="fortran")

    def test_replay_and_kernel_env_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_REPLAY", "bitwise")
        monkeypatch.setenv("REPRO_KERNEL", "numpy")
        config = MaxEntConfig()
        assert config.replay == "bitwise"
        assert config.kernel == "numpy"
        assert not config.batching_enabled

    def test_validation(self):
        with pytest.raises(ReproError, match="batch_components"):
            MaxEntConfig(batch_components=-1)
        with pytest.raises(ReproError, match="batch_max_vars"):
            MaxEntConfig(batch_max_vars=0)

    def test_env_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH_COMPONENTS", "64")
        monkeypatch.setenv("REPRO_BATCH_MAX_VARS", "32")
        config = MaxEntConfig()
        assert config.batch_components == 64
        assert config.batch_max_vars == 32
        assert config.batching_enabled

    def test_bad_env_value_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH_COMPONENTS", "many")
        with pytest.raises(ReproError, match="REPRO_BATCH_COMPONENTS"):
            MaxEntConfig()

    def test_only_lbfgs_batches(self):
        config = MaxEntConfig(batch_components=64, solver="newton")
        assert not config.batching_enabled

    def test_solve_key_excludes_batching(self):
        assert MaxEntConfig().solve_key() == BATCHED.solve_key() == (
            PLAIN.solve_key()
        )

    def test_bitwise_gets_its_own_solve_key(self):
        # Bitwise results come off a different (per-component) code path,
        # so they must not share cache entries with tolerance solves.
        bitwise = MaxEntConfig(replay="bitwise")
        assert bitwise.solve_key() != MaxEntConfig().solve_key()
        assert bitwise.solve_key()[-1] == "bitwise"


class TestBinning:
    def test_disabled_config_bins_nothing(self):
        assert bin_batch_groups([4, 5, 6], PLAIN) == []
        assert bin_batch_groups([4, 5, 6], MaxEntConfig(replay="bitwise")) == []

    def test_threshold_filters_large_items(self):
        config = MaxEntConfig(batch_components=8, batch_max_vars=10)
        groups = bin_batch_groups([4, 50, 6, 8, 100], config)
        assert groups == [[0, 2, 3]]

    def test_chunking_respects_batch_components(self):
        config = MaxEntConfig(batch_components=2, batch_max_vars=10)
        groups = bin_batch_groups([1, 2, 3, 4, 5], config)
        assert groups == [[0, 1], [2, 3]]  # trailing singleton dropped

    def test_workers_split_the_fanout(self):
        config = MaxEntConfig(batch_components=100, batch_max_vars=10)
        groups = bin_batch_groups(list(range(1, 9)), config, workers=4)
        assert len(groups) == 4
        assert all(len(g) == 2 for g in groups)

    def test_fewer_than_two_eligible(self):
        config = MaxEntConfig(batch_components=8, batch_max_vars=10)
        assert bin_batch_groups([5, 50, 60], config) == []

    def test_plan_carries_batch_groups(self):
        space, system = _synthetic_workload()
        plan = build_plan(space, system, BATCHED)
        grouped = {pos for group in plan.batch_groups for pos in group}
        assert grouped
        assert grouped <= set(plan.numeric)
        assert "stacked dual" in plan.describe()
        ungrouped_plan = build_plan(space, system, PLAIN)
        assert ungrouped_plan.batch_groups == []


class TestEngineEquivalence:
    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_batched_matches_per_component_within_tol(self, name):
        space, system = WORKLOADS[name]()
        baseline = PrivacyEngine(cache_size=0).solve(space, system, PLAIN)
        batched = PrivacyEngine(cache_size=0).solve(space, system, BATCHED)
        assert batched.stats.converged == baseline.stats.converged
        assert batched.stats.n_components == baseline.stats.n_components
        assert np.abs(batched.p - baseline.p).max() <= 100 * TOL
        numeric = sum(
            1
            for record in baseline.components
            if record.stats.solver == "lbfgs"
        )
        if numeric >= 2:
            # A single numeric component (the paper example) has nothing
            # to stack with; everything else must take the batched path.
            assert batched.stats.batched_components > 0
        assert baseline.stats.batched_components == 0

    def test_residuals_stay_within_tolerance(self):
        space, system = _synthetic_workload()
        solution = PrivacyEngine(cache_size=0).solve(space, system, BATCHED)
        for record in solution.components:
            if record.stats.solver == "lbfgs":
                assert record.stats.eq_residual <= TOL * 10

    def test_cache_contents_use_identical_fingerprints(self):
        space, system = _synthetic_workload()
        plain_engine = PrivacyEngine(cache_size=4096)
        batch_engine = PrivacyEngine(cache_size=4096)
        plain_engine.solve(space, system, PLAIN)
        batch_engine.solve(space, system, BATCHED)
        plain_keys = {key for key, _ in plain_engine.cache.items()}
        batch_keys = {key for key, _ in batch_engine.cache.items()}
        assert plain_keys == batch_keys
        plain_entries = dict(plain_engine.cache.items())
        for key, entry in batch_engine.cache.items():
            assert (
                np.abs(entry.p - plain_entries[key].p).max() <= 100 * TOL
            )

    def test_batched_entries_serve_per_component_solves(self):
        # The v3 contract: a cache entry is tolerance-equivalent to the
        # per-component result, so entries written by either path are
        # interchangeable under replay="tolerance".
        space, system = _synthetic_workload()
        engine = PrivacyEngine(cache_size=4096)
        first = engine.solve(space, system, BATCHED)
        assert first.stats.batched_components > 0
        replay = engine.solve(space, system, PLAIN)
        assert replay.stats.cache_hits > 0
        assert replay.stats.batched_components == 0
        assert np.array_equal(first.p, replay.p)

    def test_per_component_entries_serve_batched_solves(self):
        space, system = _synthetic_workload()
        engine = PrivacyEngine(cache_size=4096)
        first = engine.solve(space, system, PLAIN)
        replay = engine.solve(space, system, BATCHED)
        assert replay.stats.cache_hits > 0
        assert replay.stats.batched_components == 0  # all served warm
        assert np.array_equal(first.p, replay.p)

    def test_bitwise_does_not_share_tolerance_entries(self):
        # replay="bitwise" promises bit-identical per-component results,
        # so it must never be served an entry a batched solve wrote.
        space, system = _synthetic_workload()
        engine = PrivacyEngine(cache_size=4096)
        warm = engine.solve(space, system, BATCHED)
        assert warm.stats.batched_components > 0
        bitwise = engine.solve(
            space, system, MaxEntConfig(
                raise_on_infeasible=False, replay="bitwise"
            )
        )
        assert bitwise.stats.cache_hits == 0
        assert bitwise.stats.batched_components == 0

    def test_warm_cache_replays_without_batching(self):
        space, system = _synthetic_workload()
        engine = PrivacyEngine(cache_size=4096)
        first = engine.solve(space, system, BATCHED)
        assert first.stats.batched_components > 0
        again = engine.solve(space, system, BATCHED)
        assert again.stats.cache_hits > 0
        assert again.stats.batched_components == 0
        assert np.array_equal(first.p, again.p)

    def test_telemetry_counts_batched_components(self):
        space, system = _synthetic_workload()
        engine = PrivacyEngine(cache_size=0)
        assert engine.stats()["batched_components"] == 0
        solution = engine.solve(space, system, BATCHED)
        assert (
            engine.stats()["batched_components"]
            == solution.stats.batched_components
            > 0
        )

    def test_process_executor_ships_batch_groups(self):
        space, system = _synthetic_workload()
        config = MaxEntConfig(
            raise_on_infeasible=False,
            batch_components=512,
            batch_max_vars=512,
            executor="process",
            workers=2,
        )
        with PrivacyEngine(
            executor="process", workers=2, cache_size=0
        ) as engine:
            solution = engine.solve(space, system, config)
        baseline = PrivacyEngine(cache_size=0).solve(space, system, PLAIN)
        assert solution.stats.batched_components > 0
        assert np.abs(solution.p - baseline.p).max() <= 100 * TOL


class TestShardEntryPoint:
    def _components(self, space, system, config):
        components = decompose(space, system)
        solve_key = config.solve_key()
        fingerprints = [
            component_fingerprint(c.system, c.mass, solve_key)
            for c in components
        ]
        return components, fingerprints

    def test_solve_components_bins_batches(self):
        space, system = _synthetic_workload()
        components, fingerprints = self._components(space, system, BATCHED)
        engine = PrivacyEngine(cache_size=4096)
        results = engine.solve_components(fingerprints, components, BATCHED)
        assert len(results) == len(components)
        assert engine.batched_components > 0
        # Every converged component landed in the cache under the
        # coordinator-supplied fingerprint.
        for fingerprint, (solve, cached) in zip(fingerprints, results):
            assert not cached
            if solve.stats.converged:
                assert engine.cache.lookup(fingerprint) is not None
        # And the per-component results match plain solves within tol.
        for component, (solve, _) in zip(components, results):
            solo = solve_component(component, PLAIN)
            assert np.abs(solo.p - solve.p).max() <= 100 * TOL

    def test_solve_components_without_batching_unchanged(self):
        space, system = _paper_workload()
        components, fingerprints = self._components(space, system, PLAIN)
        engine = PrivacyEngine(cache_size=64)
        results = engine.solve_components(fingerprints, components, PLAIN)
        assert engine.batched_components == 0
        assert all(not cached for _, cached in results)


class _CapturingExecutor:
    """Executor stub recording the group jobs the engine dispatches."""

    name = "capture"
    workers = 1

    def __init__(self):
        self.jobs = []

    def imap(self, fn, items):
        assert fn is solve_component_group_task
        items = list(items)
        self.jobs.extend(items)
        return (fn(job) for job in items)

    def close(self):
        pass


class TestFingerprintPassthrough:
    def test_engine_passes_cache_fingerprints_to_executor(self):
        space, system = _synthetic_workload()
        executor = _CapturingExecutor()
        engine = PrivacyEngine(executor=executor, cache_size=4096)
        engine.solve(space, system, BATCHED)
        solve_key = BATCHED.solve_key()
        seen = 0
        for components, _, _, fingerprints, *_rest in executor.jobs:
            for component, fingerprint in zip(components, fingerprints):
                assert fingerprint == component_fingerprint(
                    component.system, component.mass, solve_key
                )
                seen += 1
        assert seen > 0

    def test_cache_disabled_passes_none(self):
        space, system = _paper_workload()
        executor = _CapturingExecutor()
        engine = PrivacyEngine(executor=executor, cache_size=0)
        engine.solve(space, system, PLAIN)
        assert executor.jobs
        for _, _, _, fingerprints, *_rest in executor.jobs:
            assert all(f is None for f in fingerprints)
