"""Tests for the experiment harness, plots, workloads and figure drivers."""

import math

import pytest

from repro.errors import ExperimentError
from repro.experiments.ascii_plot import line_plot
from repro.experiments.figures import (
    Figure5Config,
    Figure6Config,
    Figure7aConfig,
    Figure7bcConfig,
    figure5,
    figure6,
    figure7a,
    figure7bc,
)
from repro.experiments.harness import ExperimentResult
from repro.experiments.workloads import build_adult_workload, k_grid
from repro.maxent.solver import MaxEntConfig

FAST_SOLVER = MaxEntConfig(raise_on_infeasible=False)
FAST_PERF_SOLVER = MaxEntConfig(decompose=False, raise_on_infeasible=False)


class TestHarness:
    def test_add_and_series_xy(self):
        result = ExperimentResult("t", "x", "y", {})
        result.add("a", 1, 2.0)
        result.add("a", 2, 3.0)
        xs, ys = result.series_xy("a")
        assert xs == [1, 2]
        assert ys == [2.0, 3.0]

    def test_missing_series(self):
        result = ExperimentResult("t", "x", "y", {})
        with pytest.raises(ExperimentError):
            result.series_xy("nope")

    def test_table_includes_all_series(self):
        result = ExperimentResult("fig", "K", "acc", {})
        result.add("a", 1, 0.5)
        result.add("b", 1, 0.6)
        text = result.to_table()
        assert "a" in text and "b" in text and "fig" in text

    def test_render_includes_plot_and_notes(self):
        result = ExperimentResult("fig", "K", "acc", {}, notes="hello note")
        result.add("a", 1, 0.5)
        result.add("a", 2, 0.25)
        text = result.render()
        assert "legend" in text
        assert "hello note" in text


class TestAsciiPlot:
    def test_markers_and_legend(self):
        text = line_plot(
            {"one": ([0, 1], [0.0, 1.0]), "two": ([0, 1], [1.0, 0.0])},
            title="T",
        )
        assert "o = one" in text
        assert "x = two" in text

    def test_empty_data(self):
        text = line_plot({"a": ([], [])})
        assert "no finite data" in text

    def test_non_finite_skipped(self):
        text = line_plot({"a": ([0, 1], [float("inf"), 1.0])})
        assert "1" in text

    def test_flat_series(self):
        text = line_plot({"a": ([0, 1, 2], [1.0, 1.0, 1.0])})
        assert "legend" in text


class TestWorkloads:
    def test_k_grid_shape(self):
        grid = k_grid(1600, points=7)
        assert grid[0] == 0
        assert grid[-1] == 1600
        assert grid == sorted(set(grid))

    def test_k_grid_zero(self):
        assert k_grid(0) == [0]

    def test_build_adult_workload(self):
        workload = build_adult_workload(n_records=300, max_antecedent=1)
        assert workload.published.n_buckets == 60
        assert workload.rules.n_positive > 0
        assert workload.truth.weights.sum() == pytest.approx(1.0)

    def test_antecedent_size_restriction(self):
        workload = build_adult_workload(
            n_records=300, antecedent_sizes=(2,), max_antecedent=2
        )
        assert all(r.size == 2 for r in workload.rules.positive)


class TestFigureDrivers:
    """Tiny configurations: shape checks, not paper-scale numbers."""

    def test_figure5_shape_and_monotonicity(self):
        config = Figure5Config(
            n_records=250, max_antecedent=1, max_k=40, points=3,
            solver=FAST_SOLVER,
        )
        result = figure5(config)
        assert set(result.series) == {"K+", "K-", "(K+, K-)"}
        for name in result.series:
            xs, ys = result.series_xy(name)
            assert xs[0] == 0
            assert all(math.isfinite(y) for y in ys)
            # Headline shape: accuracy at max K below accuracy at K = 0.
            assert ys[-1] <= ys[0] + 1e-9

    def test_figure6_series_per_size(self):
        config = Figure6Config(
            n_records=250, sizes=(1, 2), max_k=20, points=2,
            solver=FAST_SOLVER,
        )
        result = figure6(config)
        assert set(result.series) == {"T=1", "T=2"}

    def test_figure6_rejects_empty_sizes(self):
        with pytest.raises(ExperimentError):
            figure6(Figure6Config(sizes=()))

    def test_figure7a_two_series(self):
        config = Figure7aConfig(
            n_records=250,
            max_antecedent=1,
            constraint_counts=(5, 20),
            solver=FAST_PERF_SOLVER,
        )
        result = figure7a(config)
        assert set(result.series) == {"running time (s)", "iterations"}
        xs, ys = result.series_xy("running time (s)")
        assert xs == [5, 20]
        assert all(y >= 0 for y in ys)

    def test_figure7bc_series_per_knowledge_size(self):
        config = Figure7bcConfig(
            bucket_counts=(20, 40),
            knowledge_sizes=(0, 5),
            max_antecedent=1,
            solver=FAST_PERF_SOLVER,
        )
        time_result, iteration_result = figure7bc(config)
        assert set(time_result.series) == {
            "#Constraints = 0",
            "#Constraints = 5",
        }
        xs, _ys = iteration_result.series_xy("#Constraints = 0")
        assert xs == [20, 40]
        # Without knowledge and without decomposition the solver still runs
        # (decompose=False forbids the closed-form shortcut per component
        # only when knowledge exists; iterations may be zero) — just check
        # the series exist and are non-negative.
        for name in iteration_result.series:
            _xs, ys = iteration_result.series_xy(name)
            assert all(y >= 0 for y in ys)
