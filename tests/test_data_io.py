"""Unit tests for CSV round-trip."""

import pytest

from repro.data.io import read_csv, write_csv
from repro.data.paper_example import paper_schema, paper_table
from repro.errors import SchemaError


class TestRoundTrip:
    def test_preserves_records(self, tmp_path):
        table = paper_table()
        path = tmp_path / "d.csv"
        write_csv(table, path)
        loaded = read_csv(path, paper_schema())
        assert loaded.n_rows == table.n_rows
        assert loaded.records() == table.records()

    def test_header_only_for_empty_check(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(SchemaError, match="empty"):
            read_csv(path, paper_schema())

    def test_header_mismatch(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b,c\n1,2,3\n")
        with pytest.raises(SchemaError, match="mismatch"):
            read_csv(path, paper_schema())

    def test_ragged_row_rejected(self, tmp_path):
        table = paper_table()
        path = tmp_path / "d.csv"
        write_csv(table, path)
        with path.open("a") as handle:
            handle.write("male,college\n")  # one field short
        with pytest.raises(SchemaError, match="expected 3 fields"):
            read_csv(path, paper_schema())

    def test_column_order_independent(self, tmp_path):
        # read_csv must use the header, not positional order.
        path = tmp_path / "d.csv"
        path.write_text(
            "disease,gender,degree\nFlu,male,college\n"
        )
        loaded = read_csv(path, paper_schema())
        assert loaded.record(0) == {
            "gender": "male", "degree": "college", "disease": "Flu",
        }

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "d.csv"
        path.write_text("gender,degree,disease\nmale,college,Flu\n\n")
        loaded = read_csv(path, paper_schema())
        assert loaded.n_rows == 1
