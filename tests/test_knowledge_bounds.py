"""Unit tests for the Top-(K+, K-) bound."""

import pytest

from repro.data.paper_example import paper_table
from repro.errors import KnowledgeError
from repro.knowledge.bounds import TopKBound
from repro.knowledge.mining import MiningConfig, mine_association_rules
from repro.knowledge.rules import NegativeRule, PositiveRule
from repro.knowledge.statements import ConditionalInterval, ConditionalProbability


@pytest.fixture(scope="module")
def rules():
    return mine_association_rules(
        paper_table(), MiningConfig(min_support_count=1, max_antecedent=2)
    )


class TestSelection:
    def test_counts(self, rules):
        bound = TopKBound(3, 2)
        selected = bound.select(rules)
        positives = [r for r in selected if isinstance(r, PositiveRule)]
        negatives = [r for r in selected if isinstance(r, NegativeRule)]
        assert len(positives) == 3
        assert len(negatives) <= 2  # dedup may remove overlap

    def test_takes_strongest(self, rules):
        bound = TopKBound(5, 0)
        selected = bound.select(rules)
        assert [r.confidence for r in selected] == [
            r.confidence for r in rules.positive[:5]
        ]

    def test_more_than_available(self, rules):
        bound = TopKBound(10**6, 0)
        selected = bound.select(rules)
        assert len(selected) == rules.n_positive

    def test_zero_bound_empty(self, rules):
        assert TopKBound(0, 0).select(rules) == []

    def test_dedup_on_same_fact(self, rules):
        # A positive rule (Qv => s, conf c) and negative rule
        # (Qv => not s, conf 1-c) assert the same constraint; mixing the
        # full universes must not duplicate.
        bound = TopKBound(rules.n_positive, rules.n_negative)
        selected = bound.select(rules)
        keys = {
            (tuple(sorted(r.antecedent.items())), r.sa_value) for r in selected
        }
        assert len(keys) == len(selected)

    def test_total(self):
        assert TopKBound(30, 12).total == 42

    def test_describe(self):
        assert TopKBound(3, 4).describe() == "Top-(3+, 4-)"
        assert "epsilon" in TopKBound(3, 4, epsilon=0.1).describe()


class TestStatements:
    def test_exact_statements(self, rules):
        statements = TopKBound(2, 2).statements(rules)
        assert all(isinstance(s, ConditionalProbability) for s in statements)

    def test_epsilon_makes_intervals(self, rules):
        statements = TopKBound(2, 2, epsilon=0.05).statements(rules)
        assert all(isinstance(s, ConditionalInterval) for s in statements)
        for statement in statements:
            assert statement.high - statement.low <= 0.1 + 1e-12

    def test_negative_rule_statement_complements(self, rules):
        bound = TopKBound(0, 1)
        (statement,) = bound.statements(rules)
        rule = rules.negative[0]
        assert statement.probability == pytest.approx(1.0 - rule.confidence)


class TestValidation:
    def test_negative_k_rejected(self):
        with pytest.raises(Exception):
            TopKBound(-1, 0)

    def test_negative_epsilon_rejected(self):
        with pytest.raises(KnowledgeError):
            TopKBound(1, 1, epsilon=-0.1)
