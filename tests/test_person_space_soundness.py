"""Soundness of the Section 6 person-level invariants.

The paper omits the derivation details ("the derivation process is
similar... we omit the details"); these tests supply the missing assurance:
the *true* person-level assignment — each pseudonym standing for the actual
record occupying its slot — satisfies every person/slot/SA row, on the
running example and on randomized instances.
"""

import numpy as np
import pytest

from repro.data.paper_example import RECORDS, paper_published, paper_table
from repro.knowledge.individuals import PseudonymTable
from repro.maxent.constraints import data_constraints
from repro.maxent.indexing import PersonVariableSpace

from tests.helpers import random_published


def empirical_person_vector(table, published, bucket_of_row):
    """The truth as a person-space joint: pseudonym k of QI group q is the
    k-th occurrence of q in row order, carrying its real (s, b)."""
    pseudonyms = PseudonymTable(published)
    space = PersonVariableSpace(pseudonyms)
    qi = table.qi_tuples()
    sa = table.sa_labels()
    seen: dict[tuple, int] = {}
    p = np.zeros(space.n_vars)
    n = table.n_rows
    for row in range(n):
        q = qi[row]
        index = seen.get(q, 0)
        seen[q] = index + 1
        person = pseudonyms.of_qi(q)[index]
        var = space.index_of(person, sa[row], int(bucket_of_row[row]))
        assert var >= 0, "the true placement must be a valid variable"
        p[var] = 1.0 / n
    return space, p


class TestPaperExample:
    def test_true_assignment_feasible(self):
        table = paper_table()
        published = paper_published()
        bucket_of_row = [bucket for *_r, bucket in RECORDS]
        space, p = empirical_person_vector(table, published, bucket_of_row)
        system = data_constraints(space)
        assert system.residual(p) < 1e-12

    def test_total_mass_one(self):
        table = paper_table()
        published = paper_published()
        bucket_of_row = [bucket for *_r, bucket in RECORDS]
        _space, p = empirical_person_vector(table, published, bucket_of_row)
        assert p.sum() == pytest.approx(1.0)


class TestRandomizedInstances:
    def test_true_assignment_always_feasible(self):
        rng = np.random.default_rng(42)
        for _ in range(15):
            table, published, bucket_of_row = random_published(
                rng, n_buckets=3, max_bucket_size=4
            )
            space, p = empirical_person_vector(
                table, published, bucket_of_row
            )
            system = data_constraints(space)
            assert system.residual(p) < 1e-12

    def test_maxent_entropy_dominates_truth(self):
        """The person-space MaxEnt solution has entropy >= the true
        (deterministic) assignment's entropy — sanity of the objective."""
        from repro.maxent.solver import MaxEntConfig, solve_maxent
        from repro.utils.probability import entropy

        rng = np.random.default_rng(7)
        table, published, bucket_of_row = random_published(
            rng, n_buckets=2, max_bucket_size=3
        )
        space, truth = empirical_person_vector(table, published, bucket_of_row)
        system = data_constraints(space)
        solution = solve_maxent(space, system, MaxEntConfig(tol=1e-8))
        assert solution.entropy() >= entropy(truth) - 1e-9
