"""Canonical fingerprint semantics: what must and must not change the key."""

import numpy as np
import pytest

from repro.engine.fingerprint import (
    component_fingerprint,
    fingerprint_system,
    structure_fingerprint,
)
from repro.maxent.constraints import ConstraintSystem


def build_system(rows, n_vars=6, inequalities=()):
    system = ConstraintSystem(n_vars)
    for indices, coefficients, rhs in rows:
        system.add_equality(indices, coefficients, rhs, kind="qi")
    for indices, coefficients, rhs in inequalities:
        system.add_inequality(indices, coefficients, rhs, kind="bk")
    return system


ROWS = [
    ([0, 1, 2], [1.0, 1.0, 1.0], 0.5),
    ([3, 4], [1.0, 2.0], 0.25),
    ([1, 3, 5], [0.5, -1.0, 1.0], 0.1),
]


class TestCanonicalization:
    def test_row_permutation_is_invariant(self):
        base = build_system(ROWS)
        permuted = build_system([ROWS[2], ROWS[0], ROWS[1]])
        assert fingerprint_system(base) == fingerprint_system(permuted)

    def test_within_row_index_order_is_invariant(self):
        base = build_system([([0, 1, 2], [1.0, 2.0, 3.0], 0.5)])
        shuffled = build_system([([2, 0, 1], [3.0, 1.0, 2.0], 0.5)])
        assert fingerprint_system(base) == fingerprint_system(shuffled)

    def test_kind_and_label_are_ignored(self):
        a = ConstraintSystem(4)
        a.add_equality([0, 1], [1.0, 1.0], 0.5, kind="qi", label="one")
        b = ConstraintSystem(4)
        b.add_equality([0, 1], [1.0, 1.0], 0.5, kind="bk", label="two")
        assert fingerprint_system(a) == fingerprint_system(b)

    def test_family_is_not_ignored(self):
        eq = build_system([([0, 1], [1.0, 1.0], 0.5)], n_vars=4)
        ineq = build_system(
            [], n_vars=4, inequalities=[([0, 1], [1.0, 1.0], 0.5)]
        )
        assert fingerprint_system(eq) != fingerprint_system(ineq)


class TestSensitivity:
    def test_rhs_changes_the_key(self):
        base = build_system(ROWS)
        changed = build_system(
            [ROWS[0], (ROWS[1][0], ROWS[1][1], 0.26), ROWS[2]]
        )
        assert fingerprint_system(base) != fingerprint_system(changed)

    def test_coefficient_changes_the_key(self):
        base = build_system(ROWS)
        changed = build_system(
            [ROWS[0], ([3, 4], [1.0, 2.0000001], 0.25), ROWS[2]]
        )
        assert fingerprint_system(base) != fingerprint_system(changed)

    def test_mass_changes_the_key(self):
        system = build_system(ROWS)
        assert fingerprint_system(system, 1.0) != fingerprint_system(system, 0.5)

    def test_n_vars_changes_the_key(self):
        assert fingerprint_system(build_system(ROWS, 6)) != fingerprint_system(
            build_system(ROWS, 7)
        )

    def test_extra_row_changes_the_key(self):
        assert fingerprint_system(build_system(ROWS)) != fingerprint_system(
            build_system(ROWS + [([0], [1.0], 0.1)])
        )


class TestStructureFingerprint:
    def test_ignores_rhs_and_mass(self):
        base = build_system(ROWS)
        changed = build_system(
            [(i, c, rhs + 0.01) for i, c, rhs in ROWS]
        )
        assert structure_fingerprint(base) == structure_fingerprint(changed)

    def test_sensitive_to_rows(self):
        assert structure_fingerprint(build_system(ROWS)) != structure_fingerprint(
            build_system(ROWS[:2])
        )


class TestComponentFingerprint:
    def test_solve_key_separates_entries(self):
        system = build_system(ROWS)
        assert component_fingerprint(
            system, 1.0, ("lbfgs", True, 1e-6, 1000)
        ) != component_fingerprint(system, 1.0, ("gis", True, 1e-6, 1000))

    def test_deterministic_across_builds(self):
        assert component_fingerprint(
            build_system(ROWS), 1.0, ("lbfgs",)
        ) == component_fingerprint(build_system(ROWS), 1.0, ("lbfgs",))
