"""Prometheus exposition rendering and the structured log formatters."""

from __future__ import annotations

import io
import json
import logging
import math

import pytest

from repro.obs.logging import configure_logging, get_logger
from repro.obs.metrics import MetricsBuilder, parse_exposition
from repro.obs.trace import get_tracer


class TestMetricsBuilder:
    def test_counter_and_gauge_render(self):
        builder = MetricsBuilder()
        builder.counter("requests_total", 7, help_text="All requests.")
        builder.gauge("queue_depth", 2.5)
        text = builder.render()
        assert "# HELP repro_requests_total All requests." in text
        assert "# TYPE repro_requests_total counter" in text
        assert "repro_requests_total 7" in text
        assert "repro_queue_depth 2.5" in text

    def test_help_and_type_emitted_once_across_label_sets(self):
        builder = MetricsBuilder()
        builder.counter("solves_total", 1, {"shard": "a"}, help_text="x")
        builder.counter("solves_total", 2, {"shard": "b"}, help_text="x")
        text = builder.render()
        assert text.count("# TYPE repro_solves_total counter") == 1
        assert text.count("# HELP repro_solves_total") == 1

    def test_label_escaping(self):
        builder = MetricsBuilder()
        builder.gauge("g", 1, {"path": 'a"b\\c\nd'})
        parsed = parse_exposition(builder.render())
        assert parsed["repro_g"] == [({"path": 'a"b\\c\nd'}, 1.0)]

    def test_histogram_renders_cumulative_buckets(self):
        builder = MetricsBuilder()
        builder.histogram(
            "latency_seconds",
            bounds=(0.1, 1.0),
            bucket_counts=[3, 2, 1],  # last entry: overflow (> 1.0)
            total_sum=2.25,
            labels={"endpoint": "solve"},
        )
        parsed = parse_exposition(builder.render())
        buckets = {
            labels["le"]: value
            for labels, value in parsed["repro_latency_seconds_bucket"]
        }
        assert buckets == {"0.1": 3.0, "1": 5.0, "+Inf": 6.0}
        assert parsed["repro_latency_seconds_count"] == [
            ({"endpoint": "solve"}, 6.0)
        ]
        assert parsed["repro_latency_seconds_sum"] == [
            ({"endpoint": "solve"}, 2.25)
        ]

    def test_histogram_bucket_count_mismatch_raises(self):
        builder = MetricsBuilder()
        with pytest.raises(ValueError, match="bucket"):
            builder.histogram("h", bounds=(1.0,), bucket_counts=[1], total_sum=0)

    def test_empty_builder_renders_empty(self):
        assert MetricsBuilder().render() == ""

    def test_special_values(self):
        builder = MetricsBuilder()
        builder.gauge("inf", math.inf)
        builder.gauge("neg", -math.inf)
        parsed = parse_exposition(builder.render())
        assert parsed["repro_inf"] == [({}, math.inf)]
        assert parsed["repro_neg"] == [({}, -math.inf)]


class TestParseExposition:
    def test_rejects_arbitrary_comments(self):
        with pytest.raises(ValueError, match="comment"):
            parse_exposition("# just chatting 1\n")

    def test_rejects_unterminated_labels(self):
        with pytest.raises(ValueError):
            parse_exposition('m{key="open 1\n')

    def test_rejects_malformed_names(self):
        with pytest.raises(ValueError, match="name"):
            parse_exposition("bad name here 1\n")


class TestStructuredLogging:
    def _logged(self, log_format: str, emit) -> str:
        stream = io.StringIO()
        configure_logging(log_format, level="DEBUG", stream=stream)
        try:
            emit(get_logger("test"))
        finally:
            configure_logging("text")  # restore the default handler
        return stream.getvalue()

    def test_json_lines_with_fields(self):
        out = self._logged(
            "json",
            lambda log: log.info(
                "solved", extra={"fields": {"release_id": "rel-1"}}
            ),
        )
        record = json.loads(out)
        assert record["message"] == "solved"
        assert record["release_id"] == "rel-1"
        assert record["level"] == "info"
        assert record["logger"] == "repro.test"
        assert record["ts"].endswith("Z")

    def test_json_records_carry_the_active_trace(self):
        tracer = get_tracer()
        was_enabled = tracer.enabled
        tracer.set_enabled(True)
        try:
            def emit(log):
                with tracer.span("logging-span") as span:
                    log.info("inside")
                    emit.expected = span.trace_id

            out = self._logged("json", emit)
        finally:
            tracer.set_enabled(was_enabled)
            tracer.reset()
        record = json.loads(out)
        assert record["trace_id"] == emit.expected

    def test_text_format_appends_fields(self):
        out = self._logged(
            "text",
            lambda log: log.warning("slow", extra={"fields": {"ms": 12}}),
        )
        assert "WARNING" in out and "slow" in out and "ms=12" in out

    def test_exceptions_are_formatted(self):
        def emit(log):
            try:
                raise RuntimeError("kaboom")
            except RuntimeError:
                log.exception("failed")

        out = self._logged("json", emit)
        assert "kaboom" in json.loads(out)["exception"]

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError, match="format"):
            configure_logging("xml")

    def test_configure_is_idempotent(self):
        stream = io.StringIO()
        configure_logging("text", stream=stream)
        root = configure_logging("text", stream=stream)
        try:
            assert len(root.handlers) == 1
            assert root.propagate is False
        finally:
            configure_logging("text")

    def test_get_logger_prefixes_names(self):
        assert get_logger("engine").name == "repro.engine"
        assert get_logger("repro.engine").name == "repro.engine"
        assert get_logger().name == "repro"
        assert isinstance(get_logger("x"), logging.Logger)
