"""Unit tests for the bucketized-table model and assignment enumeration."""

from collections import Counter

import numpy as np
import pytest

from repro.anonymize.buckets import (
    Bucket,
    BucketizedTable,
    assignment_joint_counts,
    enumerate_assignments,
)
from repro.data.paper_example import Q1, Q2, Q3, paper_published, paper_table
from repro.errors import AnonymizationError


class TestBucket:
    def test_counts_preserve_multiplicity(self):
        bucket = Bucket(
            index=0,
            qi_tuples=(Q1, Q1, Q2),
            sa_values=("Flu", "Flu", "HIV"),
        )
        assert bucket.qi_counts()[Q1] == 2
        assert bucket.sa_counts()["Flu"] == 2
        assert bucket.size == 3

    def test_distinct_preserves_order(self):
        bucket = Bucket(
            index=0, qi_tuples=(Q2, Q1, Q2), sa_values=("a", "b", "a")
        )
        assert bucket.distinct_qi() == (Q2, Q1)
        assert bucket.distinct_sa() == ("a", "b")

    def test_length_mismatch_rejected(self):
        with pytest.raises(AnonymizationError):
            Bucket(index=0, qi_tuples=(Q1,), sa_values=("a", "b"))

    def test_empty_rejected(self):
        with pytest.raises(AnonymizationError):
            Bucket(index=0, qi_tuples=(), sa_values=())


class TestBucketizedTable:
    def test_paper_example_shape(self):
        published = paper_published()
        assert published.n_buckets == 3
        assert published.n_records == 10
        assert published.bucket(0).size == 4
        assert published.bucket(1).size == 3
        assert published.bucket(2).size == 3

    def test_qi_marginal_matches_paper(self):
        published = paper_published()
        marginal = published.qi_marginal()
        assert marginal[Q1] == 3  # q1 appears three times in the data
        assert marginal[Q2] == 2

    def test_qv_count_partial_match(self):
        published = paper_published()
        # P(male) = 6/10 in the paper's Section 4.1 example.
        assert published.qv_count({"gender": "male"}) == 6
        assert published.qv_count({"gender": "female", "degree": "college"}) == 2

    def test_sa_marginal(self):
        published = paper_published()
        marginal = published.sa_marginal()
        assert marginal["Flu"] == 3
        assert marginal["Breast Cancer"] == 2
        assert sum(marginal.values()) == 10

    def test_bucket_out_of_range(self):
        with pytest.raises(AnonymizationError):
            paper_published().bucket(17)

    def test_from_assignment_requires_contiguous_ids(self):
        table = paper_table()
        ids = np.zeros(table.n_rows, dtype=np.int64)
        ids[0] = 2  # gap: bucket 1 missing
        with pytest.raises(AnonymizationError):
            BucketizedTable.from_assignment(table, ids)

    def test_from_assignment_requires_full_cover(self):
        table = paper_table()
        with pytest.raises(AnonymizationError):
            BucketizedTable.from_assignment(table, np.zeros(3, dtype=np.int64))

    def test_non_sequential_bucket_construction_rejected(self):
        bucket = Bucket(index=1, qi_tuples=(Q1,), sa_values=("Flu",))
        with pytest.raises(AnonymizationError):
            BucketizedTable(paper_table().schema, [bucket])


class TestEnumerateAssignments:
    def test_figure2_count(self):
        """Figure 2's bucket (q1, q1, q2, q3 with SA bag s1,s2,s2,s3).

        Slots: 4.  SA multiset has 4!/2! = 12 orderings, but the two q1
        slots are interchangeable; orderings differing only by swapping the
        q1 slots coincide.  Distinct assignments: 12 total orderings, those
        with equal values on the q1 pair stay distinct once... enumerate and
        check against a brute-force set instead of trusting arithmetic.
        """
        bucket = paper_published().bucket(0)
        assignments = list(enumerate_assignments(bucket))
        # Brute force over all permutations, canonicalized.
        from itertools import permutations

        slots = sorted(bucket.qi_tuples)
        seen = set()
        for perm in set(permutations(bucket.sa_values)):
            seen.add(frozenset(Counter(zip(slots, perm)).items()))
        assert len(assignments) == len(seen)
        produced = {
            frozenset(Counter(a).items()) for a in assignments
        }
        assert produced == seen

    def test_each_assignment_uses_sa_bag_exactly(self):
        bucket = paper_published().bucket(0)
        for assignment in enumerate_assignments(bucket):
            values = Counter(s for _q, s in assignment)
            assert values == bucket.sa_counts()

    def test_single_record_bucket(self):
        bucket = Bucket(index=0, qi_tuples=(Q3,), sa_values=("Flu",))
        assignments = list(enumerate_assignments(bucket))
        assert assignments == [((Q3, "Flu"),)]

    def test_joint_counts_helper(self):
        assignment = ((Q1, "Flu"), (Q1, "Flu"), (Q2, "HIV"))
        counts = assignment_joint_counts(assignment)
        assert counts[(Q1, "Flu")] == 2
        assert counts[(Q2, "HIV")] == 1
