"""Old-vs-new equivalence: row-wise reference vs array-native pipeline.

The array-native construction pipeline (grouped invariant build, csgraph
decomposition, one-pass CSR fingerprinting) must be *indistinguishable*
from the historical row-wise path: identical systems row by row, identical
canonical fingerprints (bit-for-bit — persisted solve caches survive the
rewrite), identical component partitions, and identical posteriors.  The
row-wise reference lives in :mod:`repro.maxent.legacy`.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.quantifier import PosteriorTable
from repro.data.paper_example import paper_published
from repro.engine.component import solve_component
from repro.engine.fingerprint import fingerprint_system, structure_fingerprint
from repro.maxent.closed_form import closed_form_batch
from repro.experiments.workloads import build_adult_workload
from repro.knowledge.bounds import TopKBound
from repro.knowledge.compiler import compile_statements
from repro.knowledge.individuals import PseudonymTable
from repro.maxent import legacy
from repro.maxent.config import MaxEntConfig
from repro.maxent.constraints import ConstraintSystem, data_constraints
from repro.maxent.decompose import decompose, drop_redundant_data_rows
from repro.maxent.indexing import GroupVariableSpace, PersonVariableSpace


@pytest.fixture(scope="module")
def paper_space():
    return GroupVariableSpace(paper_published())


@pytest.fixture(scope="module")
def person_space():
    return PersonVariableSpace(PseudonymTable(paper_published()))


@pytest.fixture(scope="module")
def adult():
    workload = build_adult_workload(n_records=400, max_antecedent=2)
    space = GroupVariableSpace(workload.published)
    statements = TopKBound(10, 10).statements(workload.rules)
    return space, statements


def build_systems(space, statements=()):
    """(array-native, row-wise) full systems over the same space."""
    new = data_constraints(space)
    old = legacy.data_constraints_rowwise(space)
    if statements:
        knowledge = compile_statements(list(statements), space)
        new.extend(knowledge)
        old.extend(knowledge)
    return new, old


def assert_rows_identical(new, old):
    assert new.n_vars == old.n_vars
    assert new.n_equalities == old.n_equalities
    assert new.n_inequalities == old.n_inequalities
    for family in ("equalities", "inequalities"):
        for a, b in zip(getattr(new, family), getattr(old, family)):
            assert np.array_equal(a.indices, b.indices), (a.label, b.label)
            assert np.array_equal(a.coefficients, b.coefficients)
            assert a.rhs == b.rhs
            assert a.kind == b.kind
            assert a.label == b.label


def assert_partitions_identical(space, new_components, old_components):
    assert len(new_components) == len(old_components)
    by_buckets = lambda c: c.buckets  # noqa: E731
    for a, b in zip(
        sorted(new_components, key=by_buckets),
        sorted(old_components, key=by_buckets),
    ):
        assert a.buckets == b.buckets
        assert np.array_equal(a.var_indices, b.var_indices)
        assert a.mass == b.mass  # bit-identical: same summation order
        assert a.knowledge_rows == b.knowledge_rows
        assert a.inequality_rows == b.inequality_rows
        assert fingerprint_system(a.system, a.mass) == fingerprint_system(
            b.system, b.mass
        )


class TestDataConstraints:
    def test_paper_group_rows_identical(self, paper_space):
        assert_rows_identical(*build_systems(paper_space))

    def test_paper_person_rows_identical(self, person_space):
        assert_rows_identical(*build_systems(person_space))

    def test_adult_rows_identical(self, adult):
        space, _ = adult
        assert_rows_identical(*build_systems(space))


class TestFingerprints:
    """Both paths, both encoders — four ways to the same digest."""

    def test_paper_group(self, paper_space):
        new, old = build_systems(paper_space)
        digests = {
            fingerprint_system(new),
            fingerprint_system(old),
            legacy.fingerprint_system_rowwise(new),
            legacy.fingerprint_system_rowwise(old),
        }
        assert len(digests) == 1

    def test_paper_person(self, person_space):
        new, old = build_systems(person_space)
        assert fingerprint_system(new) == legacy.fingerprint_system_rowwise(
            old
        )

    def test_adult_with_knowledge(self, adult):
        space, statements = adult
        new, old = build_systems(space, statements)
        assert fingerprint_system(new) == legacy.fingerprint_system_rowwise(
            old
        )
        assert structure_fingerprint(new) == structure_fingerprint(old)

    def test_drop_redundant_matches(self, adult):
        space, _ = adult
        new, old = build_systems(space)
        a = drop_redundant_data_rows(space, new)
        b = legacy.drop_redundant_data_rows_rowwise(space, old)
        assert_rows_identical(a, b)
        assert fingerprint_system(a) == legacy.fingerprint_system_rowwise(b)


class TestDecomposition:
    def test_paper_group_partition(self, paper_space):
        new, old = build_systems(paper_space)
        assert_partitions_identical(
            paper_space,
            decompose(paper_space, new),
            legacy.decompose_rowwise(paper_space, old),
        )

    def test_paper_person_partition(self, person_space):
        new, old = build_systems(person_space)
        assert_partitions_identical(
            person_space,
            decompose(person_space, new),
            legacy.decompose_rowwise(person_space, old),
        )

    def test_adult_partition_with_knowledge(self, adult):
        space, statements = adult
        new, old = build_systems(space, statements)
        assert_partitions_identical(
            space,
            decompose(space, new),
            legacy.decompose_rowwise(space, old),
        )

    def test_disabled_single_component(self, adult):
        space, statements = adult
        new, old = build_systems(space, statements)
        assert_partitions_identical(
            space,
            decompose(space, new, enabled=False),
            legacy.decompose_rowwise(space, old, enabled=False),
        )


class TestPosteriors:
    """End-to-end: solving the row-wise pipeline's components reproduces
    the array-native engine's posterior to 1e-10."""

    @pytest.mark.parametrize("with_knowledge", [False, True])
    def test_adult_posterior(self, adult, with_knowledge):
        space, statements = adult
        statements = statements if with_knowledge else ()
        new, old = build_systems(space, statements)
        config = MaxEntConfig(cache_size=0, raise_on_infeasible=False)

        from repro.engine.engine import PrivacyEngine

        with PrivacyEngine(cache_size=0) as engine:
            solution = engine.solve(space, new, config)

        p_old = np.zeros(space.n_vars)
        for component in legacy.decompose_rowwise(space, old):
            if component.is_irrelevant:
                # Mirror the engine's Theorem 5 classification so both
                # paths take the same closed form on irrelevant buckets.
                p_old[component.var_indices] = closed_form_batch(
                    space, component.var_indices
                )
            else:
                result = solve_component(component, config)
                p_old[component.var_indices] = result.p

        np.testing.assert_allclose(solution.p, p_old, atol=1e-10)
        new_posterior = PosteriorTable.from_solution(solution)
        assert new_posterior.matrix == pytest.approx(
            PosteriorTable.from_solution(
                type(solution)(space, p_old, solution.stats)
            ).matrix,
            abs=1e-10,
        )

    def test_paper_person_posterior(self, person_space):
        new, old = build_systems(person_space)
        config = MaxEntConfig(cache_size=0)

        from repro.engine.engine import PrivacyEngine

        with PrivacyEngine(cache_size=0) as engine:
            solution = engine.solve(person_space, new, config)

        p_old = np.zeros(person_space.n_vars)
        for component in legacy.decompose_rowwise(person_space, old):
            result = solve_component(component, config)
            p_old[component.var_indices] = result.p
        np.testing.assert_allclose(solution.p, p_old, atol=1e-10)


@st.composite
def row_blocks(draw):
    """Random CSR row blocks over a small variable space."""
    n_vars = draw(st.integers(min_value=1, max_value=12))
    n_rows = draw(st.integers(min_value=0, max_value=6))
    rows = []
    for _ in range(n_rows):
        size = draw(st.integers(min_value=1, max_value=n_vars))
        indices = draw(
            st.permutations(range(n_vars)).map(lambda p: list(p)[:size])
        )
        coefficients = draw(
            st.lists(
                st.floats(
                    min_value=-8, max_value=8, allow_nan=False, width=32
                ),
                min_size=size,
                max_size=size,
            )
        )
        rhs = draw(
            st.floats(min_value=-4, max_value=4, allow_nan=False, width=32)
        )
        kind = draw(st.sampled_from(["qi", "sa", "bk", "custom"]))
        rows.append((indices, coefficients, rhs, kind))
    return n_vars, rows


class TestBatchAppendProperty:
    @given(row_blocks())
    @settings(max_examples=60, deadline=None)
    def test_batch_equals_per_row(self, block):
        """Batch append and per-row append produce bit-identical CSR."""
        n_vars, rows = block

        per_row = ConstraintSystem(n_vars)
        for indices, coefficients, rhs, kind in rows:
            per_row.add_equality(indices, coefficients, rhs, kind=kind)

        batched = ConstraintSystem(n_vars)
        if rows:
            lengths = np.array([len(r[0]) for r in rows], dtype=np.int64)
            indptr = np.zeros(lengths.size + 1, dtype=np.int64)
            np.cumsum(lengths, out=indptr[1:])
            batched.add_equalities(
                indptr,
                np.concatenate(
                    [np.asarray(r[0], dtype=np.int64) for r in rows]
                ),
                np.concatenate([np.asarray(r[1], float) for r in rows]),
                np.array([r[2] for r in rows]),
                kinds=[r[3] for r in rows],
            )

        a, c_a = per_row.equality_matrix()
        b, c_b = batched.equality_matrix()
        assert a.shape == b.shape
        assert np.array_equal(a.indptr, b.indptr)
        assert np.array_equal(a.indices, b.indices)
        assert np.array_equal(a.data, b.data)
        assert np.array_equal(c_a, c_b)
        assert fingerprint_system(per_row) == fingerprint_system(batched)
        # Auto-generated labels and kinds also line up row for row.
        assert [r.label for r in per_row.equalities] == [
            r.label for r in batched.equalities
        ]
        assert [r.kind for r in per_row.equalities] == [
            r.kind for r in batched.equalities
        ]


class TestKindInternPickling:
    """Kind codes index a process-local table; pickles must survive a
    receiving process whose table is empty or differently ordered (spawn
    pool workers, forked workers predating a kind's first interning)."""

    def test_roundtrip_with_foreign_intern_table(self):
        import pickle

        from repro.maxent import constraints as c

        system = ConstraintSystem(4)
        system.add_equality([0, 1], [1.0, 1.0], 0.5, kind="qi")
        system.add_equality([2], [1.0], 0.25, kind="pickle-test-kind")
        system.add_inequality([3], [1.0], 0.75, kind="bk")
        payload = pickle.dumps(system)

        saved_codes, saved_names = dict(c._KIND_CODES), list(c._KIND_NAMES)
        try:
            # Simulate a fresh worker process: empty intern table, then
            # pre-intern unrelated kinds so the code assignment differs.
            c._KIND_CODES.clear()
            c._KIND_NAMES.clear()
            c.kind_code("unrelated-a")
            c.kind_code("unrelated-b")
            restored = pickle.loads(payload)
            assert [r.kind for r in restored.equalities] == [
                "qi",
                "pickle-test-kind",
            ]
            assert [r.kind for r in restored.inequalities] == ["bk"]
            assert len(restored.rows_of_kind("qi")) == 1
        finally:
            c._KIND_CODES.clear()
            c._KIND_CODES.update(saved_codes)
            c._KIND_NAMES.clear()
            c._KIND_NAMES.extend(saved_names)

    def test_component_roundtrip_preserves_fingerprint(self, paper_space):
        import pickle

        system = data_constraints(paper_space)
        component = decompose(paper_space, system)[0]
        clone = pickle.loads(pickle.dumps(component))
        assert fingerprint_system(
            clone.system, clone.mass
        ) == fingerprint_system(component.system, component.mass)
        assert [r.kind for r in clone.system.equalities] == [
            r.kind for r in component.system.equalities
        ]


class TestConstructionTelemetry:
    """The new SolverStats phase timers flow through engine.stats()."""

    def test_phase_timers_populated(self, paper_space):
        from repro.engine.engine import PrivacyEngine

        system = data_constraints(paper_space)
        with PrivacyEngine() as engine:
            solution = engine.solve(
                paper_space, system, MaxEntConfig(), build_seconds=0.125
            )
            stats = engine.stats()
        assert solution.stats.build_seconds == 0.125
        assert solution.stats.decompose_seconds > 0.0
        assert solution.stats.fingerprint_seconds >= 0.0
        assert stats["build_seconds"] == 0.125
        assert stats["decompose_seconds"] > 0.0
        assert "fingerprint_seconds" in stats
