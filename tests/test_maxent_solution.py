"""Direct unit tests for solution containers and solver statistics."""

import numpy as np
import pytest

from repro.data.paper_example import paper_published
from repro.maxent.closed_form import closed_form_solution
from repro.maxent.indexing import GroupVariableSpace
from repro.maxent.solution import ComponentRecord, MaxEntSolution, SolverStats


@pytest.fixture(scope="module")
def space():
    return GroupVariableSpace(paper_published())


def stats(**overrides):
    base = dict(
        solver="lbfgs",
        iterations=10,
        seconds=0.5,
        n_vars=27,
        n_equalities=18,
        n_inequalities=0,
        eq_residual=1e-9,
        ineq_residual=0.0,
        converged=True,
    )
    base.update(overrides)
    return SolverStats(**base)


class TestSolverStats:
    def test_residual_is_worst_of_both(self):
        record = stats(eq_residual=1e-9, ineq_residual=5e-8)
        assert record.residual == 5e-8

    def test_defaults(self):
        record = stats()
        assert record.n_components == 1
        assert record.presolve_fixed == 0
        assert record.message == ""


class TestMaxEntSolution:
    def test_shape_validated(self, space):
        with pytest.raises(ValueError):
            MaxEntSolution(space, np.zeros(5), stats())

    def test_vector_read_only(self, space):
        solution = MaxEntSolution(space, closed_form_solution(space), stats())
        with pytest.raises(ValueError):
            solution.p[0] = 1.0

    def test_entropy_positive(self, space):
        solution = MaxEntSolution(space, closed_form_solution(space), stats())
        assert solution.entropy() > 0

    def test_component_records(self, space):
        record = ComponentRecord(buckets=(0, 1), stats=stats())
        solution = MaxEntSolution(
            space, closed_form_solution(space), stats(), [record]
        )
        assert solution.components[0].buckets == (0, 1)

    def test_repr_mentions_solver(self, space):
        solution = MaxEntSolution(space, closed_form_solution(space), stats())
        assert "lbfgs" in repr(solution)
