"""Tests for the Newton-CG dual solver."""

import numpy as np
import pytest

from repro.data.paper_example import paper_published
from repro.errors import NotSupportedError, ReproError
from repro.knowledge.compiler import compile_statements
from repro.knowledge.statements import ConditionalInterval, ConditionalProbability
from repro.maxent.constraints import data_constraints
from repro.maxent.dual import build_dual
from repro.maxent.indexing import GroupVariableSpace
from repro.maxent.lbfgs import solve_dual_lbfgs
from repro.maxent.newton import solve_dual_newton
from repro.maxent.solver import MaxEntConfig, solve_maxent


@pytest.fixture(scope="module")
def space():
    return GroupVariableSpace(paper_published())


@pytest.fixture(scope="module")
def system(space):
    system = data_constraints(space)
    system.extend(
        compile_statements(
            [
                ConditionalProbability(
                    given={"gender": "male"}, sa_value="Flu", probability=0.3
                )
            ],
            space,
        )
    )
    return system


class TestNewtonSolver:
    def test_agrees_with_lbfgs(self, system):
        lbfgs = solve_dual_lbfgs(build_dual(system, 1.0), tol=1e-9)
        newton = solve_dual_newton(build_dual(system, 1.0), tol=1e-6)
        assert newton.converged
        assert np.abs(newton.p - lbfgs.p).max() < 1e-6

    def test_far_fewer_iterations_than_lbfgs(self, system):
        lbfgs = solve_dual_lbfgs(build_dual(system, 1.0), tol=1e-9)
        newton = solve_dual_newton(build_dual(system, 1.0), tol=1e-9)
        assert newton.iterations < lbfgs.iterations

    def test_rejects_inequalities(self, space):
        system = data_constraints(space)
        system.extend(
            compile_statements(
                [
                    ConditionalInterval(
                        given={"gender": "male"},
                        sa_value="Flu",
                        low=0.2,
                        high=0.4,
                    )
                ],
                space,
            )
        )
        with pytest.raises(NotSupportedError):
            solve_dual_newton(build_dual(system, 1.0))

    def test_hess_vec_matches_finite_differences(self, system):
        dual = build_dual(system, 1.0)
        rng = np.random.default_rng(0)
        x = rng.standard_normal(dual.n_params) * 0.1
        v = rng.standard_normal(dual.n_params)
        epsilon = 1e-6
        _f1, g_plus = dual.value_and_grad(x + epsilon * v)
        _f2, g_minus = dual.value_and_grad(x - epsilon * v)
        numeric = (g_plus - g_minus) / (2 * epsilon)
        # Gradient of the dual is c - R p(theta) with theta = -R^T x; the
        # two sign flips cancel, so hess_vec is the Hessian itself
        # (positive semidefinite, as convexity requires).
        analytic = dual.hess_vec(x, v)
        assert np.abs(numeric - analytic).max() < 1e-5 * max(
            1.0, np.abs(analytic).max()
        )
        # PSD spot-check: v' H v >= 0.
        assert float(v @ analytic) >= -1e-12


class TestFacadeIntegration:
    def test_solver_name_accepted(self, space, system):
        solution = solve_maxent(
            space, system, MaxEntConfig(solver="newton", tol=1e-8)
        )
        reference = solve_maxent(space, system, MaxEntConfig(tol=1e-8))
        assert np.abs(solution.p - reference.p).max() < 1e-6

    def test_unknown_solver_still_rejected(self):
        with pytest.raises(ReproError):
            MaxEntConfig(solver="quantum")
