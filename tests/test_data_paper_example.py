"""Tests for the paper-example fixture module itself."""

import pytest

from repro.data.paper_example import (
    DISEASES,
    Q1,
    Q2,
    Q3,
    Q4,
    Q5,
    Q6,
    RECORDS,
    S1,
    S2,
    S3,
    S4,
    S5,
    paper_published,
    paper_schema,
    paper_table,
)


class TestFixtureConsistency:
    def test_ten_records(self):
        assert len(RECORDS) == 10
        assert paper_table().n_rows == 10

    def test_schema_roles(self):
        schema = paper_schema()
        assert schema.qi_attributes == ("gender", "degree")
        assert schema.sa_attribute == "disease"
        assert schema.sa.domain == DISEASES

    def test_abstract_symbols_cover_all_qi(self):
        table = paper_table()
        distinct = set(table.qi_tuples())
        assert distinct == {Q1, Q2, Q3, Q4, Q5, Q6}

    def test_abstract_symbols_cover_all_sa(self):
        table = paper_table()
        assert set(table.sa_labels()) == {S1, S2, S3, S4, S5}

    def test_disease_counts(self):
        counts = paper_table().value_counts("disease")
        assert counts[S2] == 3  # Flu: Allen, David, James
        assert counts[S1] == 2  # Breast Cancer: Cathy, Grace
        assert counts[S3] == 2  # Pneumonia: Brian, Frank
        assert counts[S4] == 2  # HIV: Ethan, Helen
        assert counts[S5] == 1  # Lung Cancer: Iris

    def test_bucket_structure(self):
        published = paper_published()
        assert [b.size for b in published.buckets] == [4, 3, 3]

    def test_gender_marginal_matches_section41(self):
        # The Section 4.1 example uses P(male) = 6/10.
        counts = paper_table().value_counts("gender")
        assert counts["male"] == 6
        assert counts["female"] == 4

    def test_fixture_is_fresh_per_call(self):
        # Tables are independent objects (no shared mutable state).
        assert paper_table() is not paper_table()
        assert paper_published() is not paper_published()
