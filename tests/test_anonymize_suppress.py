"""Tests for minimal suppression (the exemption alternative)."""

from collections import Counter

import pytest

from repro.anonymize.anatomy import anatomize
from repro.anonymize.diversity import check_eligibility, table_is_diverse
from repro.anonymize.suppress import plan_suppression, suppress_for_diversity
from repro.errors import DiversityError

from tests.test_anonymize_anatomy import uniform_table


class TestPlanSuppression:
    def test_feasible_input_needs_nothing(self):
        plan = plan_suppression(Counter(a=3, b=3, c=3), 3)
        assert plan.total == 0

    def test_single_dominator_trimmed(self):
        plan = plan_suppression(Counter(a=10, b=2, c=2), 3)
        counts = Counter(a=10, b=2, c=2)
        counts.subtract(plan.to_suppress)
        check_eligibility(counts, 3)  # must not raise
        assert plan.total > 0
        assert set(plan.to_suppress) == {"a"}

    def test_minimality_single_dominator(self):
        # Removing one fewer record must remain infeasible.
        original = Counter(a=10, b=2, c=2)
        plan = plan_suppression(original, 3)
        counts = Counter(original)
        counts.subtract(plan.to_suppress)
        counts["a"] += 1  # undo one suppression
        with pytest.raises(DiversityError):
            check_eligibility(counts, 3)

    def test_hopeless_input_detected(self):
        with pytest.raises(DiversityError, match="below one bucket"):
            plan_suppression(Counter(a=3), 2)

    def test_empty_rejected(self):
        with pytest.raises(DiversityError):
            plan_suppression(Counter(), 2)


class TestSuppressForDiversity:
    def test_output_is_eligible_and_bucketizable(self):
        table = uniform_table({"a": 12, "b": 2, "c": 2})
        reduced, plan = suppress_for_diversity(table, 3, seed=1)
        assert reduced.n_rows == table.n_rows - plan.total
        published = anatomize(reduced, l=3, exempt=None, seed=1)
        assert table_is_diverse(published, 3)

    def test_noop_when_already_feasible(self):
        table = uniform_table({"a": 4, "b": 4, "c": 4})
        reduced, plan = suppress_for_diversity(table, 3)
        assert plan.total == 0
        assert reduced is table

    def test_only_offending_values_dropped(self):
        table = uniform_table({"a": 12, "b": 2, "c": 2})
        reduced, plan = suppress_for_diversity(table, 3, seed=2)
        kept = Counter(reduced.sa_labels())
        assert kept["b"] == 2 and kept["c"] == 2
        assert kept["a"] == 12 - plan.to_suppress["a"]

    def test_deterministic_per_seed(self):
        table = uniform_table({"a": 12, "b": 2, "c": 2})
        first, _p1 = suppress_for_diversity(table, 3, seed=7)
        second, _p2 = suppress_for_diversity(table, 3, seed=7)
        assert first.records() == second.records()
