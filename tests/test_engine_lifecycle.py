"""Tests for engine shutdown hygiene: idempotent close, no worker leaks."""

import logging
import multiprocessing

from repro.core.privacy_maxent import PrivacyMaxEnt
from repro.data.paper_example import S2, paper_published
from repro.engine import (
    PrivacyEngine,
    ProcessExecutor,
    shared_engine,
    shutdown_shared_engines,
)
from repro.knowledge.statements import ConditionalProbability
from repro.maxent.config import MaxEntConfig


def _square(x: int) -> int:
    """Module-level so the process pool can pickle it."""
    return x * x


def alive_worker_pids() -> set[int]:
    return {child.pid for child in multiprocessing.active_children()}


class TestIdempotentClose:
    def test_close_twice_is_safe(self):
        engine = PrivacyEngine()
        engine.close()
        engine.close()
        assert engine.closed

    def test_context_manager_then_close(self):
        with PrivacyEngine(executor="thread", workers=2) as engine:
            PrivacyMaxEnt(
                paper_published(),
                knowledge=[
                    ConditionalProbability(
                        given={"gender": "male"}, sa_value=S2, probability=0.3
                    )
                ],
                engine=engine,
            ).solve()
        engine.close()  # second close after __exit__ must be harmless
        assert engine.closed


class TestNoWorkerLeaks:
    def test_process_pool_workers_die_with_each_lifecycle(self):
        """Repeated engine lifecycles leave no child processes behind."""
        baseline = alive_worker_pids()
        for _cycle in range(3):
            executor = ProcessExecutor(workers=2)
            assert executor.map(_square, [1, 2, 3, 4]) == [1, 4, 9, 16]
            spawned = alive_worker_pids() - baseline
            assert spawned, "the pool should have spawned workers"
            executor.close()
            assert alive_worker_pids() - baseline == set()

    def test_engine_close_tears_down_its_pool(self):
        baseline = alive_worker_pids()
        engine = PrivacyEngine(executor="process", workers=2)
        # Drive the pool through the engine's own executor (a solve with
        # >1 numeric component would do the same, more slowly).
        assert engine._executor.map(_square, [1, 2, 3]) == [1, 4, 9]
        assert alive_worker_pids() - baseline
        engine.close()
        assert alive_worker_pids() - baseline == set()


class TestCloseResilience:
    def test_failed_cache_save_still_tears_down_the_pool(self, tmp_path):
        baseline = alive_worker_pids()
        engine = PrivacyEngine(
            executor="process", workers=2, cache_path=tmp_path / "c.pkl"
        )
        assert engine._executor.map(_square, [1, 2]) == [1, 4]
        engine.cache.put("k", object())  # non-empty so close() tries saving

        def broken_save(path=None):
            raise OSError("disk full")

        engine.save_cache = broken_save
        try:
            engine.close()
        except OSError:
            pass
        assert engine.closed
        assert alive_worker_pids() - baseline == set()

    def test_shutdown_survives_a_failing_engine(self):
        # The failure is reported through the structured `repro.engine`
        # logger (not bare stderr), so capture at the logger itself —
        # immune to whether `configure_logging` disabled propagation.
        messages: list[str] = []
        handler = logging.Handler()
        handler.emit = lambda record: messages.append(record.getMessage())
        log = logging.getLogger("repro.engine")
        log.addHandler(handler)
        try:
            shutdown_shared_engines()
            bad = shared_engine(MaxEntConfig(cache_size=7))
            good = shared_engine(MaxEntConfig(cache_size=9))

            def explode():
                raise RuntimeError("boom")

            bad.close = explode
            assert shutdown_shared_engines() == 2
            assert good.closed
            assert any("close failed" in message for message in messages)
        finally:
            log.removeHandler(handler)


class TestSharedEngineShutdown:
    def test_shutdown_closes_and_forgets(self):
        shutdown_shared_engines()
        first = shared_engine(MaxEntConfig())
        again = shared_engine(MaxEntConfig())
        assert again is first
        closed = shutdown_shared_engines()
        assert closed >= 1
        assert first.closed
        fresh = shared_engine(MaxEntConfig())
        assert fresh is not first
        shutdown_shared_engines()

    def test_shutdown_with_nothing_registered(self):
        shutdown_shared_engines()
        assert shutdown_shared_engines() == 0

    def test_shutdown_kills_shared_process_pools(self):
        shutdown_shared_engines()
        baseline = alive_worker_pids()
        config = MaxEntConfig(executor="process", workers=2)
        engine = shared_engine(config)
        assert engine._executor.map(_square, [5, 6]) == [25, 36]
        assert alive_worker_pids() - baseline
        shutdown_shared_engines()
        assert alive_worker_pids() - baseline == set()
