"""Unit tests for the pseudonym model and individual statements."""

import pytest

from repro.data.paper_example import Q1, Q2, Q4, S1, S4, paper_published
from repro.errors import KnowledgeError
from repro.knowledge.individuals import (
    GroupCount,
    IndividualDisjunction,
    IndividualProbability,
    PseudonymTable,
)


@pytest.fixture(scope="module")
def pseudonyms():
    return PseudonymTable(paper_published())


class TestPseudonymTable:
    def test_one_pseudonym_per_record(self, pseudonyms):
        assert pseudonyms.n_people == 10

    def test_group_sizes_match_multiplicity(self, pseudonyms):
        # q1 occurs 3 times in the whole data (Figure 4: {i1, i2, i3}).
        assert len(pseudonyms.of_qi(Q1)) == 3
        assert len(pseudonyms.of_qi(Q2)) == 2
        assert len(pseudonyms.of_qi(Q4)) == 1

    def test_paper_naming(self, pseudonyms):
        # First-appearance order: q1 gets i1..i3 (Figure 4).
        names = [p.name for p in pseudonyms.of_qi(Q1)]
        assert names == ["i1", "i2", "i3"]

    def test_unique_names(self, pseudonyms):
        names = [p.name for p in pseudonyms.pseudonyms]
        assert len(set(names)) == len(names)

    def test_by_name(self, pseudonyms):
        person = pseudonyms.by_name("i1")
        assert person.qi == Q1
        with pytest.raises(KnowledgeError):
            pseudonyms.by_name("i999")

    def test_assign(self, pseudonyms):
        alice = pseudonyms.assign(Q1)
        bob = pseudonyms.assign(Q1, index=1)
        assert alice.name != bob.name
        with pytest.raises(KnowledgeError):
            pseudonyms.assign(Q1, index=5)

    def test_unknown_qi_rejected(self, pseudonyms):
        with pytest.raises(KnowledgeError):
            pseudonyms.of_qi(("martian", "phd"))


class TestStatements:
    def test_individual_probability_valid(self, pseudonyms):
        alice = pseudonyms.assign(Q1)
        stmt = IndividualProbability(person=alice, sa_value=S1, probability=0.2)
        assert "0.2" in stmt.describe()

    def test_individual_probability_range(self, pseudonyms):
        alice = pseudonyms.assign(Q1)
        with pytest.raises(KnowledgeError):
            IndividualProbability(person=alice, sa_value=S1, probability=1.7)

    def test_disjunction_needs_values(self, pseudonyms):
        alice = pseudonyms.assign(Q1)
        with pytest.raises(KnowledgeError):
            IndividualDisjunction(person=alice, sa_values=())

    def test_disjunction_distinct_values(self, pseudonyms):
        alice = pseudonyms.assign(Q1)
        with pytest.raises(KnowledgeError):
            IndividualDisjunction(person=alice, sa_values=(S1, S1))

    def test_group_count_validation(self, pseudonyms):
        alice = pseudonyms.assign(Q1)
        bob = pseudonyms.assign(Q2)
        GroupCount(persons=(alice, bob), sa_value=S4, count=1)
        with pytest.raises(KnowledgeError):
            GroupCount(persons=(alice, bob), sa_value=S4, count=3)
        with pytest.raises(KnowledgeError):
            GroupCount(persons=(alice, alice), sa_value=S4, count=1)
        with pytest.raises(KnowledgeError):
            GroupCount(persons=(), sa_value=S4, count=1)
