"""Unit tests for probability terms, expressions and equations."""

import pytest

from repro.data.paper_example import Q1, Q2, S1, S2
from repro.errors import KnowledgeError
from repro.knowledge.expressions import (
    LinearEquation,
    ProbabilityExpression,
    ProbabilityTerm,
)


class TestProbabilityTerm:
    def test_equality_and_hash(self):
        a = ProbabilityTerm(Q1, S1, 0)
        b = ProbabilityTerm(Q1, S1, 0)
        assert a == b
        assert hash(a) == hash(b)

    def test_negative_bucket_rejected(self):
        with pytest.raises(KnowledgeError):
            ProbabilityTerm(Q1, S1, -1)

    def test_str(self):
        assert "male" in str(ProbabilityTerm(Q1, S1, 0))


class TestExpressionAlgebra:
    def test_addition_merges_coefficients(self):
        expr = ProbabilityExpression.term(Q1, S1, 0) + ProbabilityExpression.term(
            Q1, S1, 0
        )
        assert expr.coefficient(ProbabilityTerm(Q1, S1, 0)) == 2.0

    def test_subtraction_cancels(self):
        expr = ProbabilityExpression.term(Q1, S1, 0) - ProbabilityExpression.term(
            Q1, S1, 0
        )
        assert expr.is_zero()

    def test_scalar_multiplication(self):
        expr = 3.0 * ProbabilityExpression.term(Q1, S1, 0)
        assert expr.coefficient(ProbabilityTerm(Q1, S1, 0)) == 3.0

    def test_zero_coefficients_dropped(self):
        expr = ProbabilityExpression({ProbabilityTerm(Q1, S1, 0): 0.0})
        assert expr.is_zero()
        assert expr.terms == ()

    def test_equality_semantic(self):
        a = ProbabilityExpression.term(Q1, S1, 0) + ProbabilityExpression.term(
            Q2, S2, 1
        )
        b = ProbabilityExpression.term(Q2, S2, 1) + ProbabilityExpression.term(
            Q1, S1, 0
        )
        assert a == b
        assert hash(a) == hash(b)

    def test_buckets(self):
        expr = ProbabilityExpression.term(Q1, S1, 0) + ProbabilityExpression.term(
            Q2, S2, 2
        )
        assert expr.buckets() == {0, 2}

    def test_immutability_of_coefficients_copy(self):
        expr = ProbabilityExpression.term(Q1, S1, 0)
        expr.coefficients[ProbabilityTerm(Q1, S1, 0)] = 99.0
        assert expr.coefficient(ProbabilityTerm(Q1, S1, 0)) == 1.0


class TestEvaluation:
    def test_evaluate_with_missing_terms_as_zero(self):
        expr = ProbabilityExpression.term(Q1, S1, 0, coefficient=2.0)
        assert expr.evaluate({}) == 0.0

    def test_evaluate_linear_combination(self):
        expr = (
            ProbabilityExpression.term(Q1, S1, 0)
            + 2.0 * ProbabilityExpression.term(Q2, S2, 1)
        )
        joint = {(Q1, S1, 0): 0.1, (Q2, S2, 1): 0.2}
        assert expr.evaluate(joint) == pytest.approx(0.5)


class TestLinearEquation:
    def test_holds(self):
        expr = ProbabilityExpression.term(Q1, S1, 0)
        equation = LinearEquation(expr, 0.25)
        assert equation.holds({(Q1, S1, 0): 0.25})
        assert not equation.holds({(Q1, S1, 0): 0.3})

    def test_str(self):
        equation = LinearEquation(ProbabilityExpression.term(Q1, S1, 0), 0.2)
        assert "= 0.2" in str(equation)
