"""Worker-failure paths: mid-solve death, reassignment, dedup, exhaustion.

These tests kill real worker subprocesses (SIGKILL — no goodbye) and
assert the coordinator's contract: the dead worker's components are
reassigned, the gathered posterior is bit-identical to a single-engine
run, and no component is solved or cached twice.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import ClusterCoordinator, ClusterExecutor, ClusterError, ShardClient
from repro.engine.engine import PrivacyEngine
from repro.engine.fingerprint import component_fingerprint
from repro.experiments.workloads import (
    build_synthetic_release,
    per_bucket_statements,
)
from repro.knowledge.compiler import compile_statements
from repro.maxent.config import MaxEntConfig
from repro.maxent.constraints import ConstraintSystem, data_constraints
from repro.maxent.decompose import decompose
from repro.maxent.indexing import GroupVariableSpace

# Pinned to bitwise replay: these tests prove reassignment semantics by
# bit-comparing posteriors, which only the per-component path guarantees
# (the default tolerance contract allows batching differences).
CONFIG = MaxEntConfig(raise_on_infeasible=False, replay="bitwise")


@pytest.fixture()
def workload():
    published = build_synthetic_release(
        480, qi_domain_sizes=(40, 30, 20, 10), n_sa_values=8, l=8
    )
    space = GroupVariableSpace(published)
    system = ConstraintSystem(space.n_vars)
    system.extend(data_constraints(space))
    system.extend(compile_statements(per_bucket_statements(published), space))
    return space, system


def _unique_numeric_fingerprints(space, system) -> set[str]:
    components = decompose(space, system)
    return {
        component_fingerprint(c.system, c.mass, CONFIG.solve_key())
        for c in components
        if not c.is_irrelevant
    }


def test_kill_worker_mid_solve_reassigns_and_stays_bit_identical(workload):
    space, system = workload
    baseline = PrivacyEngine(cache_size=0).solve(space, system, CONFIG)
    unique = _unique_numeric_fingerprints(space, system)
    assert len(unique) > 20  # the workload really is distinct-per-bucket

    with ClusterCoordinator.spawn_local(2, chunk_size=4) as coordinator:
        victim = coordinator.handles[1]
        killed = []

        def kill_after_first_chunk(worker_id: str, chunk_index: int) -> None:
            if not killed and worker_id == victim.worker_id:
                victim.process.kill()
                victim.process.wait(timeout=10)
                killed.append(worker_id)

        coordinator.after_chunk_hook = kill_after_first_chunk
        engine = PrivacyEngine(
            executor=ClusterExecutor(coordinator), cache_size=1024
        )
        solution = engine.solve(space, system, CONFIG)

        # The victim completed at least one chunk, then died mid-solve.
        assert killed == [victim.worker_id]
        assert victim.worker_id in coordinator.dead_ids()
        assert coordinator.alive_ids() == [coordinator.handles[0].worker_id]

        # Reassignment happened and the result is bit-identical.
        assert np.array_equal(solution.p, baseline.p)
        assert solution.stats.converged == baseline.stats.converged

        # No duplicate solve was cached: every distinct fingerprint was
        # looked up exactly once (one miss each, no hits) and cached once.
        assert engine.cache.misses == len(unique)
        assert engine.cache.hits == 0
        assert len(engine.cache) == len(unique)

        # The survivor never re-solved anything it already held: its own
        # cache has exactly one entry per component it solved.
        survivor = coordinator.handles[0]
        with ShardClient(survivor.host, survivor.port) as client:
            state = client.shard_state()
        assert state["components_solved"] == state["engine"]["cache"]["size"]
        assert state["components_cached"] == 0
        # Fleet-wide each component solved at most once: the survivor
        # solved everything except what the victim finished pre-death.
        assert state["components_solved"] < len(unique)


def test_worker_dead_before_solve_is_routed_around(workload):
    space, system = workload
    baseline = PrivacyEngine(cache_size=0).solve(space, system, CONFIG)
    with ClusterCoordinator.spawn_local(2) as coordinator:
        victim = coordinator.handles[0]
        victim.process.kill()
        victim.process.wait(timeout=10)
        engine = PrivacyEngine(
            executor=ClusterExecutor(coordinator), cache_size=0
        )
        solution = engine.solve(space, system, CONFIG)
        assert np.array_equal(solution.p, baseline.p)
        assert victim.worker_id in coordinator.dead_ids()
        assert victim.reassigned_jobs > 0


def test_all_workers_dead_raises_cluster_error(workload):
    space, system = workload
    with ClusterCoordinator.spawn_local(1) as coordinator:
        coordinator.handles[0].process.kill()
        coordinator.handles[0].process.wait(timeout=10)
        engine = PrivacyEngine(
            executor=ClusterExecutor(coordinator), cache_size=0
        )
        with pytest.raises(ClusterError, match="no alive shard workers"):
            engine.solve(space, system, CONFIG)


def test_health_probe_revives_recovered_worker(workload):
    with ClusterCoordinator.spawn_local(2) as coordinator:
        target = coordinator.handles[0]
        coordinator.mark_dead(target.worker_id)
        assert target.worker_id in coordinator.dead_ids()
        reports = coordinator.check_health()
        assert all(report["alive"] for report in reports)
        assert coordinator.dead_ids() == []
        statuses = {r["worker"]: r["health"]["status"] for r in reports}
        assert statuses[target.worker_id] == "ok"
