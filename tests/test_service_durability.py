"""Crash-safe service state: journal framing, snapshots, recovery."""

from __future__ import annotations

import json
import os

import pytest

from repro.core.serialize import published_from_dict, published_to_dict
from repro.data.paper_example import paper_published, paper_table
from repro.errors import ReproError
from repro.service.durability import (
    DurableState,
    Journal,
    STATE_FORMAT,
    decode_record,
    encode_record,
    read_journal,
    read_snapshot_file,
    write_snapshot_file,
)
from repro.service.ingest import IngestManager, IngestSession, chunk_digest
from repro.service.store import SessionStore, release_digest


def wire() -> dict:
    return published_to_dict(paper_published())


def split(buckets: list, n: int) -> list[list]:
    return [buckets[i : i + n] for i in range(0, len(buckets), n)]


def register_durably(durable: DurableState, store: SessionStore, payload: dict):
    """The write-ahead sequence the server's register handler runs."""
    digest = release_digest(payload)
    published = published_from_dict(payload)
    record, created = store.register_digest(digest, published)
    if created:
        durable.record_register(digest, payload)
    return record


class TestJournalFraming:
    def test_record_round_trip(self):
        record = {"v": 1, "kind": "register", "digest": "ab" * 32}
        line = encode_record(record)
        assert line.endswith(b"\n")
        assert decode_record(line.rstrip(b"\n")) == record

    def test_corrupt_crc_is_rejected(self):
        line = encode_record({"v": 1, "kind": "x"}).rstrip(b"\n")
        flipped = line[:-1] + (b"0" if line[-1:] != b"0" else b"1")
        assert decode_record(flipped) is None

    def test_torn_final_record_is_dropped(self, tmp_path):
        path = str(tmp_path / "journal.log")
        with open(path, "wb") as fh:
            fh.write(encode_record({"v": 1, "kind": "a"}))
            fh.write(encode_record({"v": 1, "kind": "b"})[:-7])  # torn tail
        records, torn = read_journal(path)
        assert [r["kind"] for r in records] == ["a"]
        assert torn == 1

    def test_mid_journal_corruption_raises(self, tmp_path):
        path = str(tmp_path / "journal.log")
        with open(path, "wb") as fh:
            fh.write(encode_record({"v": 1, "kind": "a"})[:-7] + b"\n")
            fh.write(encode_record({"v": 1, "kind": "b"}))
        with pytest.raises(ReproError, match="corrupt journal"):
            read_journal(path)

    def test_unknown_journal_version_raises(self, tmp_path):
        path = str(tmp_path / "journal.log")
        with open(path, "wb") as fh:
            fh.write(encode_record({"v": 999, "kind": "register"}))
        with pytest.raises(ReproError, match="journal record version"):
            read_journal(path)

    def test_missing_journal_is_empty(self, tmp_path):
        assert read_journal(str(tmp_path / "absent.log")) == ([], 0)


class TestSnapshotFile:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "snapshot.json")
        write_snapshot_file(path, {"store": {"counter": 3}})
        document = read_snapshot_file(path)
        assert document["format"] == STATE_FORMAT
        assert document["store"] == {"counter": 3}

    def test_missing_snapshot_is_none(self, tmp_path):
        assert read_snapshot_file(str(tmp_path / "absent.json")) is None

    def test_unknown_format_raises(self, tmp_path):
        path = str(tmp_path / "snapshot.json")
        with open(path, "w", encoding="utf-8") as fh:
            json.dump({"format": "privacy-maxent-state/99"}, fh)
        with pytest.raises(ReproError, match="snapshot format"):
            read_snapshot_file(path)

    def test_junk_snapshot_raises(self, tmp_path):
        path = str(tmp_path / "snapshot.json")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("{truncated")
        with pytest.raises(ReproError, match="not valid JSON"):
            read_snapshot_file(path)


class TestJournalRotation:
    def test_rotate_seals_then_discard_drops(self, tmp_path):
        journal = Journal(str(tmp_path / "journal.log"))
        journal.append("a", {"n": 1})
        journal.rotate()
        journal.append("b", {"n": 2})
        sealed, _ = read_journal(journal.sealed_path)
        live, _ = read_journal(journal.path)
        assert [r["kind"] for r in sealed] == ["a"]
        assert [r["kind"] for r in live] == ["b"]
        journal.discard_sealed()
        assert not os.path.exists(journal.sealed_path)
        assert read_journal(journal.path)[0] == live
        journal.close()

    def test_second_rotate_extends_existing_sidecar(self, tmp_path):
        # A crash between rotate and discard leaves a sidecar; the next
        # rotate must append to it, never clobber the sealed records.
        journal = Journal(str(tmp_path / "journal.log"))
        journal.append("a", {})
        journal.rotate()
        journal.append("b", {})
        journal.rotate()
        sealed, _ = read_journal(journal.sealed_path)
        assert [r["kind"] for r in sealed] == ["a", "b"]
        journal.close()


class TestStoreRoundTrip:
    def test_serialize_restore_preserves_ids_and_counter(self):
        store = SessionStore()
        payload = wire()
        record = register_durably_store_only(store, payload)
        restored_store = SessionStore()
        assert restored_store.restore(store.serialize()) == 1
        clone = restored_store.get(record.release_id)
        assert clone.release_id == record.release_id
        assert clone.published.n_buckets == record.published.n_buckets
        # Restoring again is a no-op, and a re-registration of the same
        # payload dedupes against the restored entry instead of renumbering.
        assert restored_store.restore(store.serialize()) == 0
        fresh, created = restored_store.register(payload, paper_published())
        assert created is False
        assert fresh.release_id == record.release_id

    def test_original_table_survives_round_trip(self):
        store = SessionStore()
        payload = wire()
        published = published_from_dict(payload)
        store.register(payload, published, original=paper_table())
        clone_store = SessionStore()
        clone_store.restore(store.serialize())
        clone = clone_store.list()[0]
        assert clone["has_original"] is True


def register_durably_store_only(store: SessionStore, payload: dict):
    record, _created = store.register(payload, published_from_dict(payload))
    return record


class TestIngestSessionRoundTrip:
    def test_restore_resumes_to_identical_digest(self):
        payload = wire()
        chunks = split(payload["buckets"], 2)
        session = IngestSession("up-1-cafe", payload["schema"])
        for seq, chunk in enumerate(chunks[:2]):
            session.add_chunk(seq, chunk, chunk_digest(chunk))
        clone = IngestSession.restore(session.serialize())
        for seq, chunk in enumerate(chunks[2:], start=2):
            clone.add_chunk(seq, chunk, chunk_digest(chunk))
        digest, _published = clone.build(None)
        assert digest == release_digest(payload)


class TestDurableStateRecovery:
    def test_register_survives_simulated_crash(self, tmp_path):
        state_dir = str(tmp_path / "state")
        durable = DurableState(state_dir)
        store, ingest = SessionStore(), IngestManager()
        payload = wire()
        record = register_durably(durable, store, payload)
        durable.close()  # crash: no snapshot was ever written

        reborn = DurableState(state_dir)
        store2, ingest2 = SessionStore(), IngestManager()
        summary = reborn.recover(store2, ingest2)
        assert summary["recovered"] is True
        assert summary["replayed_records"] == 1
        clone = store2.get(record.release_id)
        assert clone.release_id == record.release_id
        reborn.close()

    def test_interrupted_upload_resumes_bit_identical(self, tmp_path):
        payload = wire()
        chunks = split(payload["buckets"], 2)
        state_dir = str(tmp_path / "state")
        durable = DurableState(state_dir)
        store, ingest = SessionStore(), IngestManager()
        session = ingest.begin(payload["schema"], name="resumed")
        durable.record_ingest_begin(session)
        from functools import partial

        journal = partial(durable.record_ingest_chunk, session.upload_id)
        for seq, chunk in enumerate(chunks[:2]):
            session.add_chunk(seq, chunk, chunk_digest(chunk), journal=journal)
        durable.close()  # SIGKILL mid-upload

        reborn = DurableState(state_dir)
        store2, ingest2 = SessionStore(), IngestManager()
        summary = reborn.recover(store2, ingest2)
        assert session.upload_id in summary["resumed_upload_ids"]
        resumed = ingest2.get(session.upload_id)
        journal2 = partial(reborn.record_ingest_chunk, session.upload_id)
        for seq, chunk in enumerate(chunks[2:], start=2):
            resumed.add_chunk(
                seq, chunk, chunk_digest(chunk), journal=journal2
            )
        digest, published = resumed.build(None)
        assert digest == release_digest(payload)
        assert published.n_buckets == len(payload["buckets"])
        reborn.close()

    def test_double_replay_is_idempotent(self, tmp_path):
        state_dir = str(tmp_path / "state")
        durable = DurableState(state_dir)
        store, ingest = SessionStore(), IngestManager()
        payload = wire()
        register_durably(durable, store, payload)
        durable.close()

        for _round in range(2):
            reborn = DurableState(state_dir)
            store2, ingest2 = SessionStore(), IngestManager()
            reborn.recover(store2, ingest2)
            assert len(store2) == 1
            reborn.close()

    def test_replaying_register_twice_into_one_store(self, tmp_path):
        state_dir = str(tmp_path / "state")
        durable = DurableState(state_dir)
        store, ingest = SessionStore(), IngestManager()
        payload = wire()
        register_durably(durable, store, payload)
        durable.close()
        reborn = DurableState(state_dir)
        store2, ingest2 = SessionStore(), IngestManager()
        records, _ = read_journal(
            os.path.join(state_dir, "journal.log")
        )
        for record in records + records:  # apply every record twice
            reborn.apply(record, store2, ingest2)
        assert len(store2) == 1
        reborn.close()

    def test_ttl_expired_upload_is_not_resurrected(self, tmp_path):
        payload = wire()
        state_dir = str(tmp_path / "state")
        durable = DurableState(state_dir)
        store, ingest = SessionStore(), IngestManager()
        session = ingest.begin(payload["schema"])
        session.created_at = session.touched_at = 100.0  # long expired
        durable.record_ingest_begin(session)
        durable.close()

        reborn = DurableState(state_dir)
        store2 = SessionStore()
        ingest2 = IngestManager(ttl_seconds=60.0)
        summary = reborn.recover(store2, ingest2)
        assert summary["resumed_uploads"] == 0
        assert ingest2.peek(session.upload_id) is None
        reborn.close()

    def test_snapshot_truncates_journal_and_restores_alone(self, tmp_path):
        state_dir = str(tmp_path / "state")
        durable = DurableState(state_dir, snapshot_every=1)
        store, ingest = SessionStore(), IngestManager()
        payload = wire()
        record = register_durably(durable, store, payload)
        assert durable.should_snapshot()
        durable.write_snapshot(store, ingest)
        assert read_journal(durable.journal.path) == ([], 0)
        durable.close()

        reborn = DurableState(state_dir)
        store2, ingest2 = SessionStore(), IngestManager()
        summary = reborn.recover(store2, ingest2)
        assert summary["snapshot_loaded"] is True
        assert summary["replayed_records"] == 0
        assert store2.get(record.release_id).release_id == record.release_id
        reborn.close()

    def test_unknown_record_kind_refuses_recovery(self, tmp_path):
        state_dir = str(tmp_path / "state")
        durable = DurableState(state_dir)
        durable.journal.append("timewarp", {"upload_id": "up-1"})
        durable.close()
        reborn = DurableState(state_dir)
        with pytest.raises(ReproError, match="unknown journal record kind"):
            reborn.recover(SessionStore(), IngestManager())
        reborn.close()

    def test_recovery_writes_repair_snapshot(self, tmp_path):
        # After replaying a journal suffix the state is folded into a
        # fresh snapshot so the next boot starts compact.
        state_dir = str(tmp_path / "state")
        durable = DurableState(state_dir)
        store, ingest = SessionStore(), IngestManager()
        register_durably(durable, store, wire())
        durable.close()
        reborn = DurableState(state_dir)
        reborn.recover(SessionStore(), IngestManager())
        assert os.path.exists(reborn.snapshot_path)
        assert read_journal(reborn.journal.path) == ([], 0)
        reborn.close()
