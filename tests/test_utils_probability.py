"""Unit tests for repro.utils.probability."""

import math

import numpy as np
import pytest

from repro.errors import ReproError
from repro.utils.probability import (
    entropy,
    kl_divergence,
    normalize,
    safe_log,
    total_variation,
    uniform,
)


class TestSafeLog:
    def test_positive_values(self):
        assert safe_log([1.0, 2.0, 4.0]).tolist() == [0.0, 1.0, 2.0]

    def test_zero_maps_to_zero(self):
        assert safe_log([0.0, 1.0]).tolist() == [0.0, 0.0]

    def test_natural_base(self):
        result = safe_log([math.e], base=math.e)
        assert result[0] == pytest.approx(1.0)


class TestNormalize:
    def test_scales_to_one(self):
        result = normalize([1.0, 3.0])
        assert result.tolist() == [0.25, 0.75]

    def test_already_normalized_unchanged(self):
        result = normalize([0.5, 0.5])
        assert result.tolist() == [0.5, 0.5]

    def test_rejects_all_zero(self):
        with pytest.raises(ReproError):
            normalize([0.0, 0.0])

    def test_rejects_negative(self):
        with pytest.raises(ReproError):
            normalize([0.5, -0.5])

    def test_rejects_empty(self):
        with pytest.raises(ReproError):
            normalize([])

    def test_clips_tiny_negative_roundoff(self):
        result = normalize([1.0, -1e-12])
        assert result[0] == pytest.approx(1.0)


class TestEntropy:
    def test_uniform_is_log_n(self):
        assert entropy([0.25] * 4) == pytest.approx(2.0)

    def test_point_mass_is_zero(self):
        assert entropy([1.0, 0.0, 0.0]) == pytest.approx(0.0)

    def test_subdistribution_allowed(self):
        # The MaxEnt objective runs on masses < 1.
        value = entropy([0.25, 0.25])
        assert value == pytest.approx(-2 * 0.25 * math.log2(0.25))

    def test_rejects_negative(self):
        with pytest.raises(ReproError):
            entropy([-0.1, 1.1])

    def test_base_e(self):
        assert entropy([0.5, 0.5], base=math.e) == pytest.approx(math.log(2))


class TestKLDivergence:
    def test_identical_is_zero(self):
        assert kl_divergence([0.3, 0.7], [0.3, 0.7]) == pytest.approx(0.0)

    def test_known_value(self):
        # D([1,0] || [0.5,0.5]) = log2(2) = 1 bit.
        assert kl_divergence([1.0, 0.0], [0.5, 0.5]) == pytest.approx(1.0)

    def test_infinite_when_support_mismatch(self):
        assert math.isinf(kl_divergence([0.5, 0.5], [1.0, 0.0]))

    def test_zero_p_term_ignored(self):
        value = kl_divergence([0.0, 1.0], [0.5, 0.5])
        assert value == pytest.approx(1.0)

    def test_non_negative_on_random_pairs(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            p = normalize(rng.random(6))
            q = normalize(rng.random(6))
            assert kl_divergence(p, q) >= -1e-12

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ReproError):
            kl_divergence([0.5, 0.5], [1.0])


class TestTotalVariation:
    def test_identical_zero(self):
        assert total_variation([0.5, 0.5], [0.5, 0.5]) == 0.0

    def test_disjoint_is_one(self):
        assert total_variation([1.0, 0.0], [0.0, 1.0]) == pytest.approx(1.0)

    def test_symmetric(self):
        a, b = [0.2, 0.8], [0.6, 0.4]
        assert total_variation(a, b) == pytest.approx(total_variation(b, a))


class TestUniform:
    def test_sums_to_one(self):
        assert uniform(7).sum() == pytest.approx(1.0)

    def test_rejects_zero(self):
        with pytest.raises(ReproError):
            uniform(0)
