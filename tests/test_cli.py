"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.data.adult import adult_schema
from repro.data.io import read_csv


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestGenerate:
    def test_writes_csv(self, tmp_path, capsys):
        out = tmp_path / "adult.csv"
        code = main(["generate", str(out), "--records", "50", "--seed", "1"])
        assert code == 0
        table = read_csv(out, adult_schema())
        assert table.n_rows == 50
        assert "wrote 50 records" in capsys.readouterr().out


class TestMine:
    def test_prints_rules(self, capsys):
        code = main(
            [
                "mine",
                "--records", "200",
                "--max-antecedent", "1",
                "--top", "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "positive" in out
        assert "=>" in out


class TestBucketize:
    def test_reports_buckets(self, capsys):
        code = main(["bucketize", "--records", "100", "-l", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "20 buckets" in out


class TestAssess:
    def test_prints_assessment_table(self, capsys):
        code = main(
            [
                "assess",
                "--records", "150",
                "--max-antecedent", "1",
                "--k", "10",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "est_accuracy" in out
        assert "Top-(0+, 0-)" in out
        assert "Top-(5+, 5-)" in out


class TestUtility:
    def test_baseline_only(self, capsys):
        code = main(["utility", "--records", "200", "--queries", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "mean rel. error" in out
        assert "no knowledge" in out

    def test_with_knowledge_rows(self, capsys):
        code = main(
            [
                "utility",
                "--records", "200",
                "--queries", "5",
                "--max-antecedent", "1",
                "--k", "10",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Top-(5+, 5-)" in out


class TestFigure:
    def test_unknown_figure(self, capsys):
        code = main(["figure", "99"])
        assert code == 2

    def test_figure5_small(self, capsys):
        code = main(["figure", "5", "--records", "150"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 5" in out
        assert "legend" in out


class TestIngestCommand:
    @pytest.fixture()
    def sqlite_source(self, tmp_path):
        from repro.data.adult import load_adult_synthetic
        from repro.data.connectors import table_to_sqlite

        path = tmp_path / "adult.db"
        table_to_sqlite(load_adult_synthetic(n_records=120, seed=3), path)
        return path

    QI = [
        "age", "workclass", "marital_status", "occupation",
        "relationship", "race", "sex", "native_region",
    ]

    def test_embedded_ingest_registers(self, sqlite_source, capsys):
        code = main(
            ["ingest", str(sqlite_source), "--qi", *self.QI,
             "--sa", "education", "-l", "3", "--chunk-rows", "50",
             "--embedded", "--name", "cli-test"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "120 rows" in out
        assert "chunk 2" in out  # 120 rows / 50 per chunk -> 3 chunks
        assert "registered release" in out
        assert "120 records" in out

    def test_bad_source_is_a_clean_error(self, tmp_path, capsys):
        code = main(
            ["ingest", str(tmp_path / "absent.db"), "--qi", "age",
             "--sa", "education", "--embedded"]
        )
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_postgres_gate_names_the_extra(self, capsys):
        code = main(
            ["ingest", "dbname=nope", "--postgres", "--qi", "age",
             "--sa", "education", "--embedded"]
        )
        assert code == 1
        assert "repro[postgres]" in capsys.readouterr().err


class TestWorkloadCommand:
    def test_embedded_workload_prints_trajectory(self, capsys):
        code = main(
            ["workload", "--records", "200", "-l", "3", "--batches", "2",
             "--queries-per-batch", "8", "--knowledge-step", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Workload over" in out
        assert "Query latency by shape" in out

    def test_json_report(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "report.json"
        code = main(
            ["workload", "--records", "150", "-l", "3", "--batches", "2",
             "--queries-per-batch", "6", "--knowledge-step", "0",
             "--json", "--output", str(out_path)]
        )
        assert code == 0
        report = json.loads(out_path.read_text())
        assert len(report["batches"]) == 2
        printed = json.loads(
            capsys.readouterr().out.split("wrote workload report", 1)[1]
            .split("\n", 1)[1]
        )
        assert printed["total_queries"] == report["total_queries"]

    def test_service_mode_with_knowledge_is_refused(self, capsys):
        code = main(
            ["workload", "--release", "rel-x", "--knowledge-step", "2"]
        )
        assert code == 2
        assert "--knowledge-step 0" in capsys.readouterr().err
