"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.data.adult import adult_schema
from repro.data.io import read_csv


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestGenerate:
    def test_writes_csv(self, tmp_path, capsys):
        out = tmp_path / "adult.csv"
        code = main(["generate", str(out), "--records", "50", "--seed", "1"])
        assert code == 0
        table = read_csv(out, adult_schema())
        assert table.n_rows == 50
        assert "wrote 50 records" in capsys.readouterr().out


class TestMine:
    def test_prints_rules(self, capsys):
        code = main(
            [
                "mine",
                "--records", "200",
                "--max-antecedent", "1",
                "--top", "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "positive" in out
        assert "=>" in out


class TestBucketize:
    def test_reports_buckets(self, capsys):
        code = main(["bucketize", "--records", "100", "-l", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "20 buckets" in out


class TestAssess:
    def test_prints_assessment_table(self, capsys):
        code = main(
            [
                "assess",
                "--records", "150",
                "--max-antecedent", "1",
                "--k", "10",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "est_accuracy" in out
        assert "Top-(0+, 0-)" in out
        assert "Top-(5+, 5-)" in out


class TestUtility:
    def test_baseline_only(self, capsys):
        code = main(["utility", "--records", "200", "--queries", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "mean rel. error" in out
        assert "no knowledge" in out

    def test_with_knowledge_rows(self, capsys):
        code = main(
            [
                "utility",
                "--records", "200",
                "--queries", "5",
                "--max-antecedent", "1",
                "--k", "10",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Top-(5+, 5-)" in out


class TestFigure:
    def test_unknown_figure(self, capsys):
        code = main(["figure", "99"])
        assert code == 2

    def test_figure5_small(self, capsys):
        code = main(["figure", "5", "--records", "150"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 5" in out
        assert "legend" in out
