"""Test utilities: brute-force oracles and random-instance builders.

The invariant theory and the MaxEnt solvers both admit slow-but-obviously-
correct oracles on small inputs (enumerate every assignment; solve the
primal directly).  Tests compare the production code against these.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.anonymize.buckets import (
    Bucket,
    BucketizedTable,
    enumerate_assignments,
)
from repro.data.schema import Attribute, Schema
from repro.data.table import Table
from repro.knowledge.expressions import ProbabilityExpression


def empirical_joint(table: Table, bucket_of_row) -> dict[tuple, float]:
    """The joint ``P(q, s, b)`` realized by the original assignment."""
    n = table.n_rows
    joint: Counter = Counter()
    qi = table.qi_tuples()
    sa = table.sa_labels()
    for row in range(n):
        joint[(qi[row], sa[row], int(bucket_of_row[row]))] += 1
    return {key: count / n for key, count in joint.items()}


def brute_force_is_invariant(
    expression: ProbabilityExpression,
    published: BucketizedTable,
    *,
    tolerance: float = 1e-9,
) -> bool:
    """Decide invariance by enumerating every assignment (tiny data only).

    Because any invariant decomposes per bucket (Lemma 1), it suffices to
    enumerate assignments bucket by bucket and combine one assignment from
    each — but for full fidelity we evaluate the expression over the
    Cartesian product of per-bucket assignments, bounded to small inputs.
    """
    n = published.n_records
    per_bucket = [list(enumerate_assignments(b)) for b in published.buckets]
    total = 1
    for assignments in per_bucket:
        total *= len(assignments)
    if total > 20000:
        raise ValueError(f"too many assignments to enumerate ({total})")

    def joints(bucket_choices):
        joint: Counter = Counter()
        for bucket, assignment in zip(published.buckets, bucket_choices):
            for q, s in assignment:
                joint[(q, s, bucket.index)] += 1
        return {key: count / n for key, count in joint.items()}

    reference: float | None = None
    indices = [0] * len(per_bucket)
    while True:
        choice = [per_bucket[i][indices[i]] for i in range(len(per_bucket))]
        value = expression.evaluate(joints(choice))
        if reference is None:
            reference = value
        elif abs(value - reference) > tolerance:
            return False
        # Odometer increment over the per-bucket assignment indices.
        position = 0
        while position < len(indices):
            indices[position] += 1
            if indices[position] < len(per_bucket[position]):
                break
            indices[position] = 0
            position += 1
        else:
            break
    return True


def tiny_schema(n_qi_values: int = 3, n_sa_values: int = 4) -> Schema:
    """A one-QI-attribute schema for random bucket tests."""
    return Schema(
        attributes=(
            Attribute("q", tuple(f"q{i}" for i in range(n_qi_values))),
            Attribute("s", tuple(f"s{i}" for i in range(n_sa_values))),
        ),
        qi_attributes=("q",),
        sa_attribute="s",
    )


def random_published(
    rng: np.random.Generator,
    *,
    n_buckets: int = 3,
    max_bucket_size: int = 4,
    n_qi_values: int = 3,
    n_sa_values: int = 4,
) -> tuple[Table, BucketizedTable, np.ndarray]:
    """A random table + bucketization for randomized/property tests.

    Returns ``(table, published, bucket_of_row)`` so tests can also form the
    empirical joint of the original assignment.
    """
    schema = tiny_schema(n_qi_values, n_sa_values)
    rows = []
    bucket_ids = []
    for bucket in range(n_buckets):
        size = int(rng.integers(1, max_bucket_size + 1))
        for _ in range(size):
            rows.append(
                {
                    "q": f"q{int(rng.integers(0, n_qi_values))}",
                    "s": f"s{int(rng.integers(0, n_sa_values))}",
                }
            )
            bucket_ids.append(bucket)
    table = Table.from_records(schema, rows)
    bucket_of_row = np.array(bucket_ids, dtype=np.int64)
    published = BucketizedTable.from_assignment(table, bucket_of_row)
    return table, published, bucket_of_row


def single_bucket(qi_values: list[str], sa_values: list[str]) -> Bucket:
    """A standalone bucket (for invariant-matrix tests)."""
    return Bucket(
        index=0,
        qi_tuples=tuple((q,) for q in qi_values),
        sa_values=tuple(sa_values),
    )
