"""Tests for the service's HTTP framing, flow control and telemetry."""

import asyncio

import numpy as np
import pytest

from repro.data.paper_example import paper_published
from repro.maxent.closed_form import closed_form_multi, closed_form_solution
from repro.maxent.indexing import GroupVariableSpace
from repro.service.admission import (
    AdmissionController,
    ClosedFormBatcher,
    Coalescer,
    QueueFullError,
)
from repro.service.protocol import (
    HttpError,
    error_body,
    json_body,
    read_request,
    response_bytes,
)
from repro.service.telemetry import LatencyHistogram, ServiceTelemetry


def run(coroutine):
    """Drive one coroutine on a fresh loop (no pytest-asyncio dependency)."""
    return asyncio.run(coroutine)


def reader_with(data: bytes) -> asyncio.StreamReader:
    reader = asyncio.StreamReader()
    reader.feed_data(data)
    reader.feed_eof()
    return reader


class TestReadRequest:
    def test_get_with_query(self):
        async def scenario():
            reader = reader_with(
                b"GET /v1/releases?limit=5&verbose=1 HTTP/1.1\r\n"
                b"Host: localhost\r\n\r\n"
            )
            return await read_request(reader)

        request = run(scenario())
        assert request.method == "GET"
        assert request.segments == ("v1", "releases")
        assert request.query == {"limit": "5", "verbose": "1"}
        assert request.body == b""
        assert request.keep_alive

    def test_post_with_body_and_close(self):
        async def scenario():
            body = b'{"x": 1}'
            reader = reader_with(
                b"POST /v1/releases HTTP/1.1\r\n"
                b"Content-Length: %d\r\n"
                b"Connection: close\r\n\r\n%s" % (len(body), body)
            )
            return await read_request(reader)

        request = run(scenario())
        assert request.json() == {"x": 1}
        assert not request.keep_alive

    def test_two_pipelined_requests(self):
        async def scenario():
            reader = reader_with(
                b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n"
            )
            first = await read_request(reader)
            second = await read_request(reader)
            third = await read_request(reader)
            return first, second, third

        first, second, third = run(scenario())
        assert first.path == "/a"
        assert second.path == "/b"
        assert third is None

    def test_eof_returns_none(self):
        async def scenario():
            return await read_request(reader_with(b""))

        assert run(scenario()) is None

    @pytest.mark.parametrize(
        "raw, status",
        [
            (b"NONSENSE\r\n\r\n", 400),
            (b"GET / SPDY/99\r\n\r\n", 400),
            (b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc", 400),
            (b"POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n", 400),
            (b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n", 501),
        ],
    )
    def test_malformed_framing(self, raw, status):
        async def scenario():
            return await read_request(reader_with(raw))

        with pytest.raises(HttpError) as excinfo:
            run(scenario())
        assert excinfo.value.status == status

    def test_header_line_over_stream_limit_is_a_400(self):
        """A line above the StreamReader's 64 KiB limit must surface as
        HttpError 400 (ValueError from readline), not a dropped socket."""
        async def scenario():
            reader = reader_with(b"GET /" + b"a" * 70_000 + b" HTTP/1.1\r\n\r\n")
            return await read_request(reader)

        with pytest.raises(HttpError) as excinfo:
            run(scenario())
        assert excinfo.value.status == 400

    def test_oversized_body_rejected_without_reading_it(self):
        async def scenario():
            reader = reader_with(
                b"POST /v1/releases HTTP/1.1\r\nContent-Length: 999999\r\n\r\n"
            )
            return await read_request(reader, max_body=1024)

        with pytest.raises(HttpError) as excinfo:
            run(scenario())
        assert excinfo.value.status == 413

    def test_bad_json_body(self):
        async def scenario():
            body = b"{nope"
            reader = reader_with(
                b"POST /x HTTP/1.1\r\nContent-Length: %d\r\n\r\n%s"
                % (len(body), body)
            )
            return await read_request(reader)

        request = run(scenario())
        with pytest.raises(HttpError) as excinfo:
            request.json()
        assert excinfo.value.status == 400


class TestResponses:
    def test_response_framing(self):
        raw = response_bytes(200, json_body({"ok": True}))
        head, _, body = raw.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 200 OK\r\n")
        assert b"Content-Length: %d" % len(body) in head
        assert body == b'{"ok":true}'

    def test_error_envelope(self):
        error = HttpError(429, "try later", code="queue_full")
        raw = error_body(error)
        assert b'"queue_full"' in raw
        assert b"try later" in raw


class TestAdmissionController:
    def test_rejects_beyond_capacity(self):
        async def scenario():
            controller = AdmissionController(max_concurrency=1, max_queue=1)
            release = asyncio.Event()

            async def work():
                await release.wait()
                return "done"

            first = asyncio.ensure_future(controller.run(work))
            await asyncio.sleep(0)  # first occupies the running slot
            second = asyncio.ensure_future(controller.run(work))
            await asyncio.sleep(0)  # second occupies the queue slot
            assert controller.depth == 2
            with pytest.raises(QueueFullError):
                await controller.run(work)
            assert controller.rejected == 1
            release.set()
            assert await first == "done"
            assert await second == "done"
            assert controller.depth == 0

        run(scenario())

    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionController(max_concurrency=0, max_queue=1)
        with pytest.raises(ValueError):
            AdmissionController(max_concurrency=1, max_queue=-1)


class TestCoalescer:
    def test_identical_keys_share_one_computation(self):
        async def scenario():
            coalescer = Coalescer()
            calls = 0
            release = asyncio.Event()

            async def factory():
                nonlocal calls
                calls += 1
                await release.wait()
                return {"value": 42}

            first = asyncio.ensure_future(coalescer.run("k", factory))
            await asyncio.sleep(0)
            second = asyncio.ensure_future(coalescer.run("k", factory))
            await asyncio.sleep(0)
            assert coalescer.inflight == 1
            release.set()
            (value_a, coalesced_a) = await first
            (value_b, coalesced_b) = await second
            assert value_a is value_b
            assert (coalesced_a, coalesced_b) == (False, True)
            assert calls == 1
            assert coalescer.started == 1
            assert coalescer.coalesced == 1
            assert coalescer.inflight == 0

        run(scenario())

    def test_distinct_keys_run_separately(self):
        async def scenario():
            coalescer = Coalescer()

            async def factory():
                return object()

            (a, _), (b, _) = await asyncio.gather(
                coalescer.run("k1", factory), coalescer.run("k2", factory)
            )
            assert a is not b
            assert coalescer.started == 2
            assert coalescer.coalesced == 0

        run(scenario())


class TestClosedFormBatcher:
    def test_concurrent_requests_share_one_batch(self):
        published = paper_published()
        space = GroupVariableSpace(published)
        expected = closed_form_solution(space)

        async def scenario():
            batcher = ClosedFormBatcher(window_seconds=0.01, max_batch=64)
            results = await asyncio.gather(
                batcher.compute(space), batcher.compute(space)
            )
            return batcher, results

        batcher, results = run(scenario())
        assert batcher.batches == 1
        assert batcher.batched_requests == 2
        for p in results:
            np.testing.assert_allclose(p, expected)

    def test_max_batch_flushes_immediately(self):
        space = GroupVariableSpace(paper_published())

        async def scenario():
            batcher = ClosedFormBatcher(window_seconds=10.0, max_batch=2)
            # A 10s window would time the test out unless max_batch trips.
            await asyncio.wait_for(
                asyncio.gather(batcher.compute(space), batcher.compute(space)),
                timeout=5.0,
            )
            return batcher

        batcher = run(scenario())
        assert batcher.batches == 1
        assert batcher.largest_batch == 2

    def test_multi_matches_per_space_closed_form(self, adult_small_published):
        spaces = [
            GroupVariableSpace(paper_published()),
            GroupVariableSpace(adult_small_published),
        ]
        results = closed_form_multi(spaces)
        assert len(results) == 2
        for space, p in zip(spaces, results):
            np.testing.assert_allclose(p, closed_form_solution(space))


class TestTelemetry:
    def test_histogram_percentiles(self):
        histogram = LatencyHistogram()
        for _ in range(98):
            histogram.observe(0.004)
        histogram.observe(0.2)
        histogram.observe(2.0)
        summary = histogram.summary()
        assert summary["count"] == 100
        assert summary["p50_seconds"] == pytest.approx(0.005)
        assert summary["p99_seconds"] >= 0.2
        assert summary["max_seconds"] == pytest.approx(2.0)
        # Quantiles never exceed the largest observation.
        assert histogram.quantile(1.0) <= 2.0

    def test_empty_histogram(self):
        histogram = LatencyHistogram()
        assert histogram.quantile(0.5) == 0.0
        assert histogram.summary()["count"] == 0

    def test_service_telemetry_snapshot(self):
        telemetry = ServiceTelemetry()
        telemetry.incr("solves_started")
        telemetry.observe("GET /x", 200, 0.003)
        telemetry.observe("GET /x", 404, 0.001)
        snapshot = telemetry.snapshot()
        assert snapshot["counters"]["solves_started"] == 1
        assert snapshot["counters"]["requests_total"] == 2
        assert snapshot["responses_by_status"] == {"200": 1, "404": 1}
        assert snapshot["endpoints"]["GET /x"]["count"] == 2
        assert snapshot["uptime_seconds"] >= 0.0
