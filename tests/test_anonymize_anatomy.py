"""Unit tests for the Anatomy bucketizer."""

from collections import Counter

import numpy as np
import pytest

from repro.anonymize.anatomy import anatomize
from repro.anonymize.diversity import auto_exempt, table_is_diverse
from repro.data.adult import load_adult_synthetic
from repro.data.schema import Attribute, Schema
from repro.data.table import Table
from repro.errors import DiversityError


def uniform_table(value_counts: dict[str, int]) -> Table:
    """A table whose SA counts are exactly ``value_counts`` (single QI)."""
    values = sorted(value_counts)
    schema = Schema(
        attributes=(
            Attribute("q", tuple(f"q{i}" for i in range(3))),
            Attribute("s", tuple(values)),
        ),
        qi_attributes=("q",),
        sa_attribute="s",
    )
    records = []
    i = 0
    for value, count in value_counts.items():
        for _ in range(count):
            records.append({"q": f"q{i % 3}", "s": value})
            i += 1
    return Table.from_records(schema, records)


class TestBasicProperties:
    def test_exact_partition(self):
        table = uniform_table({"a": 4, "b": 4, "c": 4})
        published = anatomize(table, l=2, exempt=None, seed=0)
        assert published.n_records == 12
        sizes = [b.size for b in published.buckets]
        assert all(size == 2 for size in sizes)
        assert table_is_diverse(published, 2)

    def test_preserves_sa_multiset(self):
        table = uniform_table({"a": 5, "b": 4, "c": 3})
        published = anatomize(table, l=2, exempt=None, seed=1)
        total = Counter()
        for bucket in published.buckets:
            total.update(bucket.sa_counts())
        assert total == Counter({"a": 5, "b": 4, "c": 3})

    def test_preserves_qi_marginal(self):
        table = uniform_table({"a": 4, "b": 4, "c": 4})
        published = anatomize(table, l=3, exempt=None, seed=2)
        assert published.qi_marginal() == table.qi_counts()

    def test_residue_handled(self):
        # 11 records, l=2 -> 5 buckets of 2 plus one residue record.
        table = uniform_table({"a": 4, "b": 4, "c": 3})
        published = anatomize(table, l=2, exempt=None, seed=3)
        assert published.n_records == 11
        assert published.n_buckets == 5
        sizes = sorted(b.size for b in published.buckets)
        assert sizes == [2, 2, 2, 2, 3]
        assert table_is_diverse(published, 2)

    def test_deterministic_per_seed(self):
        table = uniform_table({"a": 6, "b": 6, "c": 6})
        a = anatomize(table, l=3, exempt=None, seed=42)
        b = anatomize(table, l=3, exempt=None, seed=42)
        assert [bk.sa_values for bk in a.buckets] == [
            bk.sa_values for bk in b.buckets
        ]


class TestEligibility:
    def test_infeasible_raises(self):
        table = uniform_table({"a": 9, "b": 1, "c": 1})
        with pytest.raises(DiversityError, match="infeasible"):
            anatomize(table, l=3, exempt=None)

    def test_auto_exemption_rescues(self):
        table = uniform_table({"a": 9, "b": 1, "c": 1, "d": 1})
        published = anatomize(table, l=3, exempt="auto", seed=0)
        exempt = auto_exempt(Counter({"a": 9, "b": 1, "c": 1, "d": 1}), 3)
        assert table_is_diverse(published, 3, exempt=exempt)

    def test_explicit_exempt_set(self):
        table = uniform_table({"a": 9, "b": 2, "c": 1})
        published = anatomize(table, l=3, exempt={"a"}, seed=0)
        assert table_is_diverse(published, 3, exempt=frozenset({"a"}))

    def test_int_exempt_spec(self):
        table = uniform_table({"a": 9, "b": 2, "c": 1})
        published = anatomize(table, l=3, exempt=1, seed=0)
        assert published.n_records == 12

    def test_bad_exempt_spec(self):
        table = uniform_table({"a": 2, "b": 2})
        with pytest.raises(DiversityError, match="exempt"):
            anatomize(table, l=2, exempt=3.5)

    def test_table_smaller_than_l(self):
        table = uniform_table({"a": 1, "b": 1})
        with pytest.raises(DiversityError, match="fewer"):
            anatomize(table, l=5)


class TestAdultScale:
    def test_paper_setup(self):
        table = load_adult_synthetic(n_records=1000, seed=3)
        published = anatomize(table, l=5, exempt="auto", seed=3)
        assert published.n_buckets == 200
        assert all(b.size == 5 for b in published.buckets)
        exempt = auto_exempt(table.value_counts("education"), 5)
        assert table_is_diverse(published, 5, exempt=exempt)

    def test_randomized_inputs_always_valid(self):
        rng = np.random.default_rng(0)
        for trial in range(10):
            counts = {
                f"v{i}": int(rng.integers(1, 12))
                for i in range(int(rng.integers(3, 8)))
            }
            table = uniform_table(counts)
            l = int(rng.integers(2, 4))
            if table.n_rows < l:
                continue
            try:
                published = anatomize(table, l=l, exempt="auto", seed=trial)
            except DiversityError:
                continue  # legitimately infeasible even with exemption
            exempt = auto_exempt(Counter(table.sa_labels()), l)
            assert table_is_diverse(published, l, exempt=exempt), (
                f"trial {trial} with counts {counts} produced an invalid "
                "bucketization"
            )
