"""Cluster execution: correctness-equivalence against the single engine.

One module-scoped fleet of two real ``repro shard-worker`` subprocesses
backs every test; each workload is solved by a fresh single-engine
baseline and a fresh cluster-executor engine, and the probability
vectors must match *bit for bit* (the acceptance bar is 1e-10; the wire
protocol's raw-bytes float encoding delivers exactness).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import (
    ClusterCoordinator,
    ClusterExecutor,
    ClusterError,
    ShardClient,
    create_cluster_executor,
)
from repro.data.paper_example import S1, paper_published
from repro.engine.engine import PrivacyEngine
from repro.experiments.workloads import (
    build_adult_workload,
    build_synthetic_release,
    per_bucket_statements,
)
from repro.knowledge.bounds import TopKBound
from repro.knowledge.compiler import compile_statements
from repro.knowledge.statements import ConditionalProbability
from repro.maxent.config import MaxEntConfig
from repro.maxent.constraints import ConstraintSystem, data_constraints
from repro.maxent.indexing import GroupVariableSpace


@pytest.fixture(scope="module")
def coordinator():
    with ClusterCoordinator.spawn_local(2, chunk_size=8) as fleet:
        yield fleet


def _system_with(space, statements):
    system = ConstraintSystem(space.n_vars)
    system.extend(data_constraints(space))
    if statements:
        system.extend(compile_statements(list(statements), space))
    return system


def _paper_workload():
    space = GroupVariableSpace(paper_published())
    statements = [
        ConditionalProbability(
            given={"gender": "male"}, sa_value=S1, probability=0.0
        )
    ]
    return space, _system_with(space, statements)


def _adult_workload():
    workload = build_adult_workload(n_records=600, max_antecedent=2)
    space = GroupVariableSpace(workload.published)
    statements = TopKBound(5, 5).statements(workload.rules)
    return space, _system_with(space, statements)


def _synthetic_workload():
    published = build_synthetic_release(
        480, qi_domain_sizes=(40, 30, 20, 10), n_sa_values=8, l=8
    )
    space = GroupVariableSpace(published)
    return space, _system_with(space, per_bucket_statements(published))


WORKLOADS = {
    "paper": _paper_workload,
    "adult": _adult_workload,
    "synthetic": _synthetic_workload,
}


class TestClusterEquivalence:
    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_bitwise_replay_round_trips_bit_for_bit(self, coordinator, name):
        """``replay="bitwise"`` forces the per-component path on both
        sides of the seam, so cluster posteriors round-trip bit-identical
        to a single engine's (the raw-bytes wire encoding is lossless)."""
        space, system = WORKLOADS[name]()
        config = MaxEntConfig(raise_on_infeasible=False, replay="bitwise")
        baseline = PrivacyEngine(cache_size=0).solve(space, system, config)
        engine = PrivacyEngine(
            executor=ClusterExecutor(coordinator), cache_size=0
        )
        solution = engine.solve(space, system, config)
        assert np.array_equal(solution.p, baseline.p)
        # The acceptance criterion as stated, implied by bit-equality:
        assert np.abs(solution.p - baseline.p).max() <= 1e-10
        assert solution.stats.n_components == baseline.stats.n_components
        assert solution.stats.converged == baseline.stats.converged

    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_default_config_matches_within_tolerance(
        self, coordinator, name
    ):
        """The default (batched, tolerance-replay) contract across the
        seam: cluster and single-engine results agree within solver
        tolerance, not necessarily bit-for-bit — batch grouping differs
        between a local engine and the shard fan-out."""
        space, system = WORKLOADS[name]()
        config = MaxEntConfig(raise_on_infeasible=False)
        baseline = PrivacyEngine(cache_size=0).solve(space, system, config)
        engine = PrivacyEngine(
            executor=ClusterExecutor(coordinator), cache_size=0
        )
        solution = engine.solve(space, system, config)
        assert np.abs(solution.p - baseline.p).max() <= 100 * config.tol
        assert solution.stats.n_components == baseline.stats.n_components
        assert solution.stats.converged == baseline.stats.converged

    def test_merged_stats_cover_every_component(self, coordinator):
        space, system = _synthetic_workload()
        config = MaxEntConfig(raise_on_infeasible=False)
        engine = PrivacyEngine(
            executor=ClusterExecutor(coordinator), cache_size=0
        )
        solution = engine.solve(space, system, config)
        assert len(solution.components) == solution.stats.n_components
        numeric = [
            record
            for record in solution.components
            if record.stats.solver != "closed-form"
        ]
        assert numeric
        # cpu_seconds merges the per-shard compute the workers reported.
        assert solution.stats.cpu_seconds == pytest.approx(
            sum(record.stats.seconds for record in solution.components)
        )

    def test_infeasible_knowledge_error_crosses_the_wire(self, coordinator):
        # Backend choice must not change the error contract: a worker's
        # 409 comes back as the same exception type a local solve raises.
        from repro.errors import InfeasibleKnowledgeError

        space = GroupVariableSpace(paper_published())
        statements = [
            ConditionalProbability(
                given={"gender": "male"}, sa_value=S1, probability=0.0
            ),
            ConditionalProbability(
                given={"gender": "male"}, sa_value=S1, probability=0.5
            ),
        ]
        system = _system_with(space, statements)
        engine = PrivacyEngine(
            executor=ClusterExecutor(coordinator), cache_size=0
        )
        with pytest.raises(InfeasibleKnowledgeError):
            engine.solve(
                space, system, MaxEntConfig(raise_on_infeasible=False)
            )
        assert coordinator.alive_ids()  # a 409 is a verdict, not a death

    def test_repeat_solve_hits_coordinator_cache(self, coordinator):
        space, system = _paper_workload()
        config = MaxEntConfig(raise_on_infeasible=False)
        engine = PrivacyEngine(
            executor=ClusterExecutor(coordinator), cache_size=64
        )
        first = engine.solve(space, system, config)
        again = engine.solve(space, system, config)
        assert np.array_equal(first.p, again.p)
        assert again.stats.cache_hits > 0


class TestClusterExecutorPlumbing:
    def test_rejects_foreign_tasks(self, coordinator):
        executor = ClusterExecutor(coordinator)
        with pytest.raises(ClusterError, match="component solve tasks"):
            list(executor.imap(len, [([], None, None)]))

    def test_empty_job_list(self, coordinator):
        executor = ClusterExecutor(coordinator)
        from repro.engine.component import solve_component_task

        assert executor.map(solve_component_task, []) == []

    def test_create_without_addresses_raises(self, monkeypatch):
        monkeypatch.delenv("REPRO_CLUSTER_WORKERS", raising=False)
        with pytest.raises(ClusterError, match="REPRO_CLUSTER_WORKERS"):
            create_cluster_executor(None)

    def test_engine_attaches_via_config(self, coordinator):
        # Spawned workers carry stable identities decoupled from their
        # ports; attach with the id@host:port form so routing matches.
        addresses = ",".join(
            f"{h.worker_id}@{h.host}:{h.port}" for h in coordinator.handles
        )
        config = MaxEntConfig(
            executor="cluster",
            cluster_workers=addresses,
            raise_on_infeasible=False,
        )
        space, system = _paper_workload()
        engine = PrivacyEngine.from_config(config)
        try:
            assert engine.executor_name == "cluster"
            baseline = PrivacyEngine(cache_size=0).solve(
                space, system, config
            )
            solution = engine.solve(space, system, config)
            assert np.array_equal(solution.p, baseline.p)
        finally:
            # Attached coordinators close without touching the fleet the
            # module fixture owns.
            engine.close()
        assert coordinator.alive_ids()  # fixture fleet untouched

    def test_worker_state_endpoint_reports_counters(self, coordinator):
        handle = coordinator.handles[0]
        with ShardClient(handle.host, handle.port) as client:
            state = client.shard_state()
        assert state["worker"] == handle.worker_id
        assert state["components_solved"] >= 0
        assert "cache" in state["engine"]

    def test_worker_telemetry_exposes_prefix_counters(self, coordinator):
        telemetry = coordinator.aggregate_telemetry()
        aggregate = telemetry["aggregate"]
        assert aggregate["cache_misses"] > 0
        assert aggregate["cache_by_prefix"]
        for counters in aggregate["cache_by_prefix"].values():
            assert set(counters) == {"hits", "misses", "evictions"}
