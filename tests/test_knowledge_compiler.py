"""Unit tests for statement -> constraint-row compilation (Sections 4.1, 6)."""

import numpy as np
import pytest

from repro.data.paper_example import (
    Q1,
    Q3,
    Q6,
    S1,
    S2,
    S4,
    paper_published,
)
from repro.errors import CompilationError, InfeasibleKnowledgeError
from repro.knowledge.compiler import compile_statements
from repro.knowledge.individuals import (
    GroupCount,
    IndividualDisjunction,
    IndividualProbability,
    PseudonymTable,
)
from repro.knowledge.statements import (
    Comparison,
    ConditionalInterval,
    ConditionalProbability,
    JointProbability,
)
from repro.maxent.indexing import GroupVariableSpace, PersonVariableSpace


@pytest.fixture(scope="module")
def space():
    return GroupVariableSpace(paper_published())


@pytest.fixture(scope="module")
def person_space():
    return PersonVariableSpace(PseudonymTable(paper_published()))


class TestSection41WorkedExample:
    """The paper's P(Flu | male) = 0.3 example compiles to rhs 0.18."""

    def test_rhs_is_030_times_p_male(self, space):
        stmt = ConditionalProbability(
            given={"gender": "male"}, sa_value=S2, probability=0.3
        )
        system = compile_statements([stmt], space)
        assert system.n_equalities == 1
        row = system.equalities[0]
        # 0.3 * P(male) = 0.3 * 6/10 = 0.18 (the paper's constant).
        assert row.rhs == pytest.approx(0.18)

    def test_summation_set(self, space):
        stmt = ConditionalProbability(
            given={"gender": "male"}, sa_value=S2, probability=0.3
        )
        system = compile_statements([stmt], space)
        row = system.equalities[0]
        triples = {space.describe_var(int(i)) for i in row.indices}
        # The paper lists four terms, one of which — P((male, college),
        # Flu, bucket 3) — is a Zero-invariant (q1 does not occur in bucket
        # 3), so the live summation set has the remaining three.
        assert triples == {(Q1, S2, 0), (Q3, S2, 0), (Q6, S2, 2)}
        assert np.all(row.coefficients == 1.0)

    def test_zero_probability_statement(self, space):
        # The Breast-Cancer rule: P(s1 | male) = 0.
        stmt = ConditionalProbability(
            given={"gender": "male"}, sa_value=S1, probability=0.0
        )
        system = compile_statements([stmt], space)
        assert system.n_equalities == 1
        assert system.equalities[0].rhs == 0.0


class TestDataStatementErrors:
    def test_unknown_attribute(self, space):
        stmt = ConditionalProbability(
            given={"zipcode": "13244"}, sa_value=S2, probability=0.5
        )
        with pytest.raises(CompilationError, match="not a QI attribute"):
            compile_statements([stmt], space)

    def test_absent_population(self, space):
        stmt = ConditionalProbability(
            given={"gender": "male", "degree": "junior"},
            sa_value=S2,
            probability=0.5,
        )
        with pytest.raises(CompilationError, match="matches no published record"):
            compile_statements([stmt], space)

    def test_structurally_impossible_positive_probability(self, space):
        # No bucket contains both q4=(female, junior) and Flu.
        stmt = ConditionalProbability(
            given={"gender": "female", "degree": "junior"},
            sa_value=S2,
            probability=0.5,
        )
        with pytest.raises(InfeasibleKnowledgeError):
            compile_statements([stmt], space)

    def test_zero_probability_on_empty_set_is_vacuous(self, space):
        stmt = ConditionalProbability(
            given={"gender": "female", "degree": "junior"},
            sa_value=S2,
            probability=0.0,
        )
        system = compile_statements([stmt], space)
        assert system.n_equalities == 0

    def test_unknown_sa_value_with_positive_probability(self, space):
        stmt = ConditionalProbability(
            given={"gender": "male"}, sa_value="Malaria", probability=0.2
        )
        with pytest.raises(InfeasibleKnowledgeError):
            compile_statements([stmt], space)


class TestJointAndInequality:
    def test_joint_probability_rhs_direct(self, space):
        stmt = JointProbability(
            given={"gender": "male"}, sa_value=S2, probability=0.18
        )
        system = compile_statements([stmt], space)
        assert system.equalities[0].rhs == pytest.approx(0.18)

    def test_interval_two_rows(self, space):
        stmt = ConditionalInterval(
            given={"gender": "male"}, sa_value=S2, low=0.2, high=0.4
        )
        system = compile_statements([stmt], space)
        assert system.n_equalities == 0
        assert system.n_inequalities == 2
        upper, lower = system.inequalities
        assert upper.rhs == pytest.approx(0.4 * 0.6)
        # The lower bound row is negated: -sum <= -low * P(Qv).
        assert lower.rhs == pytest.approx(-0.2 * 0.6)
        assert np.all(lower.coefficients == -1.0)

    def test_interval_with_zero_low_single_row(self, space):
        stmt = ConditionalInterval(
            given={"gender": "male"}, sa_value=S2, low=0.0, high=0.4
        )
        system = compile_statements([stmt], space)
        assert system.n_inequalities == 1

    def test_comparison_mixed_signs(self, space):
        stmt = Comparison(
            given={"gender": "male"},
            more_likely=S2,
            less_likely=S4,
            margin=0.1,
        )
        system = compile_statements([stmt], space)
        assert system.n_inequalities == 1
        row = system.inequalities[0]
        assert row.rhs == pytest.approx(-0.1 * 0.6)
        assert set(np.unique(row.coefficients)) == {-1.0, 1.0}


class TestIndividualCompilation:
    def test_requires_person_space(self, space, person_space):
        alice = person_space.pseudonym_table.assign(Q1)
        stmt = IndividualProbability(person=alice, sa_value=S1, probability=0.2)
        with pytest.raises(CompilationError, match="individual"):
            compile_statements([stmt], space)

    def test_probability_rhs_is_p_over_n(self, person_space):
        alice = person_space.pseudonym_table.assign(Q1)
        stmt = IndividualProbability(person=alice, sa_value=S1, probability=0.2)
        system = compile_statements([stmt], person_space)
        assert system.equalities[0].rhs == pytest.approx(0.2 / 10)

    def test_disjunction_rhs_is_one_over_n(self, person_space):
        alice = person_space.pseudonym_table.assign(Q1)
        stmt = IndividualDisjunction(person=alice, sa_values=(S1, S4))
        system = compile_statements([stmt], person_space)
        assert system.equalities[0].rhs == pytest.approx(1 / 10)

    def test_group_count_rhs(self, person_space):
        table = person_space.pseudonym_table
        people = (table.by_name("i1"), table.by_name("i4"), table.by_name("i9"))
        stmt = GroupCount(persons=people, sa_value=S4, count=2)
        system = compile_statements([stmt], person_space)
        assert system.equalities[0].rhs == pytest.approx(2 / 10)

    def test_impossible_disjunction(self, person_space):
        # Grace (q4, bucket 2 only) can never have Flu: bucket 2 has no s2.
        table = person_space.pseudonym_table
        grace = table.assign(("female", "junior"))
        stmt = IndividualDisjunction(person=grace, sa_values=(S2,))
        with pytest.raises(InfeasibleKnowledgeError):
            compile_statements([stmt], person_space)

    def test_data_statement_on_person_space(self, person_space):
        stmt = ConditionalProbability(
            given={"gender": "male"}, sa_value=S2, probability=0.3
        )
        system = compile_statements([stmt], person_space)
        assert system.n_equalities == 1
        assert system.equalities[0].rhs == pytest.approx(0.18)
