"""The unified retry policy: backoff shape, jitter, deadlines, env knobs."""

from __future__ import annotations

import http.client
import random

import pytest

from repro.cluster import ClusterError, RetryPolicy
from repro.cluster.retry import (
    TRANSPORT_ERRORS,
    cluster_env_float,
    cluster_env_int,
)


class TestBackoffShape:
    def test_geometric_growth_capped_at_max(self):
        policy = RetryPolicy(
            base_delay=0.1, multiplier=2.0, max_delay=0.5, jitter=0.0
        )
        assert [policy.backoff(a) for a in range(5)] == [
            pytest.approx(d) for d in (0.1, 0.2, 0.4, 0.5, 0.5)
        ]

    def test_zero_jitter_sleeps_exactly_the_backoff(self):
        policy = RetryPolicy(base_delay=0.2, jitter=0.0)
        assert policy.delay(0) == policy.backoff(0)

    def test_jitter_stays_inside_the_band(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=10.0, jitter=0.5)
        rng = random.Random(7)
        for attempt in range(6):
            backoff = policy.backoff(attempt)
            for _ in range(50):
                sleep = policy.delay(attempt, rng)
                assert 0.5 * backoff <= sleep <= 1.5 * backoff

    def test_seeded_rng_replays_the_delay_sequence(self):
        policy = RetryPolicy(base_delay=0.1, jitter=0.5)
        first = [policy.delay(a, random.Random(42)) for a in range(4)]
        again = [policy.delay(a, random.Random(42)) for a in range(4)]
        assert first == again

    def test_validation_rejects_bad_knobs(self):
        with pytest.raises(ClusterError, match="attempts"):
            RetryPolicy(attempts=-1)
        with pytest.raises(ClusterError, match="base_delay"):
            RetryPolicy(base_delay=0.5, max_delay=0.1)
        with pytest.raises(ClusterError, match="multiplier"):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ClusterError, match="jitter"):
            RetryPolicy(jitter=1.5)

    def test_policies_compare_by_knobs_not_rng(self):
        assert RetryPolicy(attempts=4) == RetryPolicy(attempts=4)
        assert RetryPolicy(attempts=4) != RetryPolicy(attempts=5)

    def test_with_deadline_preserves_everything_else(self):
        policy = RetryPolicy(attempts=7, base_delay=0.2)
        bounded = policy.with_deadline(1.5)
        assert bounded.deadline == 1.5
        assert bounded.attempts == 7
        assert policy.deadline is None


class TestEnvConfiguration:
    def test_from_env_reads_the_knobs(self, monkeypatch):
        monkeypatch.setenv("REPRO_CLUSTER_RETRY_ATTEMPTS", "5")
        monkeypatch.setenv("REPRO_CLUSTER_RETRY_BASE_DELAY", "0.25")
        monkeypatch.setenv("REPRO_CLUSTER_RETRY_MAX_DELAY", "4.0")
        monkeypatch.setenv("REPRO_CLUSTER_RETRY_MULTIPLIER", "3.0")
        monkeypatch.setenv("REPRO_CLUSTER_RETRY_JITTER", "0.1")
        policy = RetryPolicy.from_env()
        assert policy == RetryPolicy(
            attempts=5,
            base_delay=0.25,
            max_delay=4.0,
            multiplier=3.0,
            jitter=0.1,
        )

    def test_explicit_overrides_beat_the_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_CLUSTER_RETRY_ATTEMPTS", "5")
        assert RetryPolicy.from_env(attempts=2).attempts == 2

    def test_junk_env_values_fail_loudly(self, monkeypatch):
        monkeypatch.setenv("REPRO_CLUSTER_RETRY_ATTEMPTS", "many")
        with pytest.raises(ClusterError, match="RETRY_ATTEMPTS"):
            RetryPolicy.from_env()

    def test_env_helpers_default_on_blank(self, monkeypatch):
        monkeypatch.delenv("REPRO_CLUSTER_SOME_KNOB", raising=False)
        assert cluster_env_float("SOME_KNOB", 1.5) == 1.5
        monkeypatch.setenv("REPRO_CLUSTER_SOME_KNOB", "  ")
        assert cluster_env_int("SOME_KNOB", 3) == 3
        monkeypatch.setenv("REPRO_CLUSTER_SOME_KNOB", "2.5")
        assert cluster_env_float("SOME_KNOB", 0.0) == 2.5
        with pytest.raises(ClusterError, match="not an integer"):
            cluster_env_int("SOME_KNOB", 0)


class _Flaky:
    """Fails ``failures`` times with ``exc_type``, then returns."""

    def __init__(self, failures: int, exc_type=ConnectionError) -> None:
        self.remaining = failures
        self.exc_type = exc_type
        self.calls = 0

    def __call__(self) -> str:
        self.calls += 1
        if self.remaining > 0:
            self.remaining -= 1
            raise self.exc_type("transient")
        return "done"


class TestRun:
    FAST = RetryPolicy(attempts=3, base_delay=0.001, max_delay=0.002)

    def test_recovers_within_the_attempt_budget(self):
        operation = _Flaky(2)
        assert self.FAST.run(operation) == "done"
        assert operation.calls == 3

    def test_exhausted_attempts_reraise_the_last_error(self):
        operation = _Flaky(5)
        with pytest.raises(ConnectionError):
            self.FAST.run(operation)
        assert operation.calls == 3

    def test_http_exceptions_are_transport_errors(self):
        operation = _Flaky(1, exc_type=http.client.BadStatusLine)
        assert issubclass(http.client.BadStatusLine, TRANSPORT_ERRORS)
        assert self.FAST.run(operation) == "done"

    def test_non_transport_errors_propagate_immediately(self):
        operation = _Flaky(1, exc_type=ValueError)
        with pytest.raises(ValueError):
            self.FAST.run(operation)
        assert operation.calls == 1

    def test_on_retry_hook_sees_each_backoff(self):
        operation = _Flaky(2)
        seen = []
        self.FAST.run(
            operation,
            on_retry=lambda attempt, exc, sleep: seen.append(
                (attempt, type(exc).__name__, sleep)
            ),
        )
        assert [entry[0] for entry in seen] == [1, 2]
        assert all(entry[1] == "ConnectionError" for entry in seen)
        assert all(entry[2] >= 0 for entry in seen)

    def test_deadline_stops_an_uncapped_policy(self):
        policy = RetryPolicy(
            attempts=0, base_delay=0.05, max_delay=0.05, jitter=0.0,
            deadline=0.12,
        )
        operation = _Flaky(100)
        with pytest.raises(ConnectionError):
            policy.run(operation)
        # ~two 0.05s sleeps fit in a 0.12s budget; the third would not.
        assert operation.calls <= 4

    def test_custom_retry_on_filter(self):
        operation = _Flaky(1, exc_type=KeyError)
        assert self.FAST.run(operation, retry_on=(KeyError,)) == "done"
