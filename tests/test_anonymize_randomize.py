"""Unit tests for randomized response."""

import numpy as np
import pytest

from repro.anonymize.randomize import (
    perturbation_matrix,
    randomized_response,
    reconstruct_distribution,
)
from repro.data.adult import load_adult_synthetic
from repro.errors import AnonymizationError


class TestPerturbationMatrix:
    def test_column_stochastic(self):
        matrix = perturbation_matrix(5, 0.7)
        assert np.allclose(matrix.sum(axis=0), 1.0)

    def test_keep_probability_one_is_identity(self):
        assert np.allclose(perturbation_matrix(4, 1.0), np.eye(4))

    def test_keep_probability_zero_is_uniform(self):
        matrix = perturbation_matrix(4, 0.0)
        assert np.allclose(matrix, 0.25)

    def test_rejects_bad_domain(self):
        with pytest.raises(AnonymizationError):
            perturbation_matrix(1, 0.5)

    def test_rejects_bad_probability(self):
        with pytest.raises(AnonymizationError):
            perturbation_matrix(4, 1.5)


class TestRandomizedResponse:
    def test_keep_one_preserves_table(self):
        table = load_adult_synthetic(n_records=200, seed=1)
        noisy = randomized_response(table, 1.0, seed=2)
        assert np.array_equal(noisy.sa_codes(), table.sa_codes())

    def test_qi_untouched(self):
        table = load_adult_synthetic(n_records=200, seed=1)
        noisy = randomized_response(table, 0.3, seed=2)
        for name in table.schema.qi_attributes:
            assert np.array_equal(noisy.column(name), table.column(name))

    def test_noise_actually_applied(self):
        table = load_adult_synthetic(n_records=500, seed=1)
        noisy = randomized_response(table, 0.2, seed=2)
        changed = (noisy.sa_codes() != table.sa_codes()).mean()
        assert changed > 0.5  # most values should flip at p=0.2

    def test_deterministic_per_seed(self):
        table = load_adult_synthetic(n_records=100, seed=1)
        a = randomized_response(table, 0.5, seed=9)
        b = randomized_response(table, 0.5, seed=9)
        assert np.array_equal(a.sa_codes(), b.sa_codes())


class TestReconstruction:
    def test_recovers_distribution(self):
        table = load_adult_synthetic(n_records=20000, seed=3)
        keep = 0.6
        noisy = randomized_response(table, keep, seed=4)
        estimated = reconstruct_distribution(noisy, keep)
        true_counts = np.bincount(
            table.sa_codes(), minlength=table.schema.sa.size
        )
        true_dist = true_counts / true_counts.sum()
        assert np.abs(estimated - true_dist).max() < 0.02

    def test_estimate_is_distribution(self):
        table = load_adult_synthetic(n_records=500, seed=5)
        noisy = randomized_response(table, 0.4, seed=6)
        estimated = reconstruct_distribution(noisy, 0.4)
        assert estimated.min() >= 0
        assert estimated.sum() == pytest.approx(1.0)
