"""The sharded serving front-end over a real worker fleet.

Each test boots a `ShardedFrontend` (on its own event-loop thread) over
freshly spawned ``repro shard-worker`` subprocesses and drives it with
the blocking service client — the same path ``repro serve --shards N``
serves production traffic on.  The failover tests kill real worker
processes and assert the front-end's routing contract: registration
walks rendezvous successors past dead owners, solves re-home pinned
release ids, and fleet health degrades visibly.
"""

from __future__ import annotations

import pytest

from repro.cluster import ClusterCoordinator, ShardedFrontend
from repro.core.privacy_maxent import PrivacyMaxEnt
from repro.data.paper_example import Q4, S1, paper_published
from repro.knowledge.statements import ConditionalProbability
from repro.service import BackgroundService, ServiceClient, ServiceConfig

KNOWLEDGE = [
    ConditionalProbability(given={"gender": "male"}, sa_value=S1, probability=0.0)
]


@pytest.fixture()
def fleet():
    with ClusterCoordinator.spawn_local(2) as coordinator:
        yield coordinator


@pytest.fixture()
def frontend(fleet):
    service = ShardedFrontend(
        ServiceConfig(port=0), coordinator=fleet, owns_coordinator=False
    )
    with BackgroundService(service) as background:
        with ServiceClient(port=background.port) as client:
            client.wait_until_healthy(timeout=15)
            yield fleet, service, client


def _kill(fleet, worker_id: str) -> None:
    handle = fleet.worker(worker_id)
    handle.process.kill()
    handle.process.wait(timeout=10)


class TestRouting:
    def test_register_and_solve_through_owner(self, frontend):
        fleet, service, client = frontend
        release_id = client.register(paper_published(), name="paper")
        summary = client.release(release_id)
        assert summary["shard"] in fleet.router.worker_ids

        result = client.posterior(release_id, KNOWLEDGE)
        expected = PrivacyMaxEnt(
            paper_published(), knowledge=KNOWLEDGE
        ).posterior()
        assert result.posterior.prob(Q4, S1) == pytest.approx(
            expected.prob(Q4, S1), abs=1e-10
        )

        # The repeat is the owning worker's result cache, relayed.
        repeat = client.posterior(release_id, KNOWLEDGE)
        assert repeat.served_from in ("result-cache", "coalesced")

    def test_telemetry_embeds_fleet_aggregates(self, frontend):
        fleet, service, client = frontend
        client.register(paper_published(), name="paper")
        telemetry = client.telemetry()
        cluster = telemetry["cluster"]
        assert len(cluster["workers"]) == fleet.n_workers
        assert "cache_by_prefix" in cluster["aggregate"]


class TestFailover:
    def test_registration_walks_past_a_dead_owner(self, frontend):
        fleet, service, client = frontend
        release_id = client.register(paper_published(), name="paper")
        owner = client.release(release_id)["shard"]
        _kill(fleet, owner)

        # Re-registering the same release must not 500 on the dead
        # owner: the front-end marks it dead and walks to the rendezvous
        # successor, keeping the pinned client-visible id.
        again = client.register(paper_published(), name="paper")
        assert again == release_id
        survivor = client.release(release_id)["shard"]
        assert survivor != owner
        assert owner in fleet.dead_ids()

    def test_solve_rehomes_release_after_owner_death(self, frontend):
        fleet, service, client = frontend
        release_id = client.register(
            paper_published(), original=None, name="paper"
        )
        baseline = client.posterior(release_id, KNOWLEDGE)
        owner = client.release(release_id)["shard"]
        _kill(fleet, owner)

        moved = client.posterior(release_id, KNOWLEDGE)
        assert moved.posterior.prob(Q4, S1) == pytest.approx(
            baseline.posterior.prob(Q4, S1), abs=1e-10
        )
        assert client.release(release_id)["shard"] != owner

    def test_restarted_owner_relearns_the_release(self, frontend):
        # A supervisor restart: the owner comes back on the same port
        # with an empty store. The front-end must re-register from its
        # stored body instead of relaying the worker's 404 forever.
        import subprocess
        import sys

        from repro.cluster.coordinator import _worker_environment

        fleet, service, client = frontend
        release_id = client.register(paper_published(), name="paper")
        baseline = client.posterior(release_id, KNOWLEDGE)
        owner = client.release(release_id)["shard"]
        handle = fleet.worker(owner)
        _kill(fleet, owner)
        handle.process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "shard-worker",
                "--host",
                handle.host,
                "--port",
                str(handle.port),
            ],
            env=_worker_environment(),
        )
        with handle.client(timeout=30) as probe:
            probe.wait_until_healthy(timeout=30)

        moved = client.posterior(release_id, KNOWLEDGE)
        assert moved.posterior.prob(Q4, S1) == pytest.approx(
            baseline.posterior.prob(Q4, S1), abs=1e-10
        )
        assert client.release(release_id)["shard"] == owner

    def test_healthz_degrades_on_dead_shard(self, frontend):
        fleet, service, client = frontend
        victim = fleet.handles[0]
        _kill(fleet, victim.worker_id)
        from repro.service import ServiceError

        with pytest.raises(ServiceError) as excinfo:
            client.healthz()
        assert excinfo.value.status == 503
        assert "degraded" in str(excinfo.value)
